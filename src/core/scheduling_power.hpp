#pragma once

#include <map>
#include <vector>

#include "cdfg/cdfg.hpp"
#include "cdfg/datasim.hpp"
#include "exec/exec.hpp"
#include "lint/diagnostics.hpp"

namespace hlp::core {

/// Section III-D: power-aware operation scheduling.

/// Per-operation switched-capacitance energy model (arbitrary units):
/// adders/comparators linear in width, multipliers quadratic.
struct OpEnergyModel {
  double add_per_bit = 1.0;
  double mul_per_bit2 = 0.4;
  double shift_per_bit = 0.15;
  double mux_per_bit = 0.3;
  double of(cdfg::OpKind k, int width) const;
};

/// Expected datapath energy per iteration given each op's activation
/// probability (1.0 = executes every iteration).
double cdfg_energy(const cdfg::Cdfg& g, const OpEnergyModel& m,
                   std::span<const double> activation_prob = {});

/// --- Monteiro et al. [63]: scheduling for dynamic power management ------

struct PowerManagedSchedule {
  cdfg::Schedule schedule;
  /// Muxes for which power management is enabled.
  std::vector<cdfg::OpId> managed_muxes;
  /// Activation probability per op after shutdown of unselected branches
  /// (ctrl assumed uniform unless given in `branch_prob`).
  std::vector<double> activation_prob;
  /// Extra precedence edges added (from control cone to branch cones).
  std::vector<std::pair<cdfg::OpId, cdfg::OpId>> added_edges;
};

/// Implements the ASAP/ALAP feasibility test from the paper: for each mux
/// (bottom-up), nodes exclusive to the 0/1 branches must be schedulable
/// strictly after the control cone settles; feasible muxes get precedence
/// edges and their unselected branch cone is shut down at runtime.
/// `branch_prob[mux]` = probability the control input is 1 (default 0.5).
/// `lint` optionally runs the CD-* design rules on `g` first (strict mode
/// rejects malformed dataflow before scheduling).
PowerManagedSchedule monteiro_schedule(
    const cdfg::Cdfg& g, int latency_slack = 2,
    const cdfg::OpDelays& d = {},
    const std::map<cdfg::OpId, double>& branch_prob = {},
    const lint::LintOptions& lint = {});

/// Budgeted power-managed scheduling: one meter step per mux candidate
/// (plus one per feasibility trial). On a budget trip, muxes already
/// accepted keep their power management and the remaining candidates are
/// left unmanaged — the schedule is always valid, just managing fewer
/// branches. The diag reports how many candidates were considered.
exec::Outcome<PowerManagedSchedule> monteiro_schedule_budgeted(
    const cdfg::Cdfg& g, const exec::Budget& budget, int latency_slack = 2,
    const cdfg::OpDelays& d = {},
    const std::map<cdfg::OpId, double>& branch_prob = {},
    const lint::LintOptions& lint = {});

/// --- Musoll–Cortadella [60]: activity-driven scheduling -----------------

/// Round-robin binding of compute ops to functional-unit instances under
/// the per-kind resource limits; returns instance index per op (-1 for
/// non-compute ops).
std::vector<int> bind_round_robin(const cdfg::Cdfg& g,
                                  const cdfg::Schedule& s,
                                  const std::map<cdfg::OpKind, int>& limits);

/// Mean FU input switching per iteration: for each functional unit, the
/// normalized Hamming distance between operand values of temporally
/// consecutive ops executed on it.
double fu_input_switching(const cdfg::Cdfg& g, const cdfg::Schedule& s,
                          std::span<const int> binding,
                          const cdfg::DataTrace& trace);

/// List scheduling whose priority favors placing ops that share operands
/// consecutively on the same unit (the Musoll–Cortadella objective).
/// `lint` optionally runs the CD-* rules on `g` before scheduling, and in
/// strict mode also self-checks the produced schedule against `limits`
/// (CD-UNSCHED / CD-RESOURCE).
cdfg::Schedule activity_driven_schedule(
    const cdfg::Cdfg& g, const std::map<cdfg::OpKind, int>& limits,
    const cdfg::OpDelays& d = {}, const lint::LintOptions& lint = {});

/// Budgeted activity-driven scheduling: one meter step per time step of the
/// list scheduler. A budget trip degrades to the plain (resource-unaware)
/// ASAP schedule — the cheap deterministic fallback — with the degradation
/// recorded in the diag rather than returning a half-filled schedule.
exec::Outcome<cdfg::Schedule> activity_driven_schedule_budgeted(
    const cdfg::Cdfg& g, const exec::Budget& budget,
    const std::map<cdfg::OpKind, int>& limits, const cdfg::OpDelays& d = {},
    const lint::LintOptions& lint = {});

/// --- Kim–Choi [62]: power-conscious loop folding -------------------------
///
/// A T-tap MAC loop on one multiplier: iteration t computes c_k * x[t-k]
/// for k = 0..T-1. The unfolded schedule runs each iteration's taps in
/// order, so the data operand changes every cycle. Folding overlaps T
/// iterations so that all uses of the *same sample* execute back-to-back —
/// the "common input operands hidden inside the loops" — leaving the data
/// port still for T-1 of every T cycles.
struct LoopFoldingResult {
  double sw_unfolded = 0.0;  ///< multiplier input bits switched per op
  double sw_folded = 0.0;
  double saving() const {
    return sw_unfolded > 0.0 ? 1.0 - sw_folded / sw_unfolded : 0.0;
  }
};

LoopFoldingResult evaluate_loop_folding(int taps, std::size_t iterations,
                                        int width, std::uint64_t seed);

}  // namespace hlp::core
