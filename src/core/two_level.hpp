#pragma once

#include <cstdint>
#include <vector>

namespace hlp::core {

/// A cube (product term) over n variables: `care` marks bound positions,
/// `value` gives their polarity (value bits outside `care` are 0).
struct Cube {
  std::uint32_t care = 0;
  std::uint32_t value = 0;

  int literals() const;
  bool covers(std::uint32_t minterm) const {
    return (minterm & care) == value;
  }
  /// Number of minterms covered (over n variables).
  std::uint64_t size(int n) const;
  bool operator==(const Cube&) const = default;
};

/// Truth table: bit/byte per minterm, index = input assignment.
using TruthTable = std::vector<std::uint8_t>;

/// TruthTable of a function given as an evaluator.
template <typename F>
TruthTable table_from(int n, F&& f) {
  TruthTable tt(std::size_t{1} << n);
  for (std::uint32_t m = 0; m < tt.size(); ++m)
    tt[m] = f(m) ? 1 : 0;
  return tt;
}

/// All prime implicants of the on-set (Quine–McCluskey). n <= 16.
std::vector<Cube> prime_implicants(const TruthTable& tt, int n);

/// Essential prime implicants (primes covering a minterm no other prime
/// covers).
std::vector<Cube> essential_primes(const TruthTable& tt, int n,
                                   const std::vector<Cube>& primes);

/// Minimal-ish cover: essentials plus greedy selection by coverage.
std::vector<Cube> minimize_cover(const TruthTable& tt, int n);

/// Total literal count of a cover.
int cover_literals(const std::vector<Cube>& cover);

}  // namespace hlp::core
