#include "core/guarded_eval.hpp"

#include <algorithm>
#include <map>
#include <new>
#include <string>
#include <unordered_set>

#include "bdd/netlist_bdd.hpp"
#include "netlist/copy.hpp"
#include "sim/simulator.hpp"
#include "stats/rng.hpp"

namespace hlp::core {

using netlist::GateId;
using netlist::GateKind;
using netlist::Netlist;

namespace {

/// Gates from which every path to a primary output passes through the
/// d<side> port of one of the muxes in `mux_group` (a word-level mux bank
/// sharing one select). Fixed point: a gate is in the cone when each of its
/// fanouts is in the cone or is a group mux reading it only on that port.
std::vector<GateId> exclusive_cone(const Netlist& nl,
                                   const std::vector<GateId>& mux_group,
                                   int side) {
  auto fo = nl.fanouts();
  std::unordered_set<GateId> group(mux_group.begin(), mux_group.end());
  auto reads_only_on_port = [&](GateId mux, GateId g) {
    const auto& f = nl.gate(mux).fanins;  // {sel, d0, d1}
    if (f[0] == g) return false;
    if (f[static_cast<std::size_t>(1 + (1 - side))] == g) return false;
    return f[static_cast<std::size_t>(1 + side)] == g;
  };
  std::unordered_set<GateId> primary_outputs(nl.outputs().begin(),
                                             nl.outputs().end());
  // Note: gates with no fanouts (dead logic, e.g. truncated product bits)
  // are trivially unobservable and join the cone; in the circuits we build
  // such gates only occur inside the guarded block itself.
  std::unordered_set<GateId> cone;
  auto eligible = [&](GateId g) {
    if (!netlist::is_logic(nl.gate(g).kind)) return false;
    if (primary_outputs.count(g)) return false;  // always observable
    if (fo[g].empty()) return true;  // dangling: trivially unobservable
    for (GateId s : fo[g]) {
      if (cone.count(s)) continue;
      if (group.count(s) && reads_only_on_port(s, g)) continue;
      return false;
    }
    return true;
  };
  bool changed = true;
  while (changed) {
    changed = false;
    for (GateId g = 0; g < nl.gate_count(); ++g) {
      if (cone.count(g)) continue;
      if (eligible(g)) {
        cone.insert(g);
        changed = true;
      }
    }
  }
  std::vector<GateId> out(cone.begin(), cone.end());
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<int> gate_levels(const Netlist& nl) {
  std::vector<int> lvl(nl.gate_count(), 0);
  for (GateId id : nl.topo_order()) {
    const auto& g = nl.gate(id);
    if (!netlist::is_logic(g.kind)) continue;
    int m = 0;
    for (GateId f : g.fanins) m = std::max(m, lvl[f]);
    lvl[id] = m + 1;
  }
  return lvl;
}

/// A structurally enumerated guard opportunity, before ODC verification:
/// the full mux bank sharing one select, the blocked side, and its cone.
struct RawGuard {
  GateId sel = netlist::kNullGate;
  std::vector<GateId> muxes;
  int side = 0;
  std::vector<GateId> cone;
};

std::vector<RawGuard> enumerate_guard_cones(const Netlist& nl) {
  // Group muxes by select signal: a word-level mux bank is one opportunity.
  std::map<GateId, std::vector<GateId>> groups;
  for (GateId m = 0; m < nl.gate_count(); ++m)
    if (nl.gate(m).kind == GateKind::Mux)
      groups[nl.gate(m).fanins[0]].push_back(m);

  std::vector<RawGuard> raw;
  for (const auto& [sel, muxes] : groups)
    for (int side = 0; side < 2; ++side) {
      auto cone = exclusive_cone(nl, muxes, side);
      if (cone.size() < 2) continue;  // not worth latching
      raw.push_back({sel, muxes, side, std::move(cone)});
    }
  return raw;
}

GuardCandidate make_candidate(const Netlist& nl, const RawGuard& rg,
                              const std::vector<int>& levels) {
  GuardCandidate c;
  c.mux = rg.muxes.front();
  c.guard = rg.sel;
  // The d0 side (side 0) is unobserved when sel = 1.
  c.block_when_guard_high = (rg.side == 0);
  c.cone_root =
      nl.gate(rg.muxes.front()).fanins[static_cast<std::size_t>(1 + rg.side)];
  c.cone = rg.cone;
  // Pure guarded evaluation timing: the guard must settle before any
  // boundary input of the cone can switch (unit-delay levels).
  std::unordered_set<GateId> inside(rg.cone.begin(), rg.cone.end());
  int t_e = 1 << 30;
  for (GateId cg : rg.cone)
    for (GateId f : nl.gate(cg).fanins)
      if (!inside.count(f)) t_e = std::min(t_e, levels[f] + 1);
  c.pure = levels[rg.sel] < t_e;
  return c;
}

/// ODC verification via BDDs: under the blocking select value the mux bank
/// outputs equal the other branch for every input assignment — i.e. the
/// cone is unobservable. Checked symbolically per mux.
bool verify_odc_bdd(bdd::Manager& mgr, const bdd::NetlistBdds& bdds,
                    const Netlist& nl, const RawGuard& rg) {
  bdd::NodeRef sel_fn = bdds.fn[rg.sel];
  bdd::NodeRef cond = rg.side == 0 ? sel_fn : mgr.bdd_not(sel_fn);
  if (cond == bdd::kFalse) return false;
  for (GateId m : rg.muxes) {
    const auto& mf = nl.gate(m).fanins;
    bdd::NodeRef other =
        bdds.fn[mf[static_cast<std::size_t>(1 + (1 - rg.side))]];
    // cond -> (mux output == other branch).
    bdd::NodeRef eq = mgr.bdd_xnor(bdds.fn[m], other);
    if (!mgr.implies(cond, eq)) return false;
  }
  return true;
}

/// Degraded ODC verification: random-vector search for a counterexample.
/// Accepts only if the blocking select value was observed at least once and
/// no sampled vector violates the implication — weaker than the proof, but
/// sound against everything the sample saw.
bool verify_odc_sampled(sim::Simulator& s, const Netlist& nl,
                        const RawGuard& rg, int n_inputs, stats::Rng& rng,
                        int n_vectors) {
  bool cond_seen = false;
  for (int t = 0; t < n_vectors; ++t) {
    s.set_all_inputs(rng.uniform_bits(n_inputs));
    s.eval();
    bool blocking = s.value(rg.sel) == (rg.side == 0);
    if (!blocking) continue;
    cond_seen = true;
    for (GateId m : rg.muxes) {
      const auto& mf = nl.gate(m).fanins;
      GateId other = mf[static_cast<std::size_t>(1 + (1 - rg.side))];
      if (s.value(m) != s.value(other)) return false;
    }
  }
  return cond_seen;
}

std::vector<GuardCandidate> filter_disjoint(std::vector<GuardCandidate> out) {
  // Keep a disjoint subset, largest cones first.
  std::sort(out.begin(), out.end(),
            [](const GuardCandidate& a, const GuardCandidate& b) {
              return a.cone.size() > b.cone.size();
            });
  std::unordered_set<GateId> taken;
  std::vector<GuardCandidate> disjoint;
  for (auto& c : out) {
    bool overlap = false;
    for (GateId g : c.cone)
      if (taken.count(g)) {
        overlap = true;
        break;
      }
    if (overlap || taken.count(c.guard)) continue;
    for (GateId g : c.cone) taken.insert(g);
    disjoint.push_back(std::move(c));
  }
  return disjoint;
}

std::vector<GuardCandidate> find_guards_impl(const netlist::Module& mod,
                                             exec::Meter* meter) {
  const Netlist& nl = mod.netlist;
  bdd::Manager mgr;
  mgr.set_meter(meter);
  auto bdds = bdd::build_bdds(mgr, nl);
  auto levels = gate_levels(nl);
  std::vector<GuardCandidate> out;
  for (const RawGuard& rg : enumerate_guard_cones(nl)) {
    if (!verify_odc_bdd(mgr, bdds, nl, rg)) continue;
    GuardCandidate c = make_candidate(nl, rg, levels);
    c.odc_verified = true;
    out.push_back(std::move(c));
  }
  return filter_disjoint(std::move(out));
}

}  // namespace

std::vector<GuardCandidate> find_guards(const netlist::Module& mod) {
  return find_guards_impl(mod, nullptr);
}

exec::Outcome<std::vector<GuardCandidate>> find_guards_budgeted(
    const netlist::Module& mod, const exec::Budget& budget,
    std::uint64_t seed) {
  exec::Outcome<std::vector<GuardCandidate>> out;
  exec::Meter meter(budget);
  try {
    out.value = find_guards_impl(mod, &meter);
    out.diag = meter.diag();
    return out;
  } catch (const exec::BudgetExceeded&) {
    out.diag = meter.diag();
  } catch (const std::bad_alloc&) {
    out.diag = meter.diag();
    out.diag.stop = exec::StopReason::AllocFailure;
  }

  const Netlist& nl = mod.netlist;
  auto levels = gate_levels(nl);
  sim::Simulator s(nl);
  stats::Rng rng(seed);
  constexpr int kVectors = 256;
  std::vector<GuardCandidate> found;
  for (const RawGuard& rg : enumerate_guard_cones(nl)) {
    if (!verify_odc_sampled(s, nl, rg, mod.total_input_bits(), rng, kVectors))
      continue;
    GuardCandidate c = make_candidate(nl, rg, levels);
    c.odc_verified = true;
    found.push_back(std::move(c));
  }
  out.value = filter_disjoint(std::move(found));
  out.diag.degraded = true;
  out.diag.degraded_from = "BDD ODC implication proof";
  out.diag.degraded_to = "random-vector ODC verification";
  out.diag.note = "accepted " + std::to_string(out.value.size()) +
                  " guards on " + std::to_string(kVectors) +
                  " sampled vectors after the symbolic check tripped";
  return out;
}

GuardedCircuit apply_guards(const netlist::Module& mod,
                            std::span<const GuardCandidate> guards) {
  GuardedCircuit gc;
  Netlist& nl = gc.netlist;
  // Copy the module 1:1 (combinational), keeping a translation table.
  std::vector<GateId> new_inputs;
  for (int i = 0; i < mod.total_input_bits(); ++i)
    new_inputs.push_back(nl.add_input("x[" + std::to_string(i) + "]"));
  auto xlat = netlist::copy_combinational(mod.netlist, nl, new_inputs);
  for (std::size_t i = 0; i < mod.netlist.outputs().size(); ++i)
    nl.mark_output(xlat[mod.netlist.outputs()[i]]);

  for (const auto& c : guards) {
    std::unordered_set<GateId> inside;  // in source ids
    for (GateId g : c.cone) inside.insert(g);
    // Transparent-when-observed enable: latches pass while the cone is
    // observed, hold while it is blocked.
    GateId sel_new = xlat[c.guard];
    GateId enable = c.block_when_guard_high
                        ? nl.add_unary(GateKind::Not, sel_new)
                        : sel_new;
    // Gate every boundary edge (f outside -> g inside).
    std::map<GateId, GateId> gated_of;  // source boundary net -> gated net
    for (GateId src_g : c.cone) {
      for (GateId src_f : mod.netlist.gate(src_g).fanins) {
        if (inside.count(src_f)) continue;
        GateId gated;
        auto it = gated_of.find(src_f);
        if (it != gated_of.end()) {
          gated = it->second;
        } else {
          GateId held = nl.add_dff(netlist::kNullGate, false);
          gated = nl.add_mux(enable, held, xlat[src_f]);
          nl.set_dff_input(held, gated);
          gated_of.emplace(src_f, gated);
          ++gc.latches;
        }
        // Rewire the copied gate's fanin.
        for (GateId& fi : nl.gate_mut(xlat[src_g]).fanins)
          if (fi == xlat[src_f]) fi = gated;
      }
    }
  }
  return gc;
}

GuardedEvalResult evaluate_guarded(const netlist::Module& mod,
                                   const GuardedCircuit& gc,
                                   const stats::VectorStream& input,
                                   const sim::PowerParams& params,
                                   const sim::SimOptions& opts) {
  GuardedEvalResult res;
  // Reference module is combinational: engine-generic sweep.
  stats::VectorStream ref_out;
  auto ref_acts = sim::simulate_activities(mod.netlist, input, &ref_out, opts);
  // The guarded circuit holds state in its latches; it stays scalar.
  sim::Simulator s(gc.netlist);
  sim::ActivityCollector col(gc.netlist);
  for (std::size_t t = 0; t < input.words.size(); ++t) {
    s.set_all_inputs(input.words[t]);
    s.eval();
    col.record(s);
    if (ref_out.words[t] != s.output_bits()) res.functionally_correct = false;
    s.tick();
  }
  res.base_power =
      sim::compute_power(mod.netlist, ref_acts, params).total_power;
  // Transparent latches are level-sensitive: they add pin and mux loads
  // (already in the netlist) but no clock-tree load, so clock power is not
  // charged here.
  auto rep = sim::compute_power(gc.netlist, col.activities(), params);
  res.guarded_power = rep.total_power;
  return res;
}

}  // namespace hlp::core
