#pragma once

#include <vector>

#include "exec/exec.hpp"
#include "netlist/generators.hpp"
#include "sim/engine.hpp"
#include "sim/power.hpp"
#include "stats/entropy.hpp"

namespace hlp::core {

/// Section III-I, guarded evaluation (Tiwari et al. [105], Fig. 8).
///
/// Finds logic cones that are observable only through one data input of a
/// multiplexer, verifies with BDDs that the mux select implies the cone's
/// observability don't-care condition, and inserts transparent latches
/// (modeled as recirculating mux + state bit) at the cone boundary,
/// controlled by the existing select signal — no new control logic is
/// synthesized, which is the technique's distinctive feature.

struct GuardCandidate {
  netlist::GateId mux = netlist::kNullGate;
  netlist::GateId guard = netlist::kNullGate;  ///< the existing select net
  bool block_when_guard_high = true;  ///< s=1 blocks the cone (d0 side)
  netlist::GateId cone_root = netlist::kNullGate;
  std::vector<netlist::GateId> cone;  ///< gates inside the guarded block
  bool odc_verified = false;          ///< BDD implication check passed
  bool pure = false;  ///< timing condition t_l(s) < t_e(Y) holds (unit delay)
};

/// Enumerate and verify guard candidates on a combinational module.
std::vector<GuardCandidate> find_guards(const netlist::Module& mod);

/// Budgeted guard discovery with graceful degradation. Structural cone
/// enumeration is cheap and always runs; the ODC implication check runs
/// symbolically with `budget` metered on the BDD manager. If the BDDs blow
/// the budget (or allocation fails), verification degrades to random-vector
/// simulation: a candidate is accepted only if, across every sampled vector
/// where the blocking select value holds, the mux bank output equals the
/// unblocked branch (and the blocking value was actually observed).
/// Sampled acceptance is weaker than the symbolic proof; the outcome's diag
/// records the degradation so callers can tell. Deterministic in `seed`.
exec::Outcome<std::vector<GuardCandidate>> find_guards_budgeted(
    const netlist::Module& mod, const exec::Budget& budget,
    std::uint64_t seed = 0x5eedbeefu);

/// Build a transformed copy of the module with guard latches inserted for
/// the given (disjoint) candidates.
struct GuardedCircuit {
  netlist::Netlist netlist;
  std::size_t latches = 0;
};
GuardedCircuit apply_guards(const netlist::Module& mod,
                            std::span<const GuardCandidate> guards);

/// Simulate both circuits on the stream; checks functional equivalence
/// cycle by cycle and reports both powers.
struct GuardedEvalResult {
  double base_power = 0.0;
  double guarded_power = 0.0;
  bool functionally_correct = true;
  double saving() const {
    return base_power > 0.0 ? 1.0 - guarded_power / base_power : 0.0;
  }
};
/// The combinational reference sweep is engine-generic (packed under Auto);
/// the guarded circuit contains latches and always runs scalar.
GuardedEvalResult evaluate_guarded(const netlist::Module& mod,
                                   const GuardedCircuit& gc,
                                   const stats::VectorStream& input,
                                   const sim::PowerParams& params = {},
                                   const sim::SimOptions& opts = {});

}  // namespace hlp::core
