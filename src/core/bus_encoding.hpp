#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "stats/entropy.hpp"
#include "stats/rng.hpp"

namespace hlp::core {

/// Section III-G: low-power bus encoding schemes.
///
/// An encoder maps the word stream to the physical bus lines (possibly with
/// redundant lines); the figure of merit is the number of physical line
/// transitions per transmitted word. Every scheme here is paired with an
/// exact decoder so tests can verify losslessness.

class BusEncoder {
 public:
  virtual ~BusEncoder() = default;
  virtual std::string name() const = 0;
  /// Physical bus width (data lines + redundant lines).
  virtual int phys_width(int logical_width) const = 0;
  /// Encode the next word; returns the physical bus state.
  virtual std::uint64_t encode(std::uint64_t word) = 0;
  /// Decode a physical bus state back to the logical word (stateful,
  /// mirrors the receiver).
  virtual std::uint64_t decode(std::uint64_t phys) = 0;
  virtual void reset() = 0;
};

/// Factory per scheme.
std::unique_ptr<BusEncoder> binary_encoder(int width);
std::unique_ptr<BusEncoder> gray_encoder(int width);          // Su et al. [78]
std::unique_ptr<BusEncoder> bus_invert_encoder(int width);    // Stan-Burleson [77]
std::unique_ptr<BusEncoder> t0_encoder(int width);            // Benini et al. [80]
std::unique_ptr<BusEncoder> t0_bi_encoder(int width);         // T0 + Bus-Invert
/// Working-zone encoding [82] with `zones` reference registers and
/// `offset_bits` one-hot offset range.
std::unique_ptr<BusEncoder> working_zone_encoder(int width, int zones,
                                                 int offset_bits);
/// Beach encoding [83]: clusters correlated lines from a training trace and
/// builds per-cluster minimum-transition code tables.
std::unique_ptr<BusEncoder> beach_encoder(int width,
                                          const std::vector<std::uint64_t>&
                                              training_trace,
                                          int max_cluster_bits = 8);

/// Count physical bus transitions for a stream through an encoder
/// (resets the encoder first). Also verifies decode(encode(w)) == w and
/// throws on mismatch.
struct BusRunResult {
  std::uint64_t transitions = 0;
  double per_word = 0.0;
  int phys_width = 0;
};
BusRunResult run_encoder(BusEncoder& enc, const std::vector<std::uint64_t>&
                                              stream, int logical_width);

/// --- Address/data stream generators for the experiments -----------------

/// Sequential addresses with occasional jumps (in-sequence fraction `seq`).
std::vector<std::uint64_t> address_stream(std::size_t n, double seq,
                                          int width, stats::Rng& rng);

/// Interleaved accesses to `arrays` working zones, each internally
/// sequential — the pattern the working-zone code targets.
std::vector<std::uint64_t> interleaved_array_stream(std::size_t n, int arrays,
                                                    int width,
                                                    stats::Rng& rng);

/// Uniform random data words.
std::vector<std::uint64_t> random_data_stream(std::size_t n, int width,
                                              stats::Rng& rng);

}  // namespace hlp::core
