#include "core/retiming_power.hpp"

#include <algorithm>

#include "netlist/copy.hpp"
#include "sim/simulator.hpp"

namespace hlp::core {

using netlist::GateId;
using netlist::Netlist;

namespace {

std::vector<int> gate_levels(const Netlist& nl) {
  std::vector<int> lvl(nl.gate_count(), 0);
  for (GateId id : nl.topo_order()) {
    const auto& g = nl.gate(id);
    if (!netlist::is_logic(g.kind)) continue;
    int m = 0;
    for (GateId f : g.fanins) m = std::max(m, lvl[f]);
    lvl[id] = m + 1;
  }
  return lvl;
}

}  // namespace

RetimedCircuit place_registers_at_cut(const netlist::Module& mod,
                                      int cut_level) {
  RetimedCircuit rc;
  rc.cut_level = cut_level;
  Netlist& nl = rc.netlist;
  const Netlist& src = mod.netlist;
  auto levels = gate_levels(src);
  auto fo = src.fanouts();

  std::vector<GateId> new_inputs;
  for (std::size_t i = 0; i < src.inputs().size(); ++i)
    new_inputs.push_back(nl.add_input("x[" + std::to_string(i) + "]"));
  auto xlat = netlist::copy_combinational(src, nl, new_inputs);

  // Register each boundary net for its above-cut consumers.
  for (GateId u = 0; u < src.gate_count(); ++u) {
    if (levels[u] > cut_level) continue;
    bool feeds_above = false;
    for (GateId v : fo[u])
      if (levels[v] > cut_level) feeds_above = true;
    bool is_output_here =
        std::find(src.outputs().begin(), src.outputs().end(), u) !=
        src.outputs().end();
    if (!feeds_above && !is_output_here) continue;
    GateId q = nl.add_dff(xlat[u], false);
    ++rc.registers;
    for (GateId v : fo[u]) {
      if (levels[v] <= cut_level) continue;
      for (GateId& fi : nl.gate_mut(xlat[v]).fanins)
        if (fi == xlat[u]) fi = q;
    }
    if (is_output_here) xlat[u] = q;  // output sampled at the register
  }
  for (GateId o : src.outputs()) nl.mark_output(xlat[o]);
  return rc;
}

RetimingEval evaluate_retimed(const RetimedCircuit& rc,
                              const netlist::Module& reference,
                              const stats::VectorStream& input,
                              const sim::PowerParams& params) {
  RetimingEval ev;
  ev.registers = rc.registers;

  // Glitch-aware power.
  auto gl = sim::simulate_glitches(rc.netlist, input);
  auto rep_total = sim::compute_power(rc.netlist, gl.total_activity, params);
  auto rep_fn =
      sim::compute_power(rc.netlist, gl.functional_activity, params);
  ev.power_total = rep_total.total_power + rep_total.clock_power;
  ev.power_functional = rep_fn.total_power + rep_fn.clock_power;

  // Functional check: settled outputs equal the reference delayed one cycle.
  sim::Simulator ref(reference.netlist);
  sim::Simulator s(rc.netlist);
  std::vector<std::uint64_t> ref_out;
  for (std::size_t t = 0; t < input.words.size(); ++t) {
    ref.set_all_inputs(input.words[t]);
    ref.eval();
    ref_out.push_back(ref.output_bits());
    s.set_all_inputs(input.words[t]);
    s.eval();
    if (t >= 1 && s.output_bits() != ref_out[t - 1])
      ev.functionally_correct = false;
    s.tick();
  }
  return ev;
}

int select_cut_monteiro(const netlist::Module& mod,
                        const stats::VectorStream& input,
                        const sim::PowerParams& params) {
  const Netlist& src = mod.netlist;
  auto gl = sim::simulate_glitches(src, input);
  auto levels = gate_levels(src);
  auto fo = src.fanouts();
  auto loads = src.loads(params.cap);
  int depth = src.depth();

  double best_score = -1e300;
  int best_level = 0;
  for (int L = 0; L < depth; ++L) {
    double benefit = 0.0;
    std::size_t regs = 0;
    for (GateId u = 0; u < src.gate_count(); ++u) {
      if (levels[u] > L) continue;
      bool feeds_above = false;
      for (GateId v : fo[u])
        if (levels[v] > L) feeds_above = true;
      if (!feeds_above) continue;
      ++regs;
      // Glitches on u currently re-propagate through everything above the
      // cut; a register filters them. Weight by the remaining depth as a
      // proxy for the affected capacitance.
      double glitch = gl.total_activity[u] - gl.functional_activity[u];
      benefit += glitch * loads[u] * static_cast<double>(depth - L);
    }
    double reg_cost =
        static_cast<double>(regs) *
        (2.0 * params.cap.dff_clock_cap + params.cap.dff_pin_cap);
    double score = benefit - reg_cost;
    if (score > best_score) {
      best_score = score;
      best_level = L;
    }
  }
  return best_level;
}

}  // namespace hlp::core
