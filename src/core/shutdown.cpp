#include "core/shutdown.hpp"

#include <algorithm>
#include <cmath>
#include <deque>

#include "stats/regression.hpp"

namespace hlp::core {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

std::vector<WorkloadEvent> session_workload(std::size_t n_events,
                                            stats::Rng& rng,
                                            double mean_active,
                                            double mean_idle_short,
                                            double mean_idle_long,
                                            double session_end_prob) {
  std::vector<WorkloadEvent> w;
  w.reserve(n_events);
  for (std::size_t i = 0; i < n_events; ++i) {
    bool session_ends = rng.bit(session_end_prob);
    WorkloadEvent e;
    if (session_ends) {
      // Trailing interaction is a brief housekeeping burst, then a
      // heavy-tailed session gap.
      e.active = rng.exponential_mean(mean_active * 0.12) + 0.05;
      e.idle = rng.pareto(mean_idle_long * 0.4, 1.8);
    } else {
      // Real interactive bursts have a minimum service time; that floor is
      // what makes the pre-gap bursts recognizably short (the structural
      // signal Srivastava's threshold predictor exploits).
      e.active = 0.3 * mean_active + rng.exponential_mean(mean_active * 0.7);
      e.idle = rng.exponential_mean(mean_idle_short) + 0.05;
    }
    w.push_back(e);
  }
  return w;
}

double breakeven_idle(const DeviceParams& dev) {
  // Sleeping for T costs p_sleep*T + e_restart; staying up costs p_idle*T.
  return dev.e_restart / (dev.p_idle - dev.p_sleep);
}

double max_power_improvement(const std::vector<WorkloadEvent>& workload) {
  double ta = 0.0, ti = 0.0;
  for (const auto& e : workload) {
    ta += e.active;
    ti += e.idle;
  }
  return ta > 0.0 ? 1.0 + ti / ta : 1.0;
}

namespace {

class AlwaysOn final : public ShutdownPolicy {
 public:
  IdleDecision on_idle(double) override { return {}; }
  std::string name() const override { return "always-on"; }
};

class Oracle final : public ShutdownPolicy {
 public:
  Oracle(const std::vector<WorkloadEvent>& w, const DeviceParams& dev)
      : breakeven_(breakeven_idle(dev)), restart_(dev.t_restart) {
    for (const auto& e : w) idles_.push_back(e.idle);
  }
  IdleDecision on_idle(double) override {
    IdleDecision d;
    double ti = idles_[std::min(k_, idles_.size() - 1)];
    ++k_;
    if (ti > breakeven_) {
      d.sleep_after = 0.0;
      d.predicted_idle = ti;  // perfect prewakeup
      (void)restart_;
    }
    return d;
  }
  std::string name() const override { return "oracle"; }

 private:
  std::vector<double> idles_;
  std::size_t k_ = 0;
  double breakeven_;
  double restart_;
};

class StaticTimeout final : public ShutdownPolicy {
 public:
  explicit StaticTimeout(double t) : timeout_(t) {}
  IdleDecision on_idle(double) override {
    IdleDecision d;
    d.sleep_after = timeout_;
    return d;
  }
  std::string name() const override {
    return "static-T=" + std::to_string(timeout_);
  }

 private:
  double timeout_;
};

class Regression final : public ShutdownPolicy {
 public:
  Regression(const DeviceParams& dev, std::size_t window)
      : breakeven_(breakeven_idle(dev)), window_(window) {}
  IdleDecision on_idle(double prev_active) override {
    last_active_ = prev_active;
    IdleDecision d;
    if (hist_a_.size() >= 8) {
      stats::Matrix x(hist_a_.size());
      for (std::size_t i = 0; i < hist_a_.size(); ++i)
        x[i] = {hist_a_[i], hist_a_[i] * hist_a_[i], hist_i_[i]};
      std::vector<double> y(hist_next_i_.begin(), hist_next_i_.end());
      auto fit = stats::ols(x, y);
      if (fit.ok) {
        double prev_i = hist_next_i_.empty() ? 0.0 : hist_next_i_.back();
        double row[3] = {prev_active, prev_active * prev_active, prev_i};
        double pred = fit.predict(row);
        if (pred > breakeven_) d.sleep_after = 0.0;
      }
    }
    return d;
  }
  void after_idle(double actual_idle) override {
    double prev_i = hist_next_i_.empty() ? 0.0 : hist_next_i_.back();
    hist_a_.push_back(last_active_);
    hist_i_.push_back(prev_i);
    hist_next_i_.push_back(actual_idle);
    if (hist_a_.size() > window_) {
      hist_a_.pop_front();
      hist_i_.pop_front();
      hist_next_i_.pop_front();
    }
  }
  std::string name() const override { return "srivastava-regression"; }

 private:
  double breakeven_;
  std::size_t window_;
  double last_active_ = 0.0;
  std::deque<double> hist_a_, hist_i_, hist_next_i_;
};

class Threshold final : public ShutdownPolicy {
 public:
  explicit Threshold(const DeviceParams& dev)
      : breakeven_(breakeven_idle(dev)) {}
  IdleDecision on_idle(double prev_active) override {
    IdleDecision d;
    if (n_ >= 8 && prev_active < threshold_) d.sleep_after = 0.0;
    // Running low-quantile estimate of active periods ("shorter than the
    // shortest typically seen"), kept adaptive instead of an absolute min
    // so one outlier does not freeze the policy.
    threshold_ = threshold_ + 0.05 * (prev_active * 0.3 - threshold_);
    ++n_;
    (void)breakeven_;
    return d;
  }
  std::string name() const override { return "srivastava-threshold"; }

 private:
  double breakeven_;
  double threshold_ = 0.0;
  std::size_t n_ = 0;
};

class HwangWu final : public ShutdownPolicy {
 public:
  HwangWu(const DeviceParams& dev, double alpha)
      : breakeven_(breakeven_idle(dev)), restart_(dev.t_restart),
        alpha_(alpha) {}
  IdleDecision on_idle(double prev_active) override {
    IdleDecision d;
    // Exponential average in log space: robust to the heavy idle tail, so
    // a run of short idles keeps the predictor short and a single long gap
    // does not poison it.
    double pred = n_ ? std::exp(log_pred_) : 0.0;
    bool short_burst = n_ > 4 && prev_active < 0.25 * avg_active_;
    if (pred > breakeven_ + restart_ || short_burst) {
      d.sleep_after = 0.0;
      // Prewakeup only when the prediction itself says "long".
      if (pred > breakeven_ + restart_) d.predicted_idle = pred;
    } else {
      // Default guard: behave like a conservative timeout policy so long
      // idles are never missed entirely, while marginal idles (which would
      // pay the wake-up latency for little gain) stay powered.
      d.sleep_after = 2.5 * breakeven_;
    }
    avg_active_ = n_ ? (avg_active_ * 0.9 + prev_active * 0.1) : prev_active;
    ++n_;
    return d;
  }
  void after_idle(double actual) override {
    under_predicted_ = n_ > 0 && actual > std::exp(log_pred_) * 3.0;
    last_actual_ = actual;
    double la = std::log(std::max(actual, 1e-6));
    log_pred_ = n_ > 1 ? alpha_ * la + (1.0 - alpha_) * log_pred_ : la;
  }
  std::string name() const override { return "hwang-wu"; }

 private:
  double breakeven_, restart_, alpha_;
  double log_pred_ = 0.0;
  double avg_active_ = 0.0;
  double last_actual_ = 0.0;
  bool under_predicted_ = false;
  std::size_t n_ = 0;
};

}  // namespace

std::unique_ptr<ShutdownPolicy> always_on_policy() {
  return std::make_unique<AlwaysOn>();
}
std::unique_ptr<ShutdownPolicy> oracle_policy(
    const std::vector<WorkloadEvent>& workload, const DeviceParams& dev) {
  return std::make_unique<Oracle>(workload, dev);
}
std::unique_ptr<ShutdownPolicy> static_timeout_policy(double timeout) {
  return std::make_unique<StaticTimeout>(timeout);
}
std::unique_ptr<ShutdownPolicy> regression_policy(const DeviceParams& dev,
                                                  std::size_t window) {
  return std::make_unique<Regression>(dev, window);
}
std::unique_ptr<ShutdownPolicy> threshold_policy(const DeviceParams& dev) {
  return std::make_unique<Threshold>(dev);
}
std::unique_ptr<ShutdownPolicy> hwang_wu_policy(const DeviceParams& dev,
                                                double alpha) {
  return std::make_unique<HwangWu>(dev, alpha);
}

PolicyResult simulate_policy(const std::vector<WorkloadEvent>& workload,
                             const DeviceParams& dev,
                             ShutdownPolicy& policy) {
  PolicyResult r;
  r.policy = policy.name();
  for (const auto& e : workload) {
    // Active phase.
    r.energy += dev.p_active * e.active;
    r.elapsed += e.active;

    IdleDecision d = policy.on_idle(e.active);
    double ti = e.idle;
    if (d.sleep_after >= ti) {
      // Never slept during this idle period.
      r.energy += dev.p_idle * ti;
      r.elapsed += ti;
    } else {
      double awake = std::max(0.0, d.sleep_after);
      double asleep_start = awake;
      ++r.shutdowns;
      r.energy += dev.p_idle * awake;
      double wake_delay = dev.t_restart;
      double sleep_time = ti - asleep_start;
      if (std::isfinite(d.predicted_idle)) {
        // Prewakeup: device begins restarting at predicted_idle - t_restart.
        double prewake_at = std::max(asleep_start,
                                     d.predicted_idle - dev.t_restart);
        if (prewake_at + dev.t_restart <= ti) {
          // Ready before the request arrives. If the prediction was far too
          // early the policy notices the continued silence and re-sleeps
          // after one break-even interval (misprediction correction);
          // otherwise the device idles briefly until the request.
          sleep_time = prewake_at - asleep_start;
          double ready_at = prewake_at + dev.t_restart;
          double early = ti - ready_at;
          double be = breakeven_idle(dev);
          if (early > 2.0 * be) {
            r.energy += dev.p_idle * be + dev.p_sleep * (early - be) +
                        dev.e_restart;
            ++r.shutdowns;
            wake_delay = dev.t_restart;  // asleep again at the request
          } else {
            r.energy += dev.p_idle * early;
            wake_delay = 0.0;
          }
        } else if (prewake_at < ti) {
          // Restart in flight when the request arrives: partial delay.
          sleep_time = prewake_at - asleep_start;
          wake_delay = prewake_at + dev.t_restart - ti;
        }
      }
      r.energy += dev.p_sleep * sleep_time + dev.e_restart;
      r.elapsed += ti + wake_delay;
      r.delay_penalty += wake_delay;
    }
    policy.after_idle(ti);
  }
  return r;
}

}  // namespace hlp::core
