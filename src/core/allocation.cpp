#include "core/allocation.hpp"

#include <algorithm>
#include <bit>

namespace hlp::core {

using cdfg::Cdfg;
using cdfg::OpDelays;
using cdfg::OpId;
using cdfg::OpKind;
using cdfg::Schedule;

namespace {

struct Interval {
  int lo, hi;  // [lo, hi)
  bool overlaps(const Interval& o) const { return lo < o.hi && o.lo < hi; }
};

/// Greedy compatibility-graph merging: starts with one cluster per item and
/// repeatedly merges the highest-weight compatible cluster pair, exactly the
/// iterative scheme of Raghunathan–Jha. `weight(a, b)` scores item pairs;
/// cluster-pair weight is the max over cross pairs.
std::vector<int> merge_clusters(
    const std::vector<Interval>& intervals,
    const std::vector<std::vector<double>>& weight) {
  const std::size_t n = intervals.size();
  std::vector<std::vector<std::size_t>> clusters;
  for (std::size_t i = 0; i < n; ++i) clusters.push_back({i});

  auto compatible = [&](const std::vector<std::size_t>& a,
                        const std::vector<std::size_t>& b) {
    for (std::size_t x : a)
      for (std::size_t y : b)
        if (intervals[x].overlaps(intervals[y])) return false;
    return true;
  };
  auto pair_weight = [&](const std::vector<std::size_t>& a,
                         const std::vector<std::size_t>& b) {
    double best = -1.0;
    for (std::size_t x : a)
      for (std::size_t y : b) best = std::max(best, weight[x][y]);
    return best;
  };

  for (;;) {
    double best_w = -1.0;
    std::size_t bi = 0, bj = 0;
    for (std::size_t i = 0; i < clusters.size(); ++i)
      for (std::size_t j = i + 1; j < clusters.size(); ++j) {
        if (!compatible(clusters[i], clusters[j])) continue;
        double w = pair_weight(clusters[i], clusters[j]);
        if (w > best_w) {
          best_w = w;
          bi = i;
          bj = j;
        }
      }
    if (best_w < 0.0) break;
    clusters[bi].insert(clusters[bi].end(), clusters[bj].begin(),
                        clusters[bj].end());
    clusters.erase(clusters.begin() + static_cast<std::ptrdiff_t>(bj));
  }

  std::vector<int> assign(n, -1);
  for (std::size_t c = 0; c < clusters.size(); ++c)
    for (std::size_t item : clusters[c]) assign[item] = static_cast<int>(c);
  return assign;
}

}  // namespace

BindingResult bind_registers(const Cdfg& g, const Schedule& s,
                             const cdfg::DataTrace& trace, bool power_aware,
                             const OpDelays& d) {
  auto lt = cdfg::lifetimes(g, s, d);
  // Variables needing a register: values alive past their definition step.
  std::vector<OpId> vars;
  for (OpId id = 0; id < g.size(); ++id) {
    if (g.op(id).kind == OpKind::Output) continue;
    if (lt.last_use[id] > lt.def[id]) vars.push_back(id);
  }
  std::vector<Interval> iv;
  iv.reserve(vars.size());
  for (OpId v : vars) iv.push_back({lt.def[v], lt.last_use[v]});

  std::vector<std::vector<double>> w(
      vars.size(), std::vector<double>(vars.size(), 0.0));
  for (std::size_t i = 0; i < vars.size(); ++i)
    for (std::size_t j = 0; j < vars.size(); ++j) {
      if (i == j) continue;
      if (power_aware) {
        double ws = cdfg::value_stream_switching(g, trace, vars[i], vars[j]);
        w[i][j] = 1.0 * (1.0 - ws);  // W = Wc * (1 - Ws), Wc = 1
      } else {
        // Activity-blind: prefer tight lifetime packing (left-edge flavor):
        // smaller gap between intervals scores higher.
        int gap = std::max(iv[j].lo - iv[i].hi, iv[i].lo - iv[j].hi);
        w[i][j] = 1.0 / (1.0 + std::max(0, gap));
      }
    }

  auto assign_local = merge_clusters(iv, w);
  BindingResult res;
  res.assignment.assign(g.size(), -1);
  int max_r = -1;
  for (std::size_t i = 0; i < vars.size(); ++i) {
    res.assignment[vars[i]] = assign_local[i];
    max_r = std::max(max_r, assign_local[i]);
  }
  res.resources = max_r + 1;
  res.switching = register_switching(g, s, trace, res.assignment, d);
  return res;
}

double register_switching(const Cdfg& g, const Schedule& s,
                          const cdfg::DataTrace& trace,
                          std::span<const int> assignment,
                          const OpDelays& d) {
  if (trace.value.empty()) return 0.0;
  auto lt = cdfg::lifetimes(g, s, d);
  // Per register: variables in definition order.
  std::map<int, std::vector<OpId>> regs;
  for (OpId id = 0; id < g.size(); ++id)
    if (id < assignment.size() && assignment[id] >= 0)
      regs[assignment[id]].push_back(id);
  double total = 0.0;
  for (auto& [r, vars] : regs) {
    std::sort(vars.begin(), vars.end(),
              [&](OpId a, OpId b) { return lt.def[a] < lt.def[b]; });
    for (std::size_t i = 0; i < vars.size(); ++i) {
      OpId cur = vars[i];
      OpId nxt = vars[(i + 1) % vars.size()];
      bool wraps = (i + 1 == vars.size());
      int w = std::min(g.op(cur).width, g.op(nxt).width);
      std::uint64_t mask =
          w >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << w) - 1);
      for (std::size_t t = 0; t + (wraps ? 1 : 0) < trace.value.size(); ++t) {
        std::size_t tn = wraps ? t + 1 : t;
        auto a = static_cast<std::uint64_t>(trace.value[t][cur]) & mask;
        auto b = static_cast<std::uint64_t>(trace.value[tn][nxt]) & mask;
        total += static_cast<double>(std::popcount(a ^ b));
      }
    }
  }
  return total / static_cast<double>(trace.value.size());
}

BindingResult bind_functional_units(const Cdfg& g, const Schedule& s,
                                    const cdfg::DataTrace& trace,
                                    bool power_aware, const OpDelays& d) {
  BindingResult res;
  res.assignment.assign(g.size(), -1);
  int next_base = 0;
  double total_sw = 0.0;

  // Bind each op kind separately (units are not shared across kinds).
  for (OpKind kind : {OpKind::Add, OpKind::Sub, OpKind::Mul, OpKind::Shift,
                      OpKind::Cmp}) {
    std::vector<OpId> ops;
    for (OpId id = 0; id < g.size(); ++id)
      if (g.op(id).kind == kind) ops.push_back(id);
    if (ops.empty()) continue;
    std::vector<Interval> iv;
    for (OpId o : ops) iv.push_back({s.start[o], s.start[o] + d.of(kind)});

    std::vector<std::vector<double>> w(
        ops.size(), std::vector<double>(ops.size(), 0.0));
    for (std::size_t i = 0; i < ops.size(); ++i)
      for (std::size_t j = 0; j < ops.size(); ++j) {
        if (i == j) continue;
        if (power_aware) {
          // Operand switching between the two ops, port by port.
          double ws = 0.0;
          const auto& pa = g.op(ops[i]).preds;
          const auto& pb = g.op(ops[j]).preds;
          int ports = static_cast<int>(std::min(pa.size(), pb.size()));
          for (int p = 0; p < ports; ++p)
            ws += cdfg::value_stream_switching(
                g, trace, pa[static_cast<std::size_t>(p)],
                pb[static_cast<std::size_t>(p)]);
          ws /= std::max(1, ports);
          w[i][j] = 1.0 - ws;
        } else {
          int gap = std::max(iv[j].lo - iv[i].hi, iv[i].lo - iv[j].hi);
          w[i][j] = 1.0 / (1.0 + std::max(0, gap));
        }
      }
    auto assign_local = merge_clusters(iv, w);
    int max_local = -1;
    for (std::size_t i = 0; i < ops.size(); ++i) {
      res.assignment[ops[i]] = next_base + assign_local[i];
      max_local = std::max(max_local, assign_local[i]);
    }
    // Switching on each unit of this kind.
    std::map<int, std::vector<OpId>> units;
    for (std::size_t i = 0; i < ops.size(); ++i)
      units[assign_local[i]].push_back(ops[i]);
    for (auto& [u, uops] : units) {
      std::sort(uops.begin(), uops.end(),
                [&](OpId a, OpId b) { return s.start[a] < s.start[b]; });
      for (std::size_t i = 0; i < uops.size(); ++i) {
        OpId cur = uops[i];
        OpId nxt = uops[(i + 1) % uops.size()];
        bool wraps = (i + 1 == uops.size());
        const auto& pc = g.op(cur).preds;
        const auto& pn = g.op(nxt).preds;
        int ports = static_cast<int>(std::min(pc.size(), pn.size()));
        int w_bits = std::min(g.op(cur).width, g.op(nxt).width);
        std::uint64_t mask = w_bits >= 64
                                 ? ~std::uint64_t{0}
                                 : ((std::uint64_t{1} << w_bits) - 1);
        for (std::size_t t = 0;
             t + (wraps ? 1 : 0) < trace.value.size(); ++t) {
          std::size_t tn = wraps ? t + 1 : t;
          for (int p = 0; p < ports; ++p) {
            auto a = static_cast<std::uint64_t>(
                         trace.value[t][pc[static_cast<std::size_t>(p)]]) &
                     mask;
            auto b = static_cast<std::uint64_t>(
                         trace.value[tn][pn[static_cast<std::size_t>(p)]]) &
                     mask;
            total_sw += static_cast<double>(std::popcount(a ^ b));
          }
        }
      }
    }
    next_base += max_local + 1;
  }
  res.resources = next_base;
  res.switching = trace.value.empty()
                      ? 0.0
                      : total_sw / static_cast<double>(trace.value.size());
  return res;
}

}  // namespace hlp::core
