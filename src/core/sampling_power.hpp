#pragma once

#include <functional>
#include <string>
#include <string_view>

#include "core/macromodel.hpp"
#include "exec/exec.hpp"
#include "sim/engine.hpp"
#include "stats/rng.hpp"

namespace hlp::core {

/// Section II-C2: power co-simulation estimators layered on a macro-model.
///
/// The "RT-level simulator" is our functional simulator; the estimators
/// differ in how often they collect input statistics and evaluate the
/// macro-model (census = every cycle, sampler = sampled cycles) and whether
/// they correct macro-model bias with a small number of gate-level cycle
/// simulations (adaptive).

/// A macro-model evaluated at transition t of a characterization set.
using MacroFn =
    std::function<double(const ModuleCharacterization&, std::size_t)>;

struct CosimEstimate {
  double mean_energy = 0.0;       ///< estimated switched cap per cycle
  std::size_t macro_evals = 0;    ///< data collections + model evaluations
  std::size_t gate_cycle_sims = 0;///< gate-level cycles simulated
};

/// Census macro-modeling [46]: evaluate the macro-model at every cycle.
CosimEstimate census_estimate(const ModuleCharacterization& eval_set,
                              const MacroFn& model);

/// Sampler macro-modeling [46]: `n_samples` simple random samples of
/// `sample_size` cycles each (>= 30 for normality); the estimate is the
/// mean of sample means.
CosimEstimate sampler_estimate(const ModuleCharacterization& eval_set,
                               const MacroFn& model, std::size_t sample_size,
                               std::size_t n_samples, stats::Rng& rng);

/// Adaptive macro-modeling [46]: the macro-model is used as a *predictor*
/// for the gate-level power; a small random subsample of cycles is simulated
/// at gate level and a ratio estimator maps the census macro mean onto the
/// gate-level scale, removing training-set bias.
CosimEstimate adaptive_estimate(const ModuleCharacterization& eval_set,
                                const MacroFn& model,
                                std::size_t gate_sample_size,
                                stats::Rng& rng);

/// Stratified sampling (Ding et al. [33]): the cycle axis is split into
/// contiguous strata and each is sampled, which cuts the estimator variance
/// when power drifts over the trace (program phases).
CosimEstimate stratified_estimate(const ModuleCharacterization& eval_set,
                                  const MacroFn& model, std::size_t strata,
                                  std::size_t per_stratum, stats::Rng& rng);

/// Gate-level reference mean (full census of reference energies).
double gate_level_mean(const ModuleCharacterization& eval_set);

/// Monte Carlo gate-level power estimation with confidence-interval
/// stopping (Burch et al. [32], the paper's II-C step 4 speedup): simulate
/// random vector *pairs* drawn from the generator until the relative CI
/// half-width of mean switched cap falls below `epsilon`.
///
/// Engine-generic: under the default Auto engine, combinational modules
/// simulate 64·W independent vector pairs per block step (one pair per bit
/// lane of a W-word block, W = SimOptions::block_words); the
/// sequential-sampling stop rule is evaluated per pair in draw order, so
/// the estimate, pair count, and CI are bit-identical to the scalar engine
/// at every width and dispatch level. The only observable difference is
/// that `vector_gen` may be drawn up to one block (<= 64·W pairs) ahead of
/// a convergence stopping point; a *step-quota* stop never over-draws (the
/// batch size is capped by the remaining quota and the meter is charged
/// before the block is drawn), so quota-stopped runs can be resumed
/// against the same generator with no divergence.
/// Resume token: the full Welford state of the running estimate. A stopped
/// run's checkpoint, fed back into monte_carlo_power_budgeted together with
/// the *same, un-rewound* vector generator, continues the estimate exactly
/// where it left off.
struct MonteCarloCheckpoint {
  std::size_t count = 0;
  double mean = 0.0;
  double m2 = 0.0;
  bool valid() const { return count > 0; }

  /// Canonical text form `"<count> <mean> <m2>"`. Doubles are rendered by
  /// std::to_chars shortest-round-trip, so serialize → parse → serialize is
  /// byte-identical and parse(serialize(c)) reconstructs c bit-for-bit —
  /// the property the hlp::jobs crash-safe ledger relies on to resume an
  /// interrupted estimate with no drift. Locale-independent.
  std::string serialize() const;
  /// Strict inverse: exactly three space-separated fields, fully consumed.
  /// Returns false (leaving `out` untouched) on any malformation.
  static bool parse(std::string_view text, MonteCarloCheckpoint& out);
};

struct MonteCarloResult {
  double mean_energy = 0.0;   ///< switched cap per transition
  std::size_t pairs = 0;      ///< vector pairs simulated (incl. resumed)
  double ci_halfwidth = 0.0;  ///< absolute, at the requested confidence
  bool converged = false;     ///< == (stop_reason == Converged)

  /// Why sampling stopped — unambiguous, unlike the old converged=false
  /// which conflated pair exhaustion with every other cause.
  enum class StopReason : std::uint8_t {
    Converged,          ///< CI half-width criterion met
    MaxPairsExhausted,  ///< max_pairs simulated without meeting the CI
    BudgetExhausted,    ///< exec budget tripped (see the Outcome's diag)
  };
  StopReason stop_reason = StopReason::MaxPairsExhausted;

  /// Always filled; pass to monte_carlo_power_budgeted to resume.
  MonteCarloCheckpoint checkpoint;
};
MonteCarloResult monte_carlo_power(
    const netlist::Module& mod,
    const std::function<std::uint64_t()>& vector_gen, double epsilon,
    double confidence = 0.95, std::size_t min_pairs = 30,
    std::size_t max_pairs = 100000,
    const netlist::CapacitanceModel& cap = {},
    const sim::SimOptions& opts = {});

/// Budgeted Monte Carlo power: one meter step per vector pair, charged in
/// block-sized batches on the packed engine (the whole block's pair count
/// in one `Meter` probe, before the block is drawn) so budget accounting
/// costs O(1) per 64·W pairs instead of per pair. Deadline and cancel
/// responsiveness is therefore one block, and a step-quota trip still lands
/// on exactly the same pair as the scalar engine (the batch never exceeds
/// the remaining quota). When the budget trips mid-run the outcome carries
/// the partial estimate (mean, CI over the pairs actually simulated) with
/// stop_reason = BudgetExhausted and a resume checkpoint — exhausted
/// budgets return resumable partial estimates instead of hanging or
/// pretending to have converged. Pass a previous run's `resume` checkpoint
/// (and keep drawing from the same generator sequence) to continue;
/// `max_pairs` counts resumed pairs too.
exec::Outcome<MonteCarloResult> monte_carlo_power_budgeted(
    const netlist::Module& mod,
    const std::function<std::uint64_t()>& vector_gen,
    const exec::Budget& budget, double epsilon, double confidence = 0.95,
    std::size_t min_pairs = 30, std::size_t max_pairs = 100000,
    const netlist::CapacitanceModel& cap = {},
    const sim::SimOptions& opts = {},
    const MonteCarloCheckpoint& resume = {});

/// Sharded Monte Carlo: the pair stream is decomposed into fixed-size
/// *chunks* that are independent of the thread count — chunk c draws its
/// pairs from `Rng(stats::shard_seed(seed, c))` — so every (threads,
/// resume-point) configuration simulates exactly the same pairs. Workers
/// claim chunks in index order and the supervisor merges completed chunks
/// strictly in chunk order with `RunningStats::merge`, which makes the
/// merged moments deterministic: serial, threaded, and resumed runs return
/// bit-identical mean/M2/CI.
struct ShardedMcOptions {
  std::size_t total_pairs = 100000;  ///< campaign size (upper bound on pairs)
  std::size_t chunk_pairs = 4096;    ///< pairs per chunk (determinism unit)
  int threads = 1;                   ///< worker count; <= 0 -> hw concurrency
  /// Relative CI target evaluated on the merged chunk-order prefix after
  /// each chunk completes; 0 disables early stopping (run all pairs).
  double epsilon = 0.0;
  double confidence = 0.95;
  std::size_t min_pairs = 30;
  sim::SimOptions sim;
};

/// Budgeted sharded Monte Carlo. The meter is charged a chunk's whole pair
/// count at claim time (under the scheduler lock, in chunk order), so a
/// step-quota stop cuts the campaign at a chunk boundary that depends only
/// on the quota — not on the thread schedule — and the partial result is
/// bit-identical across thread counts. The returned checkpoint covers the
/// contiguous prefix of completed chunks (checkpoint.count is a multiple of
/// chunk_pairs unless total_pairs cuts the last chunk short); pass it back
/// as `resume` with the same seed/chunk_pairs to continue. Chunks after a
/// convergence point are discarded, so the converged statistics match a
/// serial chunk-order run exactly.
exec::Outcome<MonteCarloResult> monte_carlo_power_sharded(
    const netlist::Module& mod, std::uint64_t seed,
    const ShardedMcOptions& opts = {}, const exec::Budget& budget = {},
    const netlist::CapacitanceModel& cap = {},
    const MonteCarloCheckpoint& resume = {});

}  // namespace hlp::core
