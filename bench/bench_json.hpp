#pragma once

// Minimal machine-readable bench output: a flat JSON writer for the
// BENCH_*.json files that track the perf trajectory across PRs. No
// external dependency; only the shapes our benches need (objects, arrays,
// strings, numbers). String escaping is the shared canonical policy from
// util/json.hpp (also used by the campaign ledger and the serve wire
// protocol); doubles here use %.6g — report files trade round-trip
// exactness for readability, unlike the ledger.

#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "util/json.hpp"

namespace hlp::benchjson {

struct Value;
using Object = std::vector<std::pair<std::string, Value>>;
using Array = std::vector<Value>;

struct Value {
  std::variant<std::string, double, std::uint64_t, bool, Object, Array> v;
  Value(const char* s) : v(std::string(s)) {}
  Value(std::string s) : v(std::move(s)) {}
  Value(double d) : v(d) {}
  Value(std::uint64_t u) : v(u) {}
  Value(int i) : v(static_cast<std::uint64_t>(i)) {}
  Value(bool b) : v(b) {}
  Value(Object o) : v(std::move(o)) {}
  Value(Array a) : v(std::move(a)) {}
};

inline void write_value(std::FILE* f, const Value& val, int indent);

inline void write_indent(std::FILE* f, int n) {
  for (int i = 0; i < n; ++i) std::fputc(' ', f);
}

inline void write_string(std::FILE* f, const std::string& s) {
  std::string quoted;
  util::append_json_string(quoted, s);
  std::fwrite(quoted.data(), 1, quoted.size(), f);
}

inline void write_object(std::FILE* f, const Object& o, int indent) {
  std::fputs("{\n", f);
  for (std::size_t i = 0; i < o.size(); ++i) {
    write_indent(f, indent + 2);
    write_string(f, o[i].first);
    std::fputs(": ", f);
    write_value(f, o[i].second, indent + 2);
    if (i + 1 < o.size()) std::fputc(',', f);
    std::fputc('\n', f);
  }
  write_indent(f, indent);
  std::fputc('}', f);
}

inline void write_array(std::FILE* f, const Array& a, int indent) {
  std::fputs("[\n", f);
  for (std::size_t i = 0; i < a.size(); ++i) {
    write_indent(f, indent + 2);
    write_value(f, a[i], indent + 2);
    if (i + 1 < a.size()) std::fputc(',', f);
    std::fputc('\n', f);
  }
  write_indent(f, indent);
  std::fputc(']', f);
}

inline void write_value(std::FILE* f, const Value& val, int indent) {
  if (const auto* s = std::get_if<std::string>(&val.v)) {
    write_string(f, *s);
  } else if (const auto* d = std::get_if<double>(&val.v)) {
    std::fprintf(f, "%.6g", *d);
  } else if (const auto* u = std::get_if<std::uint64_t>(&val.v)) {
    std::fprintf(f, "%llu", static_cast<unsigned long long>(*u));
  } else if (const auto* b = std::get_if<bool>(&val.v)) {
    std::fputs(*b ? "true" : "false", f);
  } else if (const auto* o = std::get_if<Object>(&val.v)) {
    write_object(f, *o, indent);
  } else if (const auto* a = std::get_if<Array>(&val.v)) {
    write_array(f, *a, indent);
  }
}

/// Write `root` to `path` (overwrites). Returns false on I/O failure.
inline bool save(const std::string& path, const Object& root) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  write_object(f, root, 0);
  std::fputc('\n', f);
  std::fclose(f);
  return true;
}

}  // namespace hlp::benchjson
