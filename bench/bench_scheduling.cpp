// E18 — Power-aware operation scheduling (Section III-D).
//
// Paper: Monteiro et al. [63] schedule control-producing operations early
// so mutually exclusive branch cones can be shut down; Musoll-Cortadella
// [60] order operations to keep common operands on the same functional
// unit.

#include <cstdio>

#include "cdfg/generators.hpp"
#include "core/scheduling_power.hpp"
#include "stats/rng.hpp"

int main() {
  using namespace hlp;
  using namespace hlp::core;
  using cdfg::OpKind;

  OpEnergyModel energy;

  std::printf("E18a — Monteiro power-management scheduling on branching "
              "CDFGs\n\n");
  std::printf("%-16s %7s %8s %8s %10s %10s %9s %9s\n", "design", "slack",
              "muxes", "managed", "E(base)", "E(pm)", "saving", "lat+");
  for (auto [branches, cone, seed] :
       {std::tuple{2, 3, 7ul}, std::tuple{3, 4, 9ul}, std::tuple{4, 5, 11ul}}) {
    auto g = cdfg::branching_cdfg(branches, cone, seed);
    int muxes = 0;
    for (cdfg::OpId i = 0; i < g.size(); ++i)
      if (g.op(i).kind == OpKind::Mux) ++muxes;
    auto base_sched = cdfg::asap(g);
    double e_base = cdfg_energy(g, energy);
    for (int slack : {0, 2, 6}) {
      auto pm = monteiro_schedule(g, slack);
      double e_pm = cdfg_energy(g, energy, pm.activation_prob);
      std::printf("branch-%dx%-6d %7d %8d %8zu %10.0f %10.0f %8.1f%% %9d\n",
                  branches, cone, slack, muxes, pm.managed_muxes.size(),
                  e_base, e_pm, 100.0 * (1.0 - e_pm / e_base),
                  pm.schedule.length - base_sched.length);
    }
  }
  std::printf("(paper claim shape: more latency slack -> more manageable "
              "muxes -> larger expected-energy saving)\n\n");

  std::printf("E18b — activity-driven scheduling (FU operand switching on "
              "a single shared multiplier)\n\n");
  std::printf("%-14s %10s %12s %12s %9s\n", "design", "latency",
              "sw(slack)", "sw(activity)", "change");
  for (auto [vars, coefs] : {std::pair{3, 4}, {4, 4}, {4, 8}}) {
    auto g = cdfg::operand_sharing_cdfg(vars, coefs);
    std::map<OpKind, int> limits{{OpKind::Mul, 1}, {OpKind::Add, 1}};
    auto plain = cdfg::list_schedule(g, limits);
    auto act = activity_driven_schedule(g, limits);

    stats::Rng rng(3);
    std::vector<std::vector<std::int64_t>> inputs;
    int n_inputs = 0;
    for (cdfg::OpId i = 0; i < g.size(); ++i)
      if (g.op(i).kind == OpKind::Input) ++n_inputs;
    for (int i = 0; i < n_inputs; ++i) {
      std::vector<std::int64_t> vs;
      std::int64_t v = rng.uniform_int(0, 255);
      for (int t = 0; t < 300; ++t) {
        v = (v + rng.uniform_int(-3, 3)) & 0xFF;
        vs.push_back(v);
      }
      inputs.push_back(vs);
    }
    auto tr = cdfg::simulate_cdfg(g, inputs);
    auto b1 = bind_round_robin(g, plain, limits);
    auto b2 = bind_round_robin(g, act, limits);
    double s1 = fu_input_switching(g, plain, b1, tr);
    double s2 = fu_input_switching(g, act, b2, tr);
    std::printf("share-%dx%-7d %4d/%-4d %12.3f %12.3f %8.1f%%\n", vars,
                coefs, plain.length, act.length, s1, s2,
                100.0 * (1.0 - s2 / s1));
  }
  std::printf("(paper claim shape: clustering operand-sharing operations "
              "on the same unit reduces its input activity)\n");

  std::printf("\nE18c — power-conscious loop folding (Kim-Choi [62]): "
              "common operands hidden inside loops\n\n");
  std::printf("%8s %14s %14s %9s\n", "taps", "sw(unfolded)", "sw(folded)",
              "saving");
  for (int taps : {2, 4, 8, 16}) {
    auto res = evaluate_loop_folding(taps, 2000, 8, 7);
    std::printf("%8d %14.3f %14.3f %8.1f%%\n", taps, res.sw_unfolded,
                res.sw_folded, 100.0 * res.saving());
  }
  std::printf("(folding overlaps iterations so all taps of one sample run "
              "back-to-back on the multiplier — 'significant power-"
              "reducing effects on DSP applications')\n");
  return 0;
}
