// E2 / E3 — Software-level power (Section II-A, III-A):
//  * Fig. 2 memory-access transformation,
//  * Tiwari instruction-level model decomposition,
//  * profile-driven program synthesis (Hsieh et al. [8]): trace shortening
//    vs. estimation error,
//  * cold scheduling (Su et al. [6]).

#include <cmath>
#include <cstdio>

#include "core/software_power.hpp"

int main() {
  using namespace hlp;
  using namespace hlp::core;
  auto model = InstructionEnergyModel::typical();

  std::printf("E2 — Fig. 2: eliminating the memory-resident temporary\n\n");
  std::printf("%8s %12s %12s %12s %12s\n", "n", "accesses", "accesses'",
              "energy", "energy'");
  for (int n : {50, 200, 1000}) {
    isa::Machine m1, m2;
    auto st1 = m1.run(isa::fig2_with_memory_temp(n), 10'000'000);
    auto st2 = m2.run(isa::fig2_register_temp(n), 10'000'000);
    std::printf("%8d %12llu %12llu %12.0f %12.0f\n", n,
                static_cast<unsigned long long>(st1.mem_reads +
                                                st1.mem_writes),
                static_cast<unsigned long long>(st2.mem_reads +
                                                st2.mem_writes),
                model.energy(st1), model.energy(st2));
  }
  std::printf("(paper: the transformation removes exactly 2n accesses)\n\n");

  std::printf("E3 — Tiwari model and profile-driven synthesis\n\n");
  struct Wl {
    const char* name;
    isa::Program prog;
  };
  isa::MachineConfig cfg;
  std::vector<Wl> wls;
  wls.push_back({"dsp-kernel", isa::dsp_kernel(8, 4000)});
  wls.push_back({"array-sum", isa::array_sum(64, 64)});
  wls.push_back({"rand-arith", isa::random_arith(80, 3000, 0.35, 5)});
  wls.push_back({"rand-loads", isa::random_loads(8192, 20000, 9)});

  std::printf("%-12s %10s %8s %10s %8s %10s %7s\n", "workload", "instrs",
              "EPI", "syn-instr", "EPI'", "shorten", "err");
  for (auto& wl : wls) {
    isa::Machine m(cfg);
    auto st = m.run(wl.prog, 20'000'000);
    auto prof = CharacteristicProfile::from(st);
    // Keep the synthetic trace long enough to amortize cache warmup (the
    // profile describes steady state, not cold-start behaviour).
    std::uint64_t target =
        std::max<std::uint64_t>(4000, st.instructions / 100);
    auto prog = synthesize_program(prof, target, cfg, 7);
    isa::Machine m2(cfg);
    auto st2 = m2.run(prog, 2 * target);
    double err = std::abs(model.epi(st2) - model.epi(st)) / model.epi(st);
    std::printf("%-12s %10llu %8.3f %10llu %8.3f %9.0fx %6.1f%%\n", wl.name,
                static_cast<unsigned long long>(st.instructions),
                model.epi(st),
                static_cast<unsigned long long>(st2.instructions),
                model.epi(st2),
                static_cast<double>(st.instructions) /
                    static_cast<double>(st2.instructions),
                100.0 * err);
  }
  std::printf("(paper: 3-5 orders of magnitude shorter traces at "
              "negligible error; the shortening here is bounded by the\n"
              " synthetic loop length we chose — scale "
              "target_instructions down for larger ratios)\n\n");

  std::printf("Cold scheduling (Su et al. [6]) — static circuit-state "
              "cost\n\n");
  std::printf("%-12s %12s %12s %9s\n", "program", "cost", "cold-cost",
              "saving");
  for (auto& [name, prog] :
       std::vector<std::pair<const char*, isa::Program>>{
           {"rand-arith", isa::random_arith(120, 1, 0.4, 3)},
           {"dsp-kernel", isa::dsp_kernel(8, 1)}}) {
    auto cold = cold_schedule(prog, model);
    double c0 = static_state_cost(prog, model);
    double c1 = static_state_cost(cold, model);
    std::printf("%-12s %12.2f %12.2f %8.1f%%\n", name, c0, c1,
                100.0 * (1.0 - c1 / c0));
  }
  return 0;
}
