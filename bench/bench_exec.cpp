// E-EXEC — Cost of budgeted execution (src/exec).
//
// Two questions decide whether exec::Budget can stay on by default:
//
//  1. Overhead: metering the Monte Carlo hot loop (one non-throwing
//     over_budget() probe per vector pair, every budget dimension armed but
//     never tripping) must cost < 2% of the unmetered estimator's
//     throughput, on both the scalar and the packed engine.
//
//  2. Time-to-degrade: when a BDD node cap trips on an adversarially
//     ordered build, how long from call to (a) the BudgetExceeded unwind
//     and (b) a usable degraded answer from the sampling fallback.
//
// Results go to BENCH_exec.json (cwd, or argv[1] after the
// google-benchmark flags).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>

#include "bdd/netlist_bdd.hpp"
#include "bench_json.hpp"
#include "core/precomputation.hpp"
#include "core/sampling_power.hpp"
#include "exec/exec.hpp"
#include "netlist/generators.hpp"
#include "stats/rng.hpp"

namespace {

using namespace hlp;
using clock_type = std::chrono::steady_clock;

constexpr std::size_t kPairs = 20000;

/// All-dimensions-armed budget that never trips within kPairs pairs: the
/// probe pays for quota + cancel + deadline checks every single pair.
exec::Budget armed_budget() {
  exec::Budget b;
  b.step_quota = kPairs + 1;
  b.deadline_seconds = 3600.0;
  return b;
}

double run_mc_plain(const netlist::Module& mod, sim::EngineKind engine) {
  stats::Rng rng(11);
  const int bits = std::min(64, mod.total_input_bits());
  sim::SimOptions opts;
  opts.engine = engine;
  auto res = core::monte_carlo_power(
      mod, [&] { return rng.uniform_bits(bits); }, 1e-12, 0.95, kPairs,
      kPairs, {}, opts);
  return res.mean_energy;
}

double run_mc_budgeted(const netlist::Module& mod, sim::EngineKind engine) {
  stats::Rng rng(11);
  const int bits = std::min(64, mod.total_input_bits());
  sim::SimOptions opts;
  opts.engine = engine;
  auto out = core::monte_carlo_power_budgeted(
      mod, [&] { return rng.uniform_bits(bits); }, armed_budget(), 1e-12,
      0.95, kPairs, kPairs, {}, opts);
  return out->mean_energy;
}

/// Best-of-`reps` pairs/sec to damp scheduler noise.
template <typename Fn>
double measure_pairs_per_sec(Fn&& fn, int reps) {
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    auto t0 = clock_type::now();
    benchmark::DoNotOptimize(fn());
    auto t1 = clock_type::now();
    double secs = std::chrono::duration<double>(t1 - t0).count();
    if (secs > 0.0)
      best = std::max(best, static_cast<double>(kPairs) / secs);
  }
  return best;
}

void BM_MonteCarlo(benchmark::State& state, sim::EngineKind engine,
                   bool budgeted) {
  auto mod = netlist::adder_module(8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(budgeted ? run_mc_budgeted(mod, engine)
                                      : run_mc_plain(mod, engine));
  }
  state.counters["pairs_per_sec"] = benchmark::Counter(
      static_cast<double>(kPairs),
      benchmark::Counter::kIsIterationInvariantRate);
}

struct DegradeTiming {
  double trip_seconds = 0.0;      ///< call -> BudgetExceeded unwind
  double fallback_seconds = 0.0;  ///< call -> degraded answer in hand
  bool degraded = false;
};

/// (a) Raw trip latency: adversarially ordered adder build against a node
/// cap. (b) End-to-end degrade latency: the precomputation selector on the
/// same kind of blow-up, through its sampling fallback.
DegradeTiming measure_time_to_degrade() {
  DegradeTiming t;
  {
    auto mod = netlist::adder_module(14);  // concatenated order: exponential
    bdd::Manager m;
    exec::Meter meter(exec::Budget::with_node_cap(20000));
    m.set_meter(&meter);
    auto t0 = clock_type::now();
    try {
      (void)bdd::build_bdds(m, mod.netlist);
    } catch (const exec::BudgetExceeded&) {
      t.trip_seconds =
          std::chrono::duration<double>(clock_type::now() - t0).count();
    }
  }
  {
    auto mod = netlist::comparator_module(10);
    auto t0 = clock_type::now();
    auto out = core::select_precompute_inputs_budgeted(
        mod, 2, exec::Budget::with_node_cap(64));
    t.fallback_seconds =
        std::chrono::duration<double>(clock_type::now() - t0).count();
    t.degraded = out.degraded();
  }
  return t;
}

void write_report(const std::string& path) {
  auto mod = netlist::adder_module(8);
  std::printf("\nE-EXEC — budget-probe overhead on the Monte Carlo hot "
              "loop (%zu pairs, all budget dimensions armed)\n\n", kPairs);
  std::printf("%8s %16s %16s %10s\n", "engine", "plain pairs/s",
              "budgeted pairs/s", "overhead");
  benchjson::Array overhead;
  for (auto [engine, name] :
       {std::pair{sim::EngineKind::Scalar, "scalar"},
        std::pair{sim::EngineKind::Packed, "packed"}}) {
    double plain = measure_pairs_per_sec([&] { return run_mc_plain(mod, engine); }, 5);
    double budgeted =
        measure_pairs_per_sec([&] { return run_mc_budgeted(mod, engine); }, 5);
    double pct = plain > 0.0 ? (plain - budgeted) / plain * 100.0 : 0.0;
    std::printf("%8s %16.3e %16.3e %9.2f%%\n", name, plain, budgeted, pct);
    overhead.push_back(benchjson::Object{
        {"engine", name},
        {"pairs", kPairs},
        {"plain_pairs_per_sec", plain},
        {"budgeted_pairs_per_sec", budgeted},
        {"overhead_percent", pct},
    });
  }

  auto deg = measure_time_to_degrade();
  std::printf("\ntime-to-degrade (node-cap trip)\n");
  std::printf("  adversarial adder14 build, cap 20000: trip in %.3f ms\n",
              deg.trip_seconds * 1e3);
  std::printf("  precompute select comparator10, cap 64: degraded answer "
              "in %.3f ms (degraded=%d)\n",
              deg.fallback_seconds * 1e3, deg.degraded ? 1 : 0);

  benchjson::Object root{
      {"bench", "exec"},
      {"overhead_target_percent", 2.0},
      {"monte_carlo_overhead", std::move(overhead)},
      {"node_cap_degrade",
       benchjson::Object{
           {"bdd_trip_seconds", deg.trip_seconds},
           {"precompute_fallback_seconds", deg.fallback_seconds},
           {"precompute_degraded", deg.degraded},
       }},
  };
  if (benchjson::save(path, root))
    std::printf("\nwrote %s\n", path.c_str());
  else
    std::printf("\nfailed to write %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RegisterBenchmark("BM_MonteCarlo_plain/scalar",
                               [](benchmark::State& st) {
                                 BM_MonteCarlo(st, sim::EngineKind::Scalar,
                                               false);
                               });
  benchmark::RegisterBenchmark("BM_MonteCarlo_budgeted/scalar",
                               [](benchmark::State& st) {
                                 BM_MonteCarlo(st, sim::EngineKind::Scalar,
                                               true);
                               });
  benchmark::RegisterBenchmark("BM_MonteCarlo_plain/packed",
                               [](benchmark::State& st) {
                                 BM_MonteCarlo(st, sim::EngineKind::Packed,
                                               false);
                               });
  benchmark::RegisterBenchmark("BM_MonteCarlo_budgeted/packed",
                               [](benchmark::State& st) {
                                 BM_MonteCarlo(st, sim::EngineKind::Packed,
                                               true);
                               });
  benchmark::RunSpecifiedBenchmarks();
  const char* path = "BENCH_exec.json";
  if (argc > 1 && argv[1][0] != '-') path = argv[1];
  write_report(path);
  return 0;
}
