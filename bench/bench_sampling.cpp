// E10 — Sampling-based power co-simulation (Section II-C2, Hsieh et al.
// [46]).
//
// Paper claims:
//  * sampler macro-modeling: ~50x efficiency over census at ~1% error;
//  * census of a biased macro-model: ~30% error vs. gate level;
//  * adaptive macro-modeling: ~5% error using few gate-level cycles.
//
// The wall-clock part is measured with google-benchmark; the accuracy part
// is printed as a table.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <cstdio>

#include "bench_json.hpp"
#include "core/compaction.hpp"
#include "core/sampling_power.hpp"
#include "stats/descriptive.hpp"
#include "sim/streams.hpp"

namespace {

using namespace hlp;
using namespace hlp::core;

struct Setup {
  netlist::Module mod = netlist::adder_module(8);
  ModuleCharacterization train, eval;
  InputOutputModel io;

  explicit Setup(double hold) {
    stats::Rng rng(5);
    auto train_in = sim::random_stream(16, 3000, 0.5, rng);
    train = characterize(mod, train_in);
    io.fit(train);
    auto eval_in = hold > 0.0
                       ? sim::correlated_stream(16, 20000, hold, rng)
                       : sim::random_stream(16, 20000, 0.5, rng);
    eval = characterize(mod, eval_in);
  }
  MacroFn model() const {
    return [this](const ModuleCharacterization& c, std::size_t t) {
      return io.predict_cycle(c.in_activity[t], c.out_activity[t]);
    };
  }
};

Setup& unbiased() {
  static Setup s(0.0);
  return s;
}
Setup& biased() {
  static Setup s(0.9);
  return s;
}

void BM_CensusEstimate(benchmark::State& state) {
  auto& s = unbiased();
  auto m = s.model();
  for (auto _ : state) {
    auto est = census_estimate(s.eval, m);
    benchmark::DoNotOptimize(est.mean_energy);
  }
  state.counters["macro_evals"] =
      static_cast<double>(s.eval.transitions());
}
BENCHMARK(BM_CensusEstimate);

void BM_SamplerEstimate(benchmark::State& state) {
  auto& s = unbiased();
  auto m = s.model();
  auto n_samples = static_cast<std::size_t>(state.range(0));
  stats::Rng rng(11);
  for (auto _ : state) {
    auto est = sampler_estimate(s.eval, m, 30, n_samples, rng);
    benchmark::DoNotOptimize(est.mean_energy);
  }
  state.counters["macro_evals"] = static_cast<double>(30 * n_samples);
}
BENCHMARK(BM_SamplerEstimate)->Arg(1)->Arg(4)->Arg(13);

void BM_AdaptiveEstimate(benchmark::State& state) {
  auto& s = biased();
  auto m = s.model();
  stats::Rng rng(13);
  for (auto _ : state) {
    auto est = adaptive_estimate(s.eval, m, 100, rng);
    benchmark::DoNotOptimize(est.mean_energy);
  }
}
BENCHMARK(BM_AdaptiveEstimate);

void print_accuracy_tables() {
  std::printf("\nE10 — estimator accuracy (adder-8, 20k evaluation "
              "cycles)\n\n");
  {
    auto& s = unbiased();
    auto census = census_estimate(s.eval, s.model());
    std::printf("sampler vs census (in-distribution data):\n");
    std::printf("%10s %12s %12s %10s\n", "samples", "evals", "speedup",
                "err-vs-census");
    for (std::size_t k : {1, 2, 4, 8, 13}) {
      stats::RunningStats err;
      for (std::uint64_t seed = 0; seed < 20; ++seed) {
        stats::Rng rng(seed);
        auto est = sampler_estimate(s.eval, s.model(), 30, k, rng);
        err.add(std::abs(est.mean_energy - census.mean_energy) /
                census.mean_energy);
      }
      std::printf("%10zu %12zu %11.1fx %9.2f%%\n", k, 30 * k,
                  static_cast<double>(s.eval.transitions()) /
                      static_cast<double>(30 * k),
                  100.0 * err.mean());
    }
    std::printf("(paper: ~50x efficiency at ~1%% error; 13 samples of 30 "
                "= 390 evals over 20k cycles ~ 51x)\n\n");
  }
  {
    auto& s = biased();
    double ref = gate_level_mean(s.eval);
    auto census = census_estimate(s.eval, s.model());
    double census_err =
        std::abs(census.mean_energy - ref) / ref;
    stats::RunningStats aerr;
    for (std::uint64_t seed = 0; seed < 20; ++seed) {
      stats::Rng rng(100 + seed);
      auto est = adaptive_estimate(s.eval, s.model(), 100, rng);
      aerr.add(std::abs(est.mean_energy - ref) / ref);
    }
    std::printf("biased macro-model (trained on white noise, evaluated on "
                "correlated data):\n");
    std::printf("  census error vs gate level:   %6.1f%%   (paper: ~30%%)\n",
                100.0 * census_err);
    std::printf("  adaptive error vs gate level: %6.1f%%   (paper: ~5%%), "
                "using 100 gate-level cycles of %zu\n",
                100.0 * aerr.mean(), s.eval.transitions());
  }

  // Monte Carlo gate-level estimation with CI stopping (Burch et al. [32]).
  std::printf("\nMonte Carlo gate-level estimation (II-C step 4, [32]):\n");
  std::printf("%10s %10s %12s %12s\n", "epsilon", "pairs", "estimate",
              "ref-error");
  {
    auto mod = netlist::adder_module(8);
    stats::Rng rr(3);
    auto chr = characterize(mod, sim::random_stream(16, 20000, 0.5, rr));
    double ref = chr.mean_energy();
    for (double eps : {0.10, 0.05, 0.02, 0.01}) {
      stats::Rng vg(17);
      auto res = monte_carlo_power(
          mod, [&] { return vg.uniform_bits(16); }, eps);
      std::printf("%10.2f %10zu %12.2f %11.2f%%\n", eps, res.pairs,
                  res.mean_energy,
                  100.0 * std::abs(res.mean_energy - ref) / ref);
    }
    std::printf("(pairs needed grow ~1/eps^2; each run replaces a 20k-cycle "
                "census)\n");
  }

  // Sequence compaction (Marculescu et al. [36]-[38]).
  std::printf("\nAutomata-based sequence compaction ([36]-[38]):\n");
  std::printf("%12s %12s %12s %12s %12s\n", "compaction", "q-err", "act-err",
              "power-err", "");
  {
    auto mod = netlist::alu_module(6);
    stats::Rng rr(9);
    auto original = sim::correlated_stream(mod.total_input_bits(), 40000,
                                           0.85, rr);
    auto chr_full = characterize(mod, original);
    for (std::size_t target : {8000, 2000, 500}) {
      auto compacted = compact_stream(original, target, 11);
      auto fid = compaction_fidelity(original, compacted);
      auto chr_cmp = characterize(mod, compacted);
      std::printf("%11zux %12.4f %12.4f %11.2f%%\n",
                  original.words.size() / target, fid.signal_prob_error,
                  fid.activity_error,
                  100.0 *
                      std::abs(chr_cmp.mean_energy() - chr_full.mean_energy()) /
                      chr_full.mean_energy());
    }
    std::printf("(paper: compacted sequences preserve the statistics power "
                "simulation depends on at large simulation speedups)\n");
  }
}

/// Scalar vs packed Monte Carlo throughput on the 8x8 multiplier, written
/// to BENCH_sampling.json (same schema as BENCH_simengine.json) for the
/// perf trajectory.
void write_engine_report(const char* path) {
  using clock = std::chrono::steady_clock;
  auto mod = netlist::multiplier_module(8);
  const int n_in = mod.total_input_bits();
  const std::size_t pairs = 20000;
  const double gate_evals = static_cast<double>(
      mod.netlist.logic_gate_count() * pairs * 2);  // two vectors per pair

  auto measure = [&](sim::EngineKind engine) {
    double best = 0.0;
    for (int r = 0; r < 3; ++r) {
      stats::Rng vg(23);
      auto t0 = clock::now();
      auto res = monte_carlo_power(
          mod, [&] { return vg.uniform_bits(n_in); }, 1e-9, 0.95, 30, pairs,
          {}, sim::SimOptions{engine});
      auto t1 = clock::now();
      benchmark::DoNotOptimize(res.mean_energy);
      double secs = std::chrono::duration<double>(t1 - t0).count();
      if (secs > 0.0) best = std::max(best, gate_evals / secs);
    }
    return best;
  };
  double scalar = measure(sim::EngineKind::Scalar);
  double packed = measure(sim::EngineKind::Packed);
  double speedup = scalar > 0.0 ? packed / scalar : 0.0;
  std::printf("\nMonte Carlo engine throughput (multiplier8, %zu pairs): "
              "scalar %.3e packed %.3e gate-evals/sec (%.1fx)\n",
              pairs, scalar, packed, speedup);
  benchjson::Object root{
      {"bench", "sampling"},
      {"metric", "gate_evals_per_sec"},
      {"engines", benchjson::Array{"scalar", "packed"}},
      {"circuits",
       benchjson::Array{benchjson::Object{
           {"name", "multiplier8_monte_carlo"},
           {"gates", mod.netlist.logic_gate_count()},
           {"cycles", pairs * 2},
           {"scalar_gate_evals_per_sec", scalar},
           {"packed_gate_evals_per_sec", packed},
           {"speedup", speedup},
       }}},
  };
  if (benchjson::save(path, root)) std::printf("wrote %s\n", path);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  print_accuracy_tables();
  write_engine_report("BENCH_sampling.json");
  return 0;
}
