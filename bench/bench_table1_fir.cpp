// E1 — Table I: capacitance statistics for a Tap FIR filter before/after
// converting constant multiplications into shift/add networks.
//
// Paper (Chandrakasan et al. [18], reproduced as Table I):
//   component          before(pF)  %      after(pF)  %
//   Execution units     739.65    64.8      93.07   21.6
//   Registers/clock     179.57    15.7     161.40   37.5
//   Control logic        65.45     5.7      83.79   19.5
//   Interconnect        156.69    13.7      92.10   21.4
//   Total              1141.36   100.0     430.36  100.0
//
// Our datapath is parallel (the paper's was time-multiplexed), so the
// absolute factors are smaller; the per-row directions must match.

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "core/behavioral_transform.hpp"
#include "sim/streams.hpp"

namespace {

void print_table(const char* title, std::map<std::string, double> before,
                 std::map<std::string, double> after) {
  double tb = 0.0, ta = 0.0;
  for (auto& [k, v] : before) tb += v;
  for (auto& [k, v] : after) ta += v;
  std::printf("%s\n", title);
  std::printf("%-18s %12s %7s %12s %7s\n", "Component", "before(cap)",
              "%%tot", "after(cap)", "%%tot");
  for (const char* comp : {"Execution units", "Registers/clock",
                           "Control logic", "Interconnect"}) {
    std::printf("%-18s %12.2f %6.1f%% %12.2f %6.1f%%\n", comp, before[comp],
                100.0 * before[comp] / tb, after[comp],
                100.0 * after[comp] / ta);
  }
  std::printf("%-18s %12.2f %7s %12.2f\n", "Total", tb, "", ta);
  std::printf("total reduction %.2fx, execution units %.2fx\n\n", tb / ta,
              before["Execution units"] / after["Execution units"]);
}

}  // namespace

int main() {
  using namespace hlp;
  std::vector<int> coeffs{93, 57, 201, 39, 141, 78, 224, 47, 166, 90, 121};
  const int width = 8;

  auto fir_mac = core::build_fir_mac_datapath(coeffs, width);
  auto fir_mul = core::build_fir_datapath(coeffs, width, false);
  auto fir_sa = core::build_fir_datapath(coeffs, width, true);

  stats::Rng rng(11);
  auto samples = sim::gaussian_walk_stream(width, 1200, 0.9, 0.3, rng);
  std::printf("E1 / Table I — %zu-tap FIR, constant multiplication -> "
              "shift/add (glitch-aware switched capacitance per sample)\n\n",
              coeffs.size());
  std::printf("Paper (Chandrakasan et al. [18]): total 1141 -> 430 pF "
              "(2.65x), exec 7.9x, regs -10%%, control +28%%, "
              "interconnect -41%%\n\n");

  // Primary comparison, matching the paper's architecture change: a
  // time-multiplexed general-multiplier MAC datapath (before) vs. a
  // dedicated shift/add datapath (after).
  bool ok = core::fir_mac_matches_parallel(fir_mac, fir_sa, samples);
  auto before = core::fir_mac_capacitance_breakdown(fir_mac, samples);
  auto after = core::fir_capacitance_breakdown(fir_sa, samples);
  print_table("[A] time-multiplexed MAC  ->  dedicated shift/add:", before,
              after);
  std::printf("functional equivalence (MAC vs shift/add vs golden): %s\n\n",
              ok ? "verified" : "FAILED");

  // Secondary comparison: the same parallel architecture with general
  // multipliers vs hardwired shift/add (isolates the operator change).
  auto b2 = core::fir_capacitance_breakdown(fir_mul, samples);
  print_table("[B] parallel general-multiplier -> parallel shift/add "
              "(operator change only):", b2, after);

  std::printf("Gate counts: MAC %zu, parallel-mult %zu, shift/add %zu\n",
              fir_mac.netlist.logic_gate_count(),
              fir_mul.netlist.logic_gate_count(),
              fir_sa.netlist.logic_gate_count());
  return 0;
}
