// E9 — Fig. 9: retiming for low power (Monteiro et al. [111]).
//
// Paper: placing registers at the outputs of glitchy, heavily loaded gates
// filters spurious transitions from the downstream logic; the paper's
// heuristic selects candidate gates by glitch production x propagation.

#include <cstdio>

#include "core/retiming_power.hpp"
#include "sim/streams.hpp"

int main() {
  using namespace hlp;
  using namespace hlp::core;

  std::printf("E9 — pipeline register placement vs. glitch power\n"
              "(multiply-reduce: the multiplier produces glitches, the XOR "
              "reduction amplifies them;\n a register cut at the product "
              "bits is Fig. 9's candidate placement)\n\n");
  for (int n : {4, 5, 6}) {
    auto mod = netlist::multiply_reduce_module(n, 4);
    stats::Rng rng(7);
    auto in = sim::random_stream(2 * n, 1500, 0.5, rng);
    int depth = mod.netlist.depth();
    int pick = select_cut_monteiro(mod, in);

    std::printf("mulred-%dx%d (depth %d, heuristic picks cut %d):\n", n, n,
                depth, pick);
    std::printf("  %6s %10s %12s %12s %11s %6s\n", "cut", "regs",
                "P(total)", "P(functional)", "glitch-P", "func");
    double base = 0.0;
    for (int cut = 0; cut < depth; cut += std::max(1, depth / 8)) {
      auto rc = place_registers_at_cut(mod, cut);
      auto ev = evaluate_retimed(rc, mod, in);
      if (cut == 0) base = ev.power_total;
      std::printf("  %5d%s %9zu %12.4g %12.4g %11.4g %6s\n", cut,
                  cut == pick ? "*" : " ", ev.registers, ev.power_total,
                  ev.power_functional, ev.power_total - ev.power_functional,
                  ev.functionally_correct ? "ok" : "FAIL");
    }
    auto ev_pick = evaluate_retimed(place_registers_at_cut(mod, pick), mod,
                                    in);
    std::printf("  heuristic cut saves %.1f%% vs registers-at-inputs\n\n",
                100.0 * (1.0 - ev_pick.power_total / base));
  }
  std::printf("(paper claim shape: an interior register cut beats "
              "registers at the primary inputs because it stops glitch\n"
              " propagation; the heuristic lands near the sweep optimum)\n");
  return 0;
}
