// E-MODEL — Learned power macromodels: predicted-tier latency, fit cost,
// and held-out accuracy (src/model, DESIGN.md §12).
//
// Three questions decide whether the predicted serve tier earns its keep:
//
//  1. Latency: p50/p99 of a warm predicted answer (Service::handle_line
//     with an accuracy field, features memoized) against the cold symbolic
//     kernel the model replaces. The acceptance bar is >= 1000x: a
//     macromodel evaluation is an inner product plus a quadratic form, so
//     it must price in microseconds what the BDD kernel prices in tens of
//     milliseconds.
//
//  2. Fit cost: wall time of fit_macromodel (stepwise selection + strict
//     inference refit) as the characterization campaign grows. Fitting is
//     offline, but it sits inside hlp_fit's edit-compile loop, so the
//     trend with campaign size matters more than the constant.
//
//  3. Accuracy: held-out MAPE of a model trained on a real adder-family
//     characterization (symbolic labels at p = 0.5 crossed with biased-MC
//     labels off-center) — the number an operator reads before deciding a
//     family is safe to serve from the model at all.
//
// Results go to BENCH_model.json (cwd, or argv[1] after the
// google-benchmark flags).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "jobs/kernels.hpp"
#include "model/artifact.hpp"
#include "model/characterize.hpp"
#include "serve/protocol.hpp"
#include "serve/service.hpp"

namespace {

using namespace hlp;
using clock_type = std::chrono::steady_clock;

std::string accuracy_line(const std::string& design, double accuracy) {
  serve::Request rq;
  rq.op = serve::Op::Estimate;
  rq.kind = jobs::JobKind::Symbolic;
  rq.design = design;
  rq.has_accuracy = true;
  rq.accuracy = accuracy;
  return rq.serialize();
}

/// Train the adder-family model once for the whole report.
model::FitReport train_adder_model() {
  model::SweepSpec spec;
  spec.family = "adder";
  spec.kind = jobs::JobKind::Symbolic;
  spec.params = {4, 6, 8, 10, 12};
  spec.input_p = {0.3, 0.5, 0.7};
  jobs::RunnerOptions ropts;
  ropts.workers = 4;
  const model::Characterization ch = model::characterize(spec, ropts);
  return model::fit_macromodel(ch.rows, "adder", "symbolic");
}

/// Synthetic characterization rows for the fit-scaling curve (the fit cost
/// depends on row count and feature count, not on where rows came from).
std::vector<model::Row> synthetic_rows(std::size_t n) {
  std::vector<model::Row> rows(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t f = 0; f < model::kFeatureCount; ++f)
      rows[i].x.v[f] = 0.01 * static_cast<double>((i * (f + 2) + f) % 101);
    rows[i].power = 5.0 + 3.0 * rows[i].x.v[0] - 1.5 * rows[i].x.v[4] +
                    0.25 * rows[i].x.v[7];
  }
  return rows;
}

void BM_PredictedHandleLine(benchmark::State& st) {
  const model::FitReport rep = train_adder_model();
  const std::string path = "BENCH_model_tmp.hlpm";
  std::string err;
  const std::vector<model::Macromodel> models = {rep.model};
  if (!model::save_models_file(path, models, err)) {
    st.SkipWithError("save_models_file failed");
    return;
  }
  serve::ServiceOptions opts;
  opts.workers = 0;
  opts.model_path = path;
  serve::Service service(opts);
  const std::string line = accuracy_line("adder:8", 0.5);
  benchmark::DoNotOptimize(service.handle_line(line));  // memoize features
  for (auto _ : st) benchmark::DoNotOptimize(service.handle_line(line));
  std::remove(path.c_str());
}

void write_report(const std::string& path) {
  std::printf("\n--- BENCH_model report ---\n");

  // --- Train on the real family sweep ------------------------------------
  const auto fit_t0 = clock_type::now();
  const model::FitReport rep = train_adder_model();
  const double train_wall =
      std::chrono::duration<double>(clock_type::now() - fit_t0).count();
  std::printf("trained adder|symbolic on 15 grid points in %.2f s: "
              "R^2 %.5f, held-out MAPE %.4f, %zu features\n",
              train_wall, rep.train_r2, rep.holdout_mape,
              rep.selected_names.size());

  const std::string model_file = "BENCH_model_tmp.hlpm";
  std::string err;
  const std::vector<model::Macromodel> models = {rep.model};
  if (!model::save_models_file(model_file, models, err)) {
    std::fprintf(stderr, "bench_model: %s\n", err.c_str());
    return;
  }

  // --- Predicted tier p50/p99 vs cold symbolic kernel --------------------
  serve::ServiceOptions opts;
  opts.workers = 0;  // inline: measure the tier, not pool handoff
  opts.model_path = model_file;
  serve::Service service(opts);

  const std::string hot_line = accuracy_line("adder:12", 0.5);
  service.handle_line(hot_line);  // memoize the feature vector

  constexpr int kPredictedReps = 5000;
  std::vector<double> predicted_us(kPredictedReps);
  for (int i = 0; i < kPredictedReps; ++i) {
    const auto t0 = clock_type::now();
    service.handle_line(hot_line);
    predicted_us[i] =
        std::chrono::duration<double>(clock_type::now() - t0).count() * 1e6;
  }
  std::sort(predicted_us.begin(), predicted_us.end());
  const double pred_p50 = predicted_us[kPredictedReps / 2];
  const double pred_p99 = predicted_us[kPredictedReps * 99 / 100];

  // Cold kernel: distinct seeds force distinct cache keys, so every line
  // runs the full BDD build the model replaces.
  constexpr int kColdReps = 5;
  double cold_total_us = 0.0;
  for (int i = 0; i < kColdReps; ++i) {
    serve::Request rq;
    rq.op = serve::Op::Estimate;
    rq.kind = jobs::JobKind::Symbolic;
    rq.design = "adder:12";
    rq.has_seed = true;
    rq.seed = 9000 + static_cast<std::uint64_t>(i);
    const auto t0 = clock_type::now();
    service.handle_line(rq.serialize());
    cold_total_us +=
        std::chrono::duration<double>(clock_type::now() - t0).count() * 1e6;
  }
  const double cold_us = cold_total_us / kColdReps;
  const double speedup = cold_us / pred_p50;
  std::printf("predicted (adder:12, warm): p50 %.2f us, p99 %.2f us\n",
              pred_p50, pred_p99);
  std::printf("cold symbolic kernel:       %.0f us/req\n", cold_us);
  std::printf("cold/predicted p50 speedup: %.0fx %s\n", speedup,
              speedup >= 1000.0 ? "(>= 1000x bar met)" : "(BELOW 1000x bar)");

  // --- Fit wall time vs campaign size ------------------------------------
  benchjson::Array fit_curve;
  std::printf("fit time vs campaign size:\n");
  for (std::size_t n : {100u, 1000u, 10000u}) {
    const std::vector<model::Row> rows = synthetic_rows(n);
    const auto t0 = clock_type::now();
    const model::FitReport r = model::fit_macromodel(rows, "synthetic", "mc");
    const double wall =
        std::chrono::duration<double>(clock_type::now() - t0).count();
    std::printf("  %6zu rows: %8.2f ms (R^2 %.6f)\n", n, wall * 1e3,
                r.train_r2);
    fit_curve.push_back(benchjson::Object{
        {"rows", static_cast<std::uint64_t>(n)},
        {"fit_ms", wall * 1e3},
        {"train_r2", r.train_r2},
    });
  }

  std::remove(model_file.c_str());

  const benchjson::Object root{
      {"experiment", "E-MODEL"},
      {"design_family", "adder"},
      {"train",
       benchjson::Object{
           {"grid_points", 15},
           {"wall_seconds", train_wall},
           {"train_r2", rep.train_r2},
           {"holdout_mape", rep.holdout_mape},
           {"selected_features", static_cast<std::uint64_t>(
                                     rep.selected_names.size())},
           {"condition", rep.condition},
       }},
      {"predicted_tier",
       benchjson::Object{
           {"design", "adder:12"},
           {"p50_us", pred_p50},
           {"p99_us", pred_p99},
           {"cold_symbolic_us", cold_us},
           {"speedup_p50", speedup},
           {"bar_1000x_met", speedup >= 1000.0},
       }},
      {"fit_scaling", std::move(fit_curve)},
  };
  if (benchjson::save(path, root))
    std::printf("\nwrote %s\n", path.c_str());
  else
    std::printf("\nfailed to write %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RegisterBenchmark("BM_PredictedHandleLine", BM_PredictedHandleLine)
      ->Unit(benchmark::kMicrosecond);
  benchmark::RunSpecifiedBenchmarks();
  const char* path = "BENCH_model.json";
  if (argc > 1 && argv[1][0] != '-') path = argv[1];
  write_report(path);
  return 0;
}
