// Ablations of the reproduction's own design choices (DESIGN.md):
//  A1  capacitance-model robustness: do the headline conclusions survive
//      very different wire-load assumptions?
//  A2  macro-model characterization length: how much training data do the
//      fitted models actually need?
//  A3  annealing budget for low-power state encoding.
//  A4  zero-delay vs unit-delay power: how much of each circuit family's
//      power is glitching (justifies the glitch-aware simulator).

#include <cmath>
#include <cstdio>

#include "core/behavioral_transform.hpp"
#include "core/macromodel.hpp"
#include "fsm/encoding.hpp"
#include "sim/glitch_sim.hpp"
#include "sim/simulator.hpp"
#include "sim/streams.hpp"

int main() {
  using namespace hlp;
  using namespace hlp::core;

  std::printf("A1 — Table I direction vs wire-load model (6-tap FIR, MAC "
              "-> shift/add)\n\n");
  std::printf("%16s %14s %14s\n", "wire-cap/fanout", "total-ratio",
              "exec-ratio");
  std::vector<int> coeffs{93, 57, 201, 39, 141, 78};
  for (double wire : {0.0, 0.25, 1.0, 3.0}) {
    netlist::CapacitanceModel cap;
    cap.wire_cap_per_fanout = wire;
    auto mac = build_fir_mac_datapath(coeffs, 8);
    auto sa = build_fir_datapath(coeffs, 8, true);
    stats::Rng rng(11);
    auto samples = sim::gaussian_walk_stream(8, 800, 0.9, 0.3, rng);
    auto b = fir_mac_capacitance_breakdown(mac, samples, cap);
    auto a = fir_capacitance_breakdown(sa, samples, cap);
    double tb = 0, ta = 0;
    for (auto& [k, v] : b) tb += v;
    for (auto& [k, v] : a) ta += v;
    std::printf("%16.2f %13.2fx %13.2fx\n", wire, tb / ta,
                b["Execution units"] / a["Execution units"]);
  }
  std::printf("(the conclusion is insensitive to the wire-load constant)\n\n");

  std::printf("A2 — macro-model error vs characterization length "
              "(adder-8, input-output model, eval on held-out data)\n\n");
  std::printf("%14s %12s %12s\n", "train-cycles", "avg-err", "cycle-err");
  {
    auto mod = netlist::adder_module(8);
    stats::Rng rng(3);
    auto eval_in = sim::random_stream(16, 4000, 0.4, rng);
    auto chr_eval = characterize(mod, eval_in);
    for (std::size_t train : {30u, 100u, 300u, 1000u, 5000u}) {
      stats::Rng r2(7);
      auto chr_train =
          characterize(mod, sim::random_stream(16, train, 0.5, r2));
      InputOutputModel io;
      io.fit(chr_train);
      std::vector<double> pred;
      for (std::size_t t = 0; t < chr_eval.transitions(); ++t)
        pred.push_back(io.predict_cycle(chr_eval.in_activity[t],
                                        chr_eval.out_activity[t]));
      auto e = evaluate_predictions(pred, chr_eval.energy);
      std::printf("%14zu %11.2f%% %11.2f%%\n", train,
                  100.0 * e.avg_power_error,
                  100.0 * e.cycle_mean_abs_error);
    }
  }
  std::printf("(a few hundred characterization cycles suffice — the cost "
              "the paper's step 1 pays once per library cell)\n\n");

  std::printf("A3 — low-power encoding quality vs annealing budget "
              "(random-24 FSM)\n\n");
  std::printf("%12s %18s\n", "iterations", "E[state-switching]");
  {
    auto stg = fsm::random_fsm(24, 2, 2, 9);
    auto ma = fsm::analyze_markov(stg);
    std::vector<std::uint64_t> bin_codes(stg.num_states());
    for (std::size_t i = 0; i < bin_codes.size(); ++i) bin_codes[i] = i;
    std::printf("%12s %18.3f\n", "binary",
                fsm::expected_code_switching(ma, bin_codes));
    for (int iters : {100, 1000, 5000, 20000, 80000}) {
      auto codes = fsm::reencode_low_power(stg, ma, bin_codes, 5, 3, iters);
      std::printf("%12d %18.3f\n", iters,
                  fsm::expected_code_switching(ma, codes));
    }
  }
  std::printf("(returns diminish past ~20k proposals; the default budget "
              "sits at the knee)\n\n");

  std::printf("A4 — glitch share of total power per circuit family "
              "(random data)\n\n");
  std::printf("%-14s %12s %12s %10s\n", "module", "P(0-delay)",
              "P(unit-delay)", "glitch%%");
  for (auto [name, mod] :
       std::vector<std::pair<const char*, netlist::Module>>{
           {"adder-8", netlist::adder_module(8)},
           {"mult-5", netlist::multiplier_module(5)},
           {"mulred-5", netlist::multiply_reduce_module(5, 4)},
           {"alu-6", netlist::alu_module(6)},
           {"parity-12", netlist::parity_module(12)},
           {"cmp-8", netlist::comparator_module(8)}}) {
    stats::Rng rng(5);
    auto in = sim::random_stream(mod.total_input_bits(), 800, 0.5, rng);
    auto gl = sim::simulate_glitches(mod.netlist, in);
    auto p_total =
        sim::compute_power(mod.netlist, gl.total_activity).total_power;
    auto p_fn =
        sim::compute_power(mod.netlist, gl.functional_activity).total_power;
    std::printf("%-14s %12.3g %12.3g %9.1f%%\n", name, p_fn, p_total,
                100.0 * (1.0 - p_fn / p_total));
  }
  std::printf("(multiplier-class circuits dissipate a large glitch share — "
              "why Table I and Fig. 9 need the unit-delay simulator)\n");

  std::printf("\nA5 — architecture exploration (the Fig. 1 design loop: "
              "same function, different RT implementations)\n\n");
  std::printf("%-22s %8s %8s %12s %12s\n", "implementation", "gates",
              "depth", "P(0-delay)", "P(unit-delay)");
  {
    auto eval = [&](const char* name, netlist::Netlist& nl, int bits) {
      stats::Rng rng(5);
      auto in = sim::random_stream(bits, 800, 0.5, rng);
      auto gl = sim::simulate_glitches(nl, in);
      auto p_t = sim::compute_power(nl, gl.total_activity).total_power;
      auto p_f =
          sim::compute_power(nl, gl.functional_activity).total_power;
      std::printf("%-22s %8zu %8d %12.3g %12.3g\n", name,
                  nl.logic_gate_count(), nl.depth(), p_f, p_t);
    };
    {
      netlist::Netlist nl;
      auto a = netlist::make_input_word(nl, 16, "a");
      auto b = netlist::make_input_word(nl, 16, "b");
      netlist::mark_output_word(nl, netlist::ripple_adder(nl, a, b), "s");
      eval("adder-16 ripple", nl, 32);
    }
    for (int block : {2, 4, 8}) {
      netlist::Netlist nl;
      auto a = netlist::make_input_word(nl, 16, "a");
      auto b = netlist::make_input_word(nl, 16, "b");
      netlist::mark_output_word(
          nl, netlist::carry_select_adder(nl, a, b, block), "s");
      std::string name = "adder-16 csel/" + std::to_string(block);
      eval(name.c_str(), nl, 32);
    }
    {
      netlist::Netlist nl;
      auto a = netlist::make_input_word(nl, 6, "a");
      auto b = netlist::make_input_word(nl, 6, "b");
      netlist::mark_output_word(nl, netlist::array_multiplier(nl, a, b),
                                "p");
      eval("mult-6 array", nl, 12);
    }
    {
      netlist::Netlist nl;
      auto a = netlist::make_input_word(nl, 6, "a");
      auto b = netlist::make_input_word(nl, 6, "b");
      netlist::mark_output_word(nl, netlist::csa_multiplier(nl, a, b), "p");
      eval("mult-6 carry-save", nl, 12);
    }
  }
  std::printf("(area/delay/power tradeoffs across implementations of the "
              "same function — the choices the paper's estimation loop "
              "ranks: speed is bought with duplicated speculative logic "
              "that burns power, which is why delay-optimal and "
              "power-optimal selections differ)\n");
  return 0;
}
