// E13 / E17 — Low-power FSM state encoding (Section III-H) and Tyagi's
// entropic switching bound (Section II-B1, [13]).
//
// Paper: encoding the STG so high-probability transitions get
// low-Hamming-distance codes reduces state-register switching and total
// power; Tyagi's bound lower-bounds the weighted Hamming switching of any
// encoding.

#include <cmath>
#include <cstdio>

#include "core/entropy_model.hpp"
#include "fsm/benchmarks.hpp"
#include "core/fsm_encoding_power.hpp"
#include "fsm/decompose.hpp"
#include "fsm/minimize.hpp"
#include "fsm/symbolic.hpp"

int main() {
  using namespace hlp;
  using namespace hlp::core;

  struct Case {
    std::string name;
    fsm::Stg stg;
  };
  std::vector<Case> cases;
  cases.push_back({"counter-16", fsm::counter_fsm(4)});
  for (auto& b : fsm::controller_benchmarks())
    cases.push_back({b.name, b.stg});
  cases.push_back({"protocol-6", fsm::protocol_fsm(6)});
  cases.push_back({"seqdet-6", fsm::sequence_detector_fsm(0b101101, 6)});
  cases.push_back({"random-16", fsm::random_fsm(16, 2, 2, 5)});
  cases.push_back({"random-32", fsm::random_fsm(32, 2, 2, 9)});

  std::printf("E17 — state-encoding comparison (gate-level power & expected "
              "state switching)\n\n");
  for (auto& c : cases) {
    auto ma = fsm::analyze_markov(c.stg);
    double bound = tyagi_switching_bound(ma, c.stg.num_states());
    std::printf("%s (%zu states, Tyagi bound %.3f bits/cycle, sparse=%s):\n",
                c.name.c_str(), c.stg.num_states(), bound,
                tyagi_sparse(ma, c.stg.num_states()) ? "yes" : "no");
    std::printf("  %-10s %6s %8s %14s %14s %12s\n", "style", "bits",
                "gates", "E[switching]", "measured-sw", "power");
    auto reports = compare_encodings(c.stg, 6000, 11);
    for (auto& r : reports)
      std::printf("  %-10s %6d %8zu %14.3f %14.3f %12.4g\n",
                  r.style.c_str(), r.state_bits, r.gates,
                  r.expected_switching, r.simulated_state_switching,
                  r.simulated_power);
    std::printf("\n");
  }

  std::printf("E13 — Tyagi bound vs measured switching over random "
              "machines (bound must never exceed any encoding):\n");
  std::printf("%10s %12s %12s %12s %12s\n", "states", "bound", "binary",
              "low-power", "random");
  for (std::size_t n : {16, 24, 32, 48, 64}) {
    auto stg = fsm::random_fsm(n, 2, 2, 1234 + n);
    auto ma = fsm::analyze_markov(stg);
    double bound = tyagi_switching_bound(ma, n);
    auto sw = [&](fsm::EncodingStyle s) {
      auto codes = fsm::encode_states(stg, s, &ma, 3);
      return fsm::expected_code_switching(ma, codes);
    };
    std::printf("%10zu %12.3f %12.3f %12.3f %12.3f\n", n, bound,
                sw(fsm::EncodingStyle::Binary),
                sw(fsm::EncodingStyle::LowPower),
                sw(fsm::EncodingStyle::Random));
  }

  std::printf("\nState minimization before encoding (Section III-H "
              "restructuring):\n");
  {
    auto stg = fsm::protocol_fsm(8);
    // Duplicate behaviorally equivalent states by splitting bursts.
    auto min = fsm::minimize(stg);
    std::printf("  protocol-8: %zu -> %zu states after minimization\n",
                stg.num_states(), min.num_states());
  }

  std::printf("\nSymbolic (BDD) transition-relation analysis of the "
              "controllers (Section III-H, [84],[96]):\n");
  std::printf("%-12s %8s %10s %12s %12s %10s\n", "fsm", "states",
              "T-nodes", "reach-iters", "reach-count", "codespace");
  for (auto& b : fsm::controller_benchmarks()) {
    auto ma3 = fsm::analyze_markov(b.stg);
    auto codes = fsm::encode_states(b.stg, fsm::EncodingStyle::Binary, &ma3);
    auto sf = fsm::synthesize_fsm(
        b.stg, codes,
        fsm::encoding_bits(fsm::EncodingStyle::Binary, b.stg.num_states()));
    bdd::Manager mgr;
    auto sym = fsm::build_symbolic(mgr, sf);
    auto res = fsm::symbolic_reachability(sym);
    std::printf("%-12s %8zu %10zu %12d %12.0f %10.0f\n", b.name.c_str(),
                b.stg.num_states(), mgr.node_count(sym.trans),
                res.iterations, res.count,
                std::pow(2.0, sf.state_bits));
  }
  std::printf("(image iteration closes in sequential-depth steps without "
              "enumerating states; unused codes provably unreachable)\n");

  std::printf("\nFSM decomposition with selective clocking (Section III-H "
              "decomposition, [86],[87]):\n");
  std::printf("%-14s %10s %10s %10s %10s %10s %8s\n", "fsm", "crossing",
              "act0", "act1", "P(mono)", "P(decomp)", "saving");
  for (auto [name, stg, probs] :
       std::vector<std::tuple<const char*, fsm::Stg, std::vector<double>>>{
           {"protocol-10", fsm::protocol_fsm(10),
            {0.92, 0.04, 0.0, 0.04}},
           {"protocol-6", fsm::protocol_fsm(6), {0.7, 0.15, 0.0, 0.15}},
           {"random-16", fsm::random_fsm(16, 2, 2, 5), {}}}) {
    auto ma2 = fsm::analyze_markov(stg, probs);
    auto part = fsm::partition_min_crossing(stg, ma2);
    auto ev = fsm::evaluate_decomposition(stg, part, 8000, 7, probs);
    std::printf("%-14s %10.3f %10.2f %10.2f %10.3g %10.3g %7.1f%%%s\n",
                name, ev.crossing_rate, ev.active_fraction[0],
                ev.active_fraction[1], ev.mono_power, ev.decomposed_power,
                100.0 * ev.saving(),
                ev.functionally_correct ? "" : "  FUNC-FAIL");
  }
  std::printf("(paper claim shape: decomposition pays when one submachine "
              "is mostly idle and the crossing activity is low; an\n"
              " evenly-active machine loses to the interface overhead)\n");
  return 0;
}
