// E16 — Multiple supply-voltage scheduling (Section III-F, Chang-Pedram
// [73]).
//
// Paper: the dynamic program assigns off-critical-path operations to lower
// rails; savings grow with timing slack and shrink to zero at the critical
// latency; level-shifter costs temper aggressive rail mixing.

#include <cstdio>

#include "cdfg/generators.hpp"
#include "core/multivoltage.hpp"

int main() {
  using namespace hlp;
  using namespace hlp::core;

  VoltageLibrary lib;
  lib.voltages = {5.0, 3.3, 2.4};

  std::printf("E16 — energy vs latency bound (rails 5.0/3.3/2.4V)\n\n");
  for (auto [leaves, mul_frac, seed] :
       {std::tuple{8, 0.3, 3ul}, std::tuple{16, 0.4, 5ul},
        std::tuple{32, 0.5, 7ul}}) {
    auto g = cdfg::random_expr_tree(leaves, mul_frac, seed);
    auto base = single_voltage_baseline(g, lib);
    std::printf("tree-%d (critical latency %d, single-V energy %.1f):\n",
                leaves, base.latency, base.energy);
    std::printf("  %8s %10s %10s %9s %10s\n", "slack", "latency", "energy",
                "saving", "shifters");
    for (int slack : {0, 1, 2, 4, 8, 16, 32}) {
      auto mv = schedule_multivoltage(g, lib, base.latency + slack);
      if (!mv.feasible) {
        std::printf("  %8d infeasible\n", slack);
        continue;
      }
      std::printf("  %8d %10d %10.1f %8.1f%% %10d\n", slack, mv.latency,
                  mv.energy, 100.0 * (1.0 - mv.energy / base.energy),
                  mv.level_shifters);
    }
    std::printf("\n");
  }

  std::printf("Level-shifter cost sensitivity (tree-16, slack 8):\n");
  std::printf("  %14s %10s %10s\n", "shifter-energy", "energy", "shifters");
  auto g = cdfg::random_expr_tree(16, 0.4, 5);
  auto base = single_voltage_baseline(g, lib);
  for (double se : {0.0, 0.5, 2.0, 8.0, 32.0}) {
    auto l2 = lib;
    l2.shifter_energy = se;
    auto mv = schedule_multivoltage(g, l2, base.latency + 8);
    std::printf("  %14.1f %10.1f %10d\n", se, mv.energy, mv.level_shifters);
  }
  std::printf("\n(paper claim shape: monotone energy-latency tradeoff; "
              "saving -> 0 at zero slack; expensive shifters reduce rail "
              "mixing)\n");
  return 0;
}
