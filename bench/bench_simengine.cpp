// E-SIM — Scalar vs packed vs block-wide simulation throughput.
//
// The packed backend evaluates 64 input patterns per gate operation with
// bitwise ops on uint64_t lanes (PPSFP-style); the block engine widens that
// to N×64 lanes streamed through runtime-dispatched SIMD kernels (portable /
// AVX2 / AVX-512). Targets: >= 10x gate-evals/sec scalar -> packed, and
// >= 5x single-word packed -> block-wide on the random-DAG sweep, all
// bit-identical. A sharded Monte Carlo section reports pairs/sec per
// lane-shard thread count (bit-identical across counts by construction).
//
// Results go to BENCH_simengine.json (cwd, or argv[1] after the
// google-benchmark flags) so future PRs can track the trajectory.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "core/sampling_power.hpp"
#include "netlist/generators.hpp"
#include "sim/block_simulator.hpp"
#include "sim/simulator.hpp"
#include "sim/streams.hpp"
#include "stats/rng.hpp"

namespace {

using namespace hlp;

struct Workload {
  std::string name;
  netlist::Module mod;
  stats::VectorStream in;
};

std::vector<Workload>& workloads() {
  static std::vector<Workload> w = [] {
    std::vector<Workload> v;
    stats::Rng rng(7);
    auto add = [&](std::string name, netlist::Module mod,
                   std::size_t cycles) {
      auto in = sim::random_stream(mod.total_input_bits(), cycles, 0.5, rng);
      v.push_back({std::move(name), std::move(mod), std::move(in)});
    };
    add("multiplier8", netlist::multiplier_module(8), 8192);
    add("random_dag", netlist::random_logic_module(32, 2000, 16, 42), 8192);
    add("adder16", netlist::adder_module(16), 8192);
    return v;
  }();
  return w;
}

double run_activities(const Workload& w, sim::EngineKind engine,
                      int block_words = 0) {
  sim::SimOptions opts{engine};
  opts.block_words = block_words;
  auto acts = sim::simulate_activities(w.mod.netlist, w.in, nullptr, opts);
  double sum = 0.0;
  for (double a : acts) sum += a;
  return sum;
}

void BM_Sweep(benchmark::State& state, const Workload& w,
              sim::EngineKind engine) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_activities(w, engine));
  }
  state.counters["gate_evals_per_sec"] = benchmark::Counter(
      static_cast<double>(w.mod.netlist.logic_gate_count() *
                          w.in.words.size()),
      benchmark::Counter::kIsIterationInvariantRate);
}

/// Wall-clock gate-evals/sec for one engine, repeated and best-of to damp
/// scheduler noise.
double measure_evals_per_sec(const Workload& w, sim::EngineKind engine,
                             int reps, int block_words = 0) {
  using clock = std::chrono::steady_clock;
  const double gate_evals = static_cast<double>(
      w.mod.netlist.logic_gate_count() * w.in.words.size());
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    auto t0 = clock::now();
    benchmark::DoNotOptimize(run_activities(w, engine, block_words));
    auto t1 = clock::now();
    double secs = std::chrono::duration<double>(t1 - t0).count();
    if (secs > 0.0) best = std::max(best, gate_evals / secs);
  }
  return best;
}

/// Kernel a width actually selects under the current CPU/env caps.
const char* width_dispatch(const netlist::Netlist& nl, int words) {
  sim::BlockSimulator bs(nl, words);
  return sim::to_string(bs.dispatch());
}

/// Pure gate-eval kernel throughput at a given width: repeatedly propagate
/// fresh input blocks through the combinational logic, no activity
/// counting or output transposition. This isolates what the SIMD kernels
/// buy; the sweep rows above include the (width-invariant) per-cycle
/// bookkeeping of a full activity run.
double measure_kernel_evals_per_sec(const Workload& w, int words, int reps) {
  using clock = std::chrono::steady_clock;
  sim::BlockSimulator bs(w.mod.netlist, words);
  const std::size_t lanes = static_cast<std::size_t>(bs.lane_count());
  const std::size_t blocks = (w.in.words.size() + lanes - 1) / lanes;
  const double gate_evals =
      static_cast<double>(w.mod.netlist.logic_gate_count()) *
      static_cast<double>(blocks) * static_cast<double>(lanes);
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    auto t0 = clock::now();
    for (std::size_t b = 0; b < blocks; ++b) {
      const std::size_t base = b * lanes;
      const std::size_t n = std::min(lanes, w.in.words.size() - base);
      bs.set_inputs_from_cycles(
          std::span(w.in.words.data() + base, n));
      bs.eval();
    }
    auto t1 = clock::now();
    benchmark::DoNotOptimize(bs.lane_words(0));
    double secs = std::chrono::duration<double>(t1 - t0).count();
    if (secs > 0.0) best = std::max(best, gate_evals / secs);
  }
  return best;
}

void write_report(const std::string& path) {
  benchjson::Array circuits;
  std::printf("\nE-SIM — scalar vs packed vs block sweep throughput "
              "(gate-evals/sec)\n\n");
  std::printf("%14s %8s %8s %14s %14s %14s %9s %9s\n", "circuit", "gates",
              "cycles", "scalar", "packed_w1", "block", "pk/sc",
              "blk/pk");
  const int block_w = sim::default_block_words();
  for (const auto& w : workloads()) {
    double scalar = measure_evals_per_sec(w, sim::EngineKind::Scalar, 5);
    // W=1 is the historical single-word packed engine (portable kernel by
    // construction: one word is not SIMD-divisible).
    double packed1 =
        measure_evals_per_sec(w, sim::EngineKind::Packed, 5, /*words=*/1);
    double block =
        measure_evals_per_sec(w, sim::EngineKind::Packed, 5, block_w);
    double speedup = scalar > 0.0 ? packed1 / scalar : 0.0;
    double widening = packed1 > 0.0 ? block / packed1 : 0.0;
    std::printf("%14s %8zu %8zu %14.3e %14.3e %14.3e %8.1fx %8.1fx\n",
                w.name.c_str(), w.mod.netlist.logic_gate_count(),
                w.in.words.size(), scalar, packed1, block, speedup, widening);
    circuits.push_back(benchjson::Object{
        {"name", w.name},
        {"gates", w.mod.netlist.logic_gate_count()},
        {"cycles", w.in.words.size()},
        {"scalar_gate_evals_per_sec", scalar},
        {"packed_gate_evals_per_sec", packed1},
        {"block_gate_evals_per_sec", block},
        {"block_words", block_w},
        {"speedup", speedup},
        {"block_over_packed", widening},
    });
  }

  // Width sweep on the random DAG: same bits at every width, different
  // kernels (the dispatch column records which one each width is eligible
  // for on this host).
  benchjson::Array widths;
  const Workload& dag = workloads()[1];
  std::printf("\nblock width sweep (%s, dispatch cap: %s)\n",
              dag.name.c_str(), sim::to_string(sim::active_dispatch()));
  double kernel_w1 = 0.0, kernel_best = 0.0;
  for (int wds : {1, 2, 4, 8, 16, 32}) {
    double evals =
        measure_evals_per_sec(dag, sim::EngineKind::Packed, 5, wds);
    double kernel = measure_kernel_evals_per_sec(dag, wds, 5);
    const char* disp = width_dispatch(dag.mod.netlist, wds);
    if (wds == 1) kernel_w1 = kernel;
    kernel_best = std::max(kernel_best, kernel);
    std::printf("  W=%-3d (%8s): %14.3e activity  %14.3e kernel-only "
                "gate-evals/sec\n",
                wds, disp, evals, kernel);
    widths.push_back(benchjson::Object{
        {"words", wds},
        {"dispatch", disp},
        {"gate_evals_per_sec", evals},
        {"kernel_gate_evals_per_sec", kernel},
    });
  }
  const double kernel_widening = kernel_w1 > 0.0 ? kernel_best / kernel_w1
                                                 : 0.0;
  std::printf("  kernel-only widening (best width / W=1): %.1fx\n",
              kernel_widening);

  // Sharded Monte Carlo: pairs/sec per lane-shard thread count. Results
  // are bit-identical across rows (chunked claim order + per-chunk seeds);
  // only throughput may differ, and on a single-core host it will not.
  benchjson::Array shards;
  {
    auto mod = netlist::multiplier_module(8);
    core::ShardedMcOptions so;
    so.total_pairs = 200000;
    so.chunk_pairs = 4096;
    so.epsilon = 0.0;  // exhaustive: fixed work per row
    std::printf("\nsharded Monte Carlo (%s, %zu pairs)\n", "multiplier8",
                so.total_pairs);
    using clock = std::chrono::steady_clock;
    for (int threads : {1, 2, 4, 8}) {
      so.threads = threads;
      double best = 0.0;
      double mean = 0.0;
      for (int r = 0; r < 3; ++r) {
        auto t0 = clock::now();
        auto out = core::monte_carlo_power_sharded(mod, 7, so);
        auto t1 = clock::now();
        double secs = std::chrono::duration<double>(t1 - t0).count();
        if (secs > 0.0)
          best = std::max(best,
                          static_cast<double>(out->pairs) / secs);
        mean = out->mean_energy;
      }
      std::printf("  threads %d: %12.3e pairs/sec (mean %.6g)\n", threads,
                  best, mean);
      shards.push_back(benchjson::Object{
          {"threads", threads},
          {"pairs_per_sec", best},
          {"mean_energy", mean},
      });
    }
  }

  benchjson::Object root{
      {"bench", "simengine"},
      {"metric", "gate_evals_per_sec"},
      {"engines", benchjson::Array{"scalar", "packed", "block"}},
      {"dispatch", sim::to_string(sim::active_dispatch())},
      {"default_block_words", block_w},
      {"circuits", std::move(circuits)},
      {"block_widths", std::move(widths)},
      {"kernel_widening", kernel_widening},
      {"sharded_monte_carlo", std::move(shards)},
  };
  if (benchjson::save(path, root))
    std::printf("\nwrote %s\n", path.c_str());
  else
    std::printf("\nfailed to write %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  for (const auto& w : workloads()) {
    benchmark::RegisterBenchmark(("BM_Sweep_scalar/" + w.name).c_str(),
                                 [&w](benchmark::State& st) {
                                   BM_Sweep(st, w, sim::EngineKind::Scalar);
                                 });
    benchmark::RegisterBenchmark(("BM_Sweep_packed/" + w.name).c_str(),
                                 [&w](benchmark::State& st) {
                                   BM_Sweep(st, w, sim::EngineKind::Packed);
                                 });
  }
  benchmark::RunSpecifiedBenchmarks();
  const char* path = "BENCH_simengine.json";
  if (argc > 1 && argv[1][0] != '-') path = argv[1];
  write_report(path);
  return 0;
}
