// E-SIM — Scalar vs packed (64-lane bit-parallel) simulation throughput.
//
// The packed backend evaluates 64 input patterns per gate operation with
// bitwise ops on uint64_t lanes (PPSFP-style), which is the classic software
// answer to the gate-level simulation bottleneck under every estimator in
// this repo. Target: >= 10x gate-evals/sec over the scalar engine on the
// array multiplier and random-DAG sweeps.
//
// Results go to BENCH_simengine.json (cwd, or argv[1] after the
// google-benchmark flags) so future PRs can track the trajectory.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "netlist/generators.hpp"
#include "sim/simulator.hpp"
#include "sim/streams.hpp"
#include "stats/rng.hpp"

namespace {

using namespace hlp;

struct Workload {
  std::string name;
  netlist::Module mod;
  stats::VectorStream in;
};

std::vector<Workload>& workloads() {
  static std::vector<Workload> w = [] {
    std::vector<Workload> v;
    stats::Rng rng(7);
    auto add = [&](std::string name, netlist::Module mod,
                   std::size_t cycles) {
      auto in = sim::random_stream(mod.total_input_bits(), cycles, 0.5, rng);
      v.push_back({std::move(name), std::move(mod), std::move(in)});
    };
    add("multiplier8", netlist::multiplier_module(8), 8192);
    add("random_dag", netlist::random_logic_module(32, 2000, 16, 42), 8192);
    add("adder16", netlist::adder_module(16), 8192);
    return v;
  }();
  return w;
}

double run_activities(const Workload& w, sim::EngineKind engine) {
  auto acts = sim::simulate_activities(w.mod.netlist, w.in, nullptr,
                                       sim::SimOptions{engine});
  double sum = 0.0;
  for (double a : acts) sum += a;
  return sum;
}

void BM_Sweep(benchmark::State& state, const Workload& w,
              sim::EngineKind engine) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_activities(w, engine));
  }
  state.counters["gate_evals_per_sec"] = benchmark::Counter(
      static_cast<double>(w.mod.netlist.logic_gate_count() *
                          w.in.words.size()),
      benchmark::Counter::kIsIterationInvariantRate);
}

/// Wall-clock gate-evals/sec for one engine, repeated and best-of to damp
/// scheduler noise.
double measure_evals_per_sec(const Workload& w, sim::EngineKind engine,
                             int reps) {
  using clock = std::chrono::steady_clock;
  const double gate_evals = static_cast<double>(
      w.mod.netlist.logic_gate_count() * w.in.words.size());
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    auto t0 = clock::now();
    benchmark::DoNotOptimize(run_activities(w, engine));
    auto t1 = clock::now();
    double secs = std::chrono::duration<double>(t1 - t0).count();
    if (secs > 0.0) best = std::max(best, gate_evals / secs);
  }
  return best;
}

void write_report(const std::string& path) {
  benchjson::Array circuits;
  std::printf("\nE-SIM — scalar vs packed sweep throughput "
              "(gate-evals/sec)\n\n");
  std::printf("%14s %8s %8s %14s %14s %9s\n", "circuit", "gates", "cycles",
              "scalar", "packed", "speedup");
  for (const auto& w : workloads()) {
    double scalar = measure_evals_per_sec(w, sim::EngineKind::Scalar, 5);
    double packed = measure_evals_per_sec(w, sim::EngineKind::Packed, 5);
    double speedup = scalar > 0.0 ? packed / scalar : 0.0;
    std::printf("%14s %8zu %8zu %14.3e %14.3e %8.1fx\n", w.name.c_str(),
                w.mod.netlist.logic_gate_count(), w.in.words.size(), scalar,
                packed, speedup);
    circuits.push_back(benchjson::Object{
        {"name", w.name},
        {"gates", w.mod.netlist.logic_gate_count()},
        {"cycles", w.in.words.size()},
        {"scalar_gate_evals_per_sec", scalar},
        {"packed_gate_evals_per_sec", packed},
        {"speedup", speedup},
    });
  }
  benchjson::Object root{
      {"bench", "simengine"},
      {"metric", "gate_evals_per_sec"},
      {"engines", benchjson::Array{"scalar", "packed"}},
      {"circuits", std::move(circuits)},
  };
  if (benchjson::save(path, root))
    std::printf("\nwrote %s\n", path.c_str());
  else
    std::printf("\nfailed to write %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  for (const auto& w : workloads()) {
    benchmark::RegisterBenchmark(("BM_Sweep_scalar/" + w.name).c_str(),
                                 [&w](benchmark::State& st) {
                                   BM_Sweep(st, w, sim::EngineKind::Scalar);
                                 });
    benchmark::RegisterBenchmark(("BM_Sweep_packed/" + w.name).c_str(),
                                 [&w](benchmark::State& st) {
                                   BM_Sweep(st, w, sim::EngineKind::Packed);
                                 });
  }
  benchmark::RunSpecifiedBenchmarks();
  const char* path = "BENCH_simengine.json";
  if (argc > 1 && argv[1][0] != '-') path = argv[1];
  write_report(path);
  return 0;
}
