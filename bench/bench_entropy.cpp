// E12 — Information-theoretic power estimation (Section II-B1).
//
// Paper: entropy-based estimates (Marculescu [9], Nemani-Najm [10]) track
// simulated power from input/output entropies alone; Cheng-Agrawal's C_tot
// [11] grows as 2^n and becomes pessimistic for wide modules, which the
// BDD-node-based Ferrandi estimate [12] fixes.

#include <cstdio>

#include "core/entropy_model.hpp"
#include "sim/simulator.hpp"
#include "sim/streams.hpp"
#include "stats/regression.hpp"

int main() {
  using namespace hlp;
  using namespace hlp::core;

  struct Case {
    const char* name;
    netlist::Module mod;
  };
  std::vector<Case> cases;
  cases.push_back({"adder-4", netlist::adder_module(4)});
  cases.push_back({"adder-8", netlist::adder_module(8)});
  cases.push_back({"mult-4", netlist::multiplier_module(4)});
  cases.push_back({"alu-6", netlist::alu_module(6)});
  cases.push_back({"cmp-8", netlist::comparator_module(8)});
  cases.push_back({"parity-12", netlist::parity_module(12)});
  cases.push_back({"rnd-12x90", netlist::random_logic_module(12, 90, 6, 3)});

  std::printf("E12 — entropy power estimates vs gate-level simulation "
              "(random inputs, p=0.5)\n\n");
  std::printf("%-10s %6s %6s %8s %8s %10s %10s %10s %8s %10s\n", "module",
              "h_in", "h_out", "P(marc)", "P(nem)", "P(sim)", "Ctot",
              "C(cheng)", "bddN", "C(ferr)");
  for (auto& c : cases) {
    stats::Rng rng(5);
    auto in =
        sim::random_stream(c.mod.total_input_bits(), 3000, 0.5, rng);
    auto est = evaluate_entropy_models(c.mod, in);
    std::printf("%-10s %6.3f %6.3f %8.3g %8.3g %10.3g %10.3g %10.3g %8zu "
                "%10.3g\n", c.name, est.h_in, est.h_out,
                est.power_marculescu, est.power_nemani, est.power_simulated,
                est.ctot_actual, est.ctot_cheng, est.bdd_nodes,
                est.ctot_ferrandi);
  }

  // Activity sweep on one module: the paper's estimators assume temporal
  // independence and go flat under correlation; the transition-entropy
  // extension restores tracking.
  std::printf("\nActivity tracking (adder-8, temporal-correlation "
              "sweep):\n");
  std::printf("%8s %8s %10s %10s %12s %10s\n", "hold", "h_in", "P(marc)",
              "P(nem)", "P(trans-ext)", "P(sim)");
  auto mod = netlist::adder_module(8);
  for (double hold : {0.0, 0.5, 0.8, 0.95, 0.99}) {
    stats::Rng rng(7);
    auto in = sim::correlated_stream(16, 3000, hold, rng);
    stats::VectorStream out_stream;
    auto acts = sim::simulate_activities(mod.netlist, in, &out_stream);
    (void)acts;
    auto est = evaluate_entropy_models(mod, in, {}, false);
    double p_trans = transition_entropy_power(
        in, out_stream, est.ctot_actual, mod.total_input_bits(),
        mod.total_output_bits(), {});
    std::printf("%8.2f %8.3f %10.3g %10.3g %12.3g %10.3g\n", hold, est.h_in,
                est.power_marculescu, est.power_nemani, p_trans,
                est.power_simulated);
  }
  std::printf("(the flat P(marc)/P(nem) columns are the temporal-"
              "independence assumption the paper states; the transition-"
              "entropy\n extension — beyond the paper — tracks the true "
              "decay)\n");

  // Ferrandi regression: fit alpha/beta over a circuit family and report
  // fit quality (the paper's coefficients are obtained exactly this way).
  std::printf("\nFerrandi C_tot regression (alpha/beta fitted per circuit "
              "family, as the paper prescribes):\n");
  auto fit_family = [&](const char* name, auto&& make, int lo, int hi) {
    stats::Matrix xs;
    std::vector<double> ys;
    for (int n = lo; n <= hi; ++n) {
      auto m = make(n);
      stats::Rng rng(3);
      auto in = sim::random_stream(m.total_input_bits(), 800, 0.5, rng);
      auto est = evaluate_entropy_models(m, in);
      xs.push_back({ferrandi_ctot(est.bdd_nodes, m.total_input_bits(),
                                  m.total_output_bits(), est.h_out)});
      ys.push_back(est.ctot_actual);
    }
    auto fit = stats::ols(xs, ys);
    std::printf("  %-12s alpha=%.3f beta=%.1f R^2=%.3f (%zu sizes)\n",
                name, fit.beta.empty() ? 0.0 : fit.beta[0], fit.intercept,
                fit.r2, ys.size());
  };
  fit_family("adders", [](int n) { return netlist::adder_module(n); }, 2,
             10);
  fit_family("comparators",
             [](int n) { return netlist::comparator_module(n); }, 2, 10);
  fit_family("multipliers",
             [](int n) { return netlist::multiplier_module(n); }, 2, 6);
  return 0;
}
