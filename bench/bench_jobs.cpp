// E-JOBS — Cost of supervised campaign execution (src/jobs).
//
// Three questions decide how the job runner should be configured by
// default:
//
//  1. Scaling: jobs/sec for a homogeneous Monte Carlo campaign at worker
//     counts 1/2/4/8. The kernels are independent, so throughput should
//     scale until the machine runs out of cores.
//
//  2. Ledger overhead: every state transition is fsync'd before the runner
//     acts on it; how much of a serial campaign's wall time does that
//     write-ahead discipline cost?
//
//  3. Resume latency: re-running a finished campaign against its ledger
//     recomputes nothing — how fast is "scan + serve results back"?
//
// Results go to BENCH_jobs.json (cwd, or argv[1] after the
// google-benchmark flags).

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.hpp"
#include "jobs/jobs.hpp"

namespace {

using namespace hlp;
using clock_type = std::chrono::steady_clock;

constexpr int kJobs = 32;

std::vector<jobs::Job> make_campaign() {
  std::vector<jobs::Job> c;
  c.reserve(kJobs);
  for (int i = 0; i < kJobs; ++i) {
    jobs::Job j;
    j.id = "mc-" + std::to_string(i);
    j.kind = jobs::JobKind::MonteCarlo;
    // Rotate through designs of different sizes so workers see uneven job
    // costs; a tight epsilon keeps each kernel busy for a few ms, which is
    // the regime the pool is for (µs-long jobs are dominated by handoff).
    static const char* kDesigns[] = {"alu:12", "adder:16", "mult:8",
                                     "comparator:16"};
    j.design = kDesigns[i % 4];
    j.epsilon = 0.008;
    c.push_back(j);
  }
  return c;
}

std::string tmp_ledger() {
  const char* tmp = std::getenv("TMPDIR");
  return std::string(tmp ? tmp : "/tmp") + "/bench_jobs.ledger";
}

double run_campaign_seconds(int workers, const std::string& ledger_path,
                            bool resume = false) {
  jobs::RunnerOptions opts;
  opts.workers = workers;
  opts.ledger_path = ledger_path;
  jobs::Runner runner(opts);
  std::vector<jobs::Job> campaign = make_campaign();
  auto t0 = clock_type::now();
  jobs::CampaignResult cr =
      resume ? runner.resume(campaign) : runner.run(campaign);
  auto t1 = clock_type::now();
  benchmark::DoNotOptimize(cr.value_stats.mean());
  if (!cr.all_completed()) std::fprintf(stderr, "bench campaign failed!\n");
  return std::chrono::duration<double>(t1 - t0).count();
}

/// Best-of-`reps` to damp scheduler noise.
double best_seconds(int workers, const std::string& ledger, int reps,
                    bool resume = false) {
  double best = 1e30;
  for (int r = 0; r < reps; ++r)
    best = std::min(best, run_campaign_seconds(workers, ledger, resume));
  return best;
}

void BM_Campaign(benchmark::State& st) {
  const int workers = static_cast<int>(st.range(0));
  for (auto _ : st)
    benchmark::DoNotOptimize(run_campaign_seconds(workers, ""));
  st.counters["jobs_per_sec"] = benchmark::Counter(
      static_cast<double>(kJobs) * static_cast<double>(st.iterations()),
      benchmark::Counter::kIsRate);
}

void write_report(const std::string& path) {
  std::printf("\n--- BENCH_jobs report ---\n");
  const int reps = 3;

  benchjson::Array scaling;
  double serial_jps = 0.0;
  const unsigned cores = std::thread::hardware_concurrency();
  std::printf("campaign throughput (%d Monte Carlo jobs, no ledger, "
              "%u hardware threads)\n",
              kJobs, cores);
  for (int workers : {1, 2, 4, 8}) {
    double secs = best_seconds(workers, "", reps);
    double jps = kJobs / secs;
    if (workers == 1) serial_jps = jps;
    std::printf("  workers %d: %7.1f jobs/sec (speedup %.2fx)\n", workers,
                jps, jps / serial_jps);
    scaling.push_back(benchjson::Object{
        {"workers", workers},
        {"jobs_per_sec", jps},
        {"speedup", jps / serial_jps},
    });
  }

  const std::string ledger = tmp_ledger();
  double plain = best_seconds(1, "", reps);
  double journaled = best_seconds(1, ledger, reps);
  double overhead_pct = 100.0 * (journaled - plain) / plain;
  std::printf("ledger overhead (serial): %.3fs -> %.3fs  (+%.1f%%, "
              "group-committed fsync)\n",
              plain, journaled, overhead_pct);

  // Concurrent variant: with several workers completing records at once
  // the group commit should fold their fsyncs together, so the journaled
  // penalty must not grow with the worker count.
  const int cworkers = 4;
  double cplain = best_seconds(cworkers, "", reps);
  double cjournaled = best_seconds(cworkers, ledger, reps);
  double coverhead_pct = 100.0 * (cjournaled - cplain) / cplain;
  std::printf("ledger overhead (workers %d): %.3fs -> %.3fs  (+%.1f%%)\n",
              cworkers, cplain, cjournaled, coverhead_pct);

  // Resume latency: the ledger now holds a finished campaign; resuming it
  // recomputes nothing and just serves recorded values back.
  run_campaign_seconds(1, ledger);  // leave a complete ledger behind
  double resume_secs = best_seconds(1, ledger, reps, /*resume=*/true);
  std::printf("resume of finished campaign: %.3f ms total, %.3f ms/job\n",
              resume_secs * 1e3, resume_secs * 1e3 / kJobs);
  std::remove(ledger.c_str());

  benchjson::Object root{
      {"bench", "jobs"},
      {"campaign_jobs", kJobs},
      // Speedup is bounded by the machine: on a 1-core box every worker
      // count collapses to serial plus handoff overhead.
      {"hardware_threads", static_cast<int>(cores)},
      {"scaling", std::move(scaling)},
      {"ledger_overhead",
       benchjson::Object{
           {"plain_seconds", plain},
           {"journaled_seconds", journaled},
           {"overhead_percent", overhead_pct},
       }},
      {"ledger_overhead_concurrent",
       benchjson::Object{
           {"workers", cworkers},
           {"plain_seconds", cplain},
           {"journaled_seconds", cjournaled},
           {"overhead_percent", coverhead_pct},
       }},
      {"resume",
       benchjson::Object{
           {"finished_campaign_seconds", resume_secs},
           {"per_job_seconds", resume_secs / kJobs},
       }},
  };
  if (benchjson::save(path, root))
    std::printf("\nwrote %s\n", path.c_str());
  else
    std::printf("\nfailed to write %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  for (int workers : {1, 2, 4, 8})
    benchmark::RegisterBenchmark(
        ("BM_Campaign/workers:" + std::to_string(workers)).c_str(),
        BM_Campaign)
        ->Arg(workers)
        ->Unit(benchmark::kMillisecond);
  benchmark::RunSpecifiedBenchmarks();
  const char* path = "BENCH_jobs.json";
  if (argc > 1 && argv[1][0] != '-') path = argv[1];
  write_report(path);
  return 0;
}
