// E-ANALYSIS — Cost and accuracy of the zero-simulation static estimator
// (src/analysis) and its serve tier-0 path.
//
// Three questions:
//
//  1. Latency: microseconds for a full static estimate (index build +
//     const-prop + activity + arrival + bounds) as gate count grows, and
//     the headline ratio against the cold symbolic serve path on adder:16
//     (BENCH_serve.json cold.latency_seconds). The acceptance bar is
//     >= 100x faster.
//
//  2. Tightness: relative bound spread (upper-lower)/point versus the BDD
//     refinement node budget on a reconvergent design (mult:6). More budget
//     => more of the topological prefix computed exactly => tighter
//     Fréchet bounds.
//
//  3. Serve tier-0: fraction of "kind":"static" requests over the
//     generator corpus answered from the static bounds alone (detail
//     "static-tier0...") versus escalated to packed Monte Carlo, at a
//     representative epsilon.
//
// Results go to BENCH_analysis.json (cwd, or argv[1] after the
// google-benchmark flags).

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "analysis/estimate.hpp"
#include "bench_json.hpp"
#include "jobs/kernels.hpp"
#include "netlist/generators.hpp"
#include "netlist/index.hpp"
#include "serve/protocol.hpp"
#include "serve/service.hpp"

namespace {

using namespace hlp;
using clock_type = std::chrono::steady_clock;

/// Cold symbolic latency for adder:16 measured by bench_serve (see
/// BENCH_serve.json "cold"."latency_seconds"). Re-measured there, quoted
/// here: the two benches run on the same machine class and the ratio only
/// needs one significant figure to clear (or miss) the 100x bar.
constexpr double kColdSymbolicSeconds = 2.14263;

struct Workload {
  std::string name;
  netlist::Module mod;
};

std::vector<Workload> latency_workloads() {
  std::vector<Workload> ws;
  ws.push_back({"adder:16", jobs::make_module("adder:16")});
  ws.push_back({"mult:6", jobs::make_module("mult:6")});
  ws.push_back({"mult:8", jobs::make_module("mult:8")});
  // Sizes beyond the spec parser's 20k-gate cap come straight from the
  // generator.
  for (int gates : {1000, 4000, 16000, 32000}) {
    ws.push_back({"random_dag" + std::to_string(gates),
                  netlist::random_logic_module(32, gates, 16, 42)});
  }
  return ws;
}

/// One full static estimate from scratch, including the index build — the
/// cost a cold serve tier-0 request actually pays.
analysis::StaticEstimate estimate_cold(const netlist::Netlist& nl,
                                       std::size_t refine_budget) {
  netlist::NetlistIndex ix = netlist::build_index(nl);
  analysis::StaticOptions opts;
  opts.refine_node_budget = refine_budget;
  return analysis::static_estimate(nl, ix, opts);
}

double measure_seconds(const netlist::Netlist& nl, std::size_t refine_budget,
                       int reps) {
  double best = 1e100;
  for (int r = 0; r < reps; ++r) {
    auto t0 = clock_type::now();
    analysis::StaticEstimate est = estimate_cold(nl, refine_budget);
    benchmark::DoNotOptimize(est.point);
    auto t1 = clock_type::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

void BM_StaticEstimate(benchmark::State& state, const Workload* w) {
  for (auto _ : state) {
    analysis::StaticEstimate est = estimate_cold(w->mod.netlist, 20000);
    benchmark::DoNotOptimize(est.point);
  }
  state.counters["gates"] =
      static_cast<double>(w->mod.netlist.gate_count());
}

void write_report(const std::string& path) {
  // 1. Latency vs gate count.
  benchjson::Array latency;
  double adder16_seconds = 0.0;
  std::printf("\nE-ANALYSIS — static estimate latency (cold, incl. index "
              "build)\n\n");
  std::printf("%20s %8s %12s %10s %10s\n", "design", "gates", "latency_us",
              "point", "spread");
  for (const Workload& w : latency_workloads()) {
    double secs = measure_seconds(w.mod.netlist, 20000, 9);
    analysis::StaticEstimate est = estimate_cold(w.mod.netlist, 20000);
    if (w.name == "adder:16") adder16_seconds = secs;
    std::printf("%20s %8zu %12.1f %10.4g %10.4g\n", w.name.c_str(),
                w.mod.netlist.gate_count(), secs * 1e6, est.point,
                est.spread());
    latency.push_back(benchjson::Object{
        {"design", w.name},
        {"gates", w.mod.netlist.gate_count()},
        {"latency_seconds", secs},
        {"point", est.point},
        {"lower", est.lower},
        {"upper", est.upper},
        {"relative_spread", est.spread()},
    });
  }
  const double speedup =
      adder16_seconds > 0.0 ? kColdSymbolicSeconds / adder16_seconds : 0.0;
  std::printf("\nadder:16 static vs cold symbolic (%.3gs): %.0fx\n",
              kColdSymbolicSeconds, speedup);

  // 2. Bound tightness vs refinement budget on a reconvergent design.
  benchjson::Array tightness;
  const netlist::Module mult6 = jobs::make_module("mult:6");
  std::printf("\nbound tightness vs BDD refinement budget (mult:6)\n\n");
  std::printf("%10s %10s %12s %10s %12s\n", "budget", "refined", "bdd_nodes",
              "spread", "latency_us");
  for (std::size_t budget : {std::size_t{0}, std::size_t{1000},
                             std::size_t{5000}, std::size_t{20000},
                             std::size_t{100000}}) {
    double secs = measure_seconds(mult6.netlist, budget, 5);
    analysis::StaticEstimate est = estimate_cold(mult6.netlist, budget);
    std::printf("%10zu %10zu %12zu %10.4g %12.1f\n", budget,
                est.activity.refined_gates, est.activity.bdd_nodes,
                est.spread(), secs * 1e6);
    tightness.push_back(benchjson::Object{
        {"refine_node_budget", budget},
        {"refined_gates", est.activity.refined_gates},
        {"bdd_nodes", est.activity.bdd_nodes},
        {"relative_spread", est.spread()},
        {"latency_seconds", secs},
    });
  }

  // 3. Serve tier-0 hit vs escalation over the generator corpus.
  const char* corpus[] = {"adder:8",  "adder:16",     "mult:4",
                          "mult:6",   "mult:8",       "parity:8",
                          "comparator:6", "max:6",    "mux:3",
                          "alu:4",    "mulred:4:2",   "c17"};
  serve::Service service;
  std::size_t tier0 = 0, escalated = 0;
  double tier0_secs = 0.0, escalated_secs = 0.0;
  benchjson::Array corpus_rows;
  std::printf("\nserve \"kind\":\"static\" at epsilon 0.05\n\n");
  for (const char* design : corpus) {
    serve::Request rq;
    rq.kind = jobs::JobKind::Static;
    rq.design = design;
    rq.epsilon = 0.05;
    rq.use_cache = false;  // measure evaluation, not the result cache
    auto t0 = clock_type::now();
    std::string line = service.handle_line(rq.serialize());
    auto t1 = clock_type::now();
    const double secs = std::chrono::duration<double>(t1 - t0).count();
    serve::ResponseView rv;
    serve::parse_response(line, rv);
    const bool hit = rv.detail.rfind("static-tier0", 0) == 0;
    (hit ? tier0 : escalated) += 1;
    (hit ? tier0_secs : escalated_secs) += secs;
    std::printf("%16s %-9s %10.1f us  %s\n", design,
                hit ? "tier0" : "escalated", secs * 1e6, rv.detail.c_str());
    corpus_rows.push_back(benchjson::Object{
        {"design", std::string(design)},
        {"tier0", hit},
        {"latency_seconds", secs},
    });
  }
  const std::size_t total = tier0 + escalated;
  std::printf("\ntier-0 rate: %zu/%zu; mean tier-0 %.1f us, mean escalated "
              "%.1f ms\n",
              tier0, total, tier0 ? tier0_secs / tier0 * 1e6 : 0.0,
              escalated ? escalated_secs / escalated * 1e3 : 0.0);

  benchjson::Object root{
      {"bench", "analysis"},
      {"metric", "static_estimate"},
      {"latency", std::move(latency)},
      {"cold_symbolic_seconds_ref", kColdSymbolicSeconds},
      {"adder16_static_seconds", adder16_seconds},
      {"speedup_vs_cold_symbolic", speedup},
      {"meets_100x_bar", speedup >= 100.0},
      {"tightness_mult6", std::move(tightness)},
      {"serve_static", benchjson::Object{
          {"epsilon", 0.05},
          {"tier0", tier0},
          {"escalated", escalated},
          {"tier0_rate", total ? static_cast<double>(tier0) / total : 0.0},
          {"mean_tier0_seconds", tier0 ? tier0_secs / tier0 : 0.0},
          {"mean_escalated_seconds",
           escalated ? escalated_secs / escalated : 0.0},
          {"corpus", std::move(corpus_rows)},
      }},
  };
  if (benchjson::save(path, root))
    std::printf("\nwrote %s\n", path.c_str());
  else
    std::fprintf(stderr, "bench_analysis: cannot write %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);

  static std::vector<Workload> ws = latency_workloads();
  for (const Workload& w : ws)
    benchmark::RegisterBenchmark(("BM_StaticEstimate/" + w.name).c_str(),
                                 BM_StaticEstimate, &w);
  benchmark::RunSpecifiedBenchmarks();

  std::string path = "BENCH_analysis.json";
  if (argc > 1 && argv[1][0] != '-') path = argv[1];
  write_report(path);
  return 0;
}
