// E7 — Fig. 7: gated clocks for reactive FSMs (Benini et al. [101]-[103]).
//
// Paper: the activation function Fa stops the local clock whenever no state
// or output transition occurs; for reactive circuits with long wait states
// the number of gated cycles — and so the clock-power saving — is large.

#include <cstdio>

#include "core/clock_gating.hpp"
#include "core/control_respec.hpp"
#include "fsm/encoding.hpp"

int main() {
  using namespace hlp;
  using namespace hlp::core;

  std::printf("E7 — gated clocks on reactive protocol FSMs\n\n");
  std::printf("%-14s %9s %11s %11s %11s %9s %9s\n", "fsm", "req-prob",
              "idle-frac", "P(base)", "P(gated)", "saving", "Fa-gates");
  for (int burst : {3, 6, 10}) {
    auto stg = fsm::protocol_fsm(burst);
    auto ma = fsm::analyze_markov(stg);
    auto codes = fsm::encode_states(stg, fsm::EncodingStyle::Binary, &ma);
    auto sf = fsm::synthesize_fsm(
        stg, codes,
        fsm::encoding_bits(fsm::EncodingStyle::Binary, stg.num_states()));
    for (double req : {0.5, 0.1, 0.02}) {
      stats::Rng rng(7);
      std::vector<double> probs{1.0 - req, req / 2, 0.0, req / 2};
      auto res = evaluate_clock_gating(stg, sf, 20000, rng, probs);
      std::printf("protocol-%-5d %9.2f %11.3f %11.4g %11.4g %8.1f%% %9zu\n",
                  burst, req, res.idle_fraction, res.base_power,
                  res.gated_power, 100.0 * res.saving(), res.fa_gates);
    }
  }
  std::printf("\nNon-reactive baseline (counter, always enabled):\n");
  {
    auto stg = fsm::counter_fsm(4);
    auto ma = fsm::analyze_markov(stg);
    auto codes = fsm::encode_states(stg, fsm::EncodingStyle::Binary, &ma);
    auto sf = fsm::synthesize_fsm(stg, codes, 4);
    stats::Rng rng(9);
    std::vector<double> probs{0.0, 1.0};
    auto res = evaluate_clock_gating(stg, sf, 10000, rng, probs);
    std::printf("counter-16    %9s %11.3f %11.4g %11.4g %8.1f%%\n", "-",
                res.idle_fraction, res.base_power, res.gated_power,
                100.0 * res.saving());
  }
  std::printf("\n(paper claim shape: saving grows with the idle fraction; "
              "busy machines gain nothing and pay the Fa overhead)\n");

  // Controller respecification (Raghunathan et al. [107],[108]): don't-care
  // select assignments in idle cycles hold the steering network still.
  std::printf("\nController respecification on a shared bus (Section III-I "
              "other approaches):\n");
  std::printf("%8s %12s %12s %12s %9s\n", "idle", "P(default)",
              "P(respec)", "mux-gates", "saving");
  for (double idle : {0.2, 0.5, 0.8}) {
    auto r = evaluate_control_respec(8, 8, 6000, idle, 7);
    std::printf("%8.2f %12.4g %12.4g %12zu %8.1f%%\n", idle,
                r.power_default, r.power_respec, r.mux_gates,
                100.0 * r.saving());
  }
  std::printf("(the steering network stops reconfiguring for unused bus "
              "cycles; savings track the idle fraction)\n");
  return 0;
}
