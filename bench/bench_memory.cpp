// E20 (extension) — parametric memory power (Liu–Svensson [42], Section
// II-C1) and memory-hierarchy exploration (Catthoor et al. [52],[56],[57],
// Section III-A).
//
// Paper: processor-component power is expressible in closed form from
// architecture parameters; for data-dominated applications, sizing a small
// cheap buffer to the application's reuse pattern minimizes total memory
// energy.

#include <cstdio>

#include "core/memory_hierarchy.hpp"
#include "core/memory_model.hpp"
#include "isa/programs.hpp"

int main() {
  using namespace hlp;
  using namespace hlp::core;

  std::printf("E20a — SRAM access-energy decomposition (the paper's five "
              "components)\n\n");
  std::printf("%6s %6s %10s %10s %10s %10s %10s %12s\n", "n", "k", "cells",
              "decoder", "wordline", "colsel", "sense", "total");
  for (int n : {8, 10, 12, 14, 16}) {
    MemoryParams p;
    p.n = n;
    p.k = optimal_column_split(p);
    auto e = memory_access_energy(p);
    std::printf("%6d %6d %10.1f %10.1f %10.1f %10.1f %10.1f %12.1f\n", n,
                p.k, e.cells, e.decoder, e.wordline, e.colselect, e.sense,
                e.total());
  }

  std::printf("\nE20b — aspect-ratio (row/column split) sweep for a 2^14 "
              "word array:\n");
  std::printf("%6s %14s\n", "k", "energy/access");
  MemoryParams p14;
  p14.n = 14;
  for (auto [k, e] : sweep_column_split(p14))
    std::printf("%6d %14.1f%s\n", k, e,
                k == optimal_column_split(p14) ? "  <- optimum" : "");

  std::printf("\nE20c — first-level buffer sweep over real ISA traces "
              "(energy per access, backing store 2^16)\n\n");
  struct Wl {
    const char* name;
    isa::Program prog;
  };
  std::vector<Wl> wls;
  wls.push_back({"dsp-kernel", isa::dsp_kernel(8, 2000)});
  wls.push_back({"array-sum", isa::array_sum(64, 64)});
  wls.push_back({"rand-loads", isa::random_loads(16384, 20000, 9)});

  std::printf("%-12s", "buffer-bits");
  for (int bits = 3; bits <= 12; ++bits) std::printf(" %8d", bits);
  std::printf(" %9s\n", "flat");
  for (auto& wl : wls) {
    isa::Machine m;
    auto st = m.run(wl.prog, 5'000'000, true);
    auto sweep = sweep_first_level(st.addr_trace, 16, 3, 12);
    std::printf("%-12s", wl.name);
    for (auto& [bits, e] : sweep) std::printf(" %8.1f", e);
    // Flat configuration: backing store only.
    std::vector<BufferLevel> flat{make_level(16)};
    auto ev = evaluate_hierarchy(st.addr_trace, flat);
    std::printf(" %9.1f\n", ev.energy_per_access());
  }
  std::printf("\n(paper claim shape: reuse-heavy workloads have a sweet "
              "spot where a small buffer captures the working set far "
              "below\n the flat-memory cost; reuse-free workloads gain "
              "nothing and pay the probe overhead)\n");
  return 0;
}
