// E-LINT — Design-rule checker throughput over the three IRs.
//
// The lint pass (src/lint/) is meant to run at every estimator entry point
// in strict deployments, so it must stay linear in the design: all rules are
// single-pass reachability/SCC/fanout computations, O(V + E) over the
// netlist. This bench measures gates/sec on the largest array multiplier
// and sweeps random DAGs across a 32x size range — if the checker is really
// linear, gates/sec stays flat as the design grows.
//
// Results go to BENCH_lint.json (cwd, or argv[1] after the google-benchmark
// flags) so future PRs can track the trajectory.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "cdfg/generators.hpp"
#include "fsm/stg.hpp"
#include "lint/lint.hpp"
#include "netlist/generators.hpp"

namespace {

using namespace hlp;

struct Workload {
  std::string name;
  netlist::Module mod;
  std::size_t edges = 0;
};

std::size_t count_edges(const netlist::Netlist& nl) {
  std::size_t e = 0;
  for (netlist::GateId g = 0; g < nl.gate_count(); ++g)
    e += nl.gate(g).fanins.size();
  return e;
}

std::vector<Workload>& workloads() {
  static std::vector<Workload> w = [] {
    std::vector<Workload> v;
    auto add = [&](std::string name, netlist::Module mod) {
      std::size_t e = count_edges(mod.netlist);
      v.push_back({std::move(name), std::move(mod), e});
    };
    add("multiplier16", netlist::multiplier_module(16));
    // O(V+E) scaling sweep: same shape, 32x size range.
    for (int gates : {1000, 2000, 4000, 8000, 16000, 32000})
      add("random_dag" + std::to_string(gates),
          netlist::random_logic_module(32, gates, 16, 42));
    return v;
  }();
  return w;
}

/// The full default rule set: structural tiers plus the analysis-backed
/// quantitative tier (NL-CONST, PW-BOUND, estimated-waste fields).
lint::LintOptions full_opts() {
  lint::LintOptions opts;
  opts.mode = lint::LintMode::Warn;
  return opts;
}

/// The pre-quantitative rule set (what this bench measured before the
/// dataflow analyses existed): structural + power-shape rules, no
/// activity/arrival/const-prop passes, no waste figures. Tracked
/// separately so sweep_throughput_retention stays comparable across the
/// rule-set change.
lint::LintOptions structural_opts() {
  lint::LintOptions opts;
  opts.mode = lint::LintMode::Warn;
  opts.quantify = false;
  opts.disabled = {"NL-CONST"};
  return opts;
}

std::size_t run_lint(const Workload& w, const lint::LintOptions& opts) {
  return lint::run_module(w.mod, opts).diags.size();
}

void BM_Lint(benchmark::State& state, const Workload& w) {
  const lint::LintOptions opts = full_opts();
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_lint(w, opts));
  }
  state.counters["gates_per_sec"] = benchmark::Counter(
      static_cast<double>(w.mod.netlist.gate_count()),
      benchmark::Counter::kIsIterationInvariantRate);
}

/// Wall-clock gates/sec for one full run_module pass, best-of-N to damp
/// scheduler noise.
double measure_gates_per_sec(const Workload& w, const lint::LintOptions& opts,
                             int reps) {
  using clock = std::chrono::steady_clock;
  const double gates = static_cast<double>(w.mod.netlist.gate_count());
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    auto t0 = clock::now();
    benchmark::DoNotOptimize(run_lint(w, opts));
    auto t1 = clock::now();
    double secs = std::chrono::duration<double>(t1 - t0).count();
    if (secs > 0.0) best = std::max(best, gates / secs);
  }
  return best;
}

void write_report(const std::string& path) {
  benchjson::Array circuits;
  const lint::LintOptions structural = structural_opts();
  const lint::LintOptions full = full_opts();
  std::printf("\nE-LINT — lint throughput (gates/sec), structural rule set "
              "vs full quantitative set\n\n");
  std::printf("%16s %8s %8s %8s %14s %8s %14s\n", "circuit", "gates",
              "edges", "diags", "gates/sec", "q-diags", "q-gates/sec");
  double first_sweep = 0.0, last_sweep = 0.0;
  double first_quant = 0.0, last_quant = 0.0;
  for (const auto& w : workloads()) {
    double gps = measure_gates_per_sec(w, structural, 7);
    double qgps = measure_gates_per_sec(w, full, 7);
    std::size_t diags = run_lint(w, structural);
    std::size_t qdiags = run_lint(w, full);
    std::printf("%16s %8zu %8zu %8zu %14.3e %8zu %14.3e\n", w.name.c_str(),
                w.mod.netlist.gate_count(), w.edges, diags, gps, qdiags,
                qgps);
    if (w.name.rfind("random_dag", 0) == 0) {
      if (first_sweep == 0.0) first_sweep = gps;
      last_sweep = gps;
      if (first_quant == 0.0) first_quant = qgps;
      last_quant = qgps;
    }
    circuits.push_back(benchjson::Object{
        {"name", w.name},
        {"gates", w.mod.netlist.gate_count()},
        {"edges", w.edges},
        {"diagnostics", diags},
        {"gates_per_sec", gps},
        {"quant_diagnostics", qdiags},
        {"quant_gates_per_sec", qgps},
    });
  }
  // Linearity figure of merit: gates/sec at 32x size over gates/sec at 1x.
  // ~1.0 means O(V+E); a superlinear checker would decay toward 0.
  // sweep_throughput_retention keeps measuring the structural rule set it
  // always measured; the quantitative tier (which emits ~1.5 diagnostics
  // per gate on these DAGs) is tracked by its own figure.
  double retention = first_sweep > 0.0 ? last_sweep / first_sweep : 0.0;
  double qretention = first_quant > 0.0 ? last_quant / first_quant : 0.0;
  std::printf("\nthroughput retention across 32x sweep: %.2f structural, "
              "%.2f quantitative (1.0 = perfectly linear)\n",
              retention, qretention);
  benchjson::Object root{
      {"bench", "lint"},
      {"metric", "gates_per_sec"},
      {"sweep_throughput_retention", retention},
      {"quantitative_sweep_retention", qretention},
      {"circuits", std::move(circuits)},
  };
  if (benchjson::save(path, root))
    std::printf("\nwrote %s\n", path.c_str());
  else
    std::printf("\nfailed to write %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  for (const auto& w : workloads()) {
    benchmark::RegisterBenchmark(
        ("BM_Lint/" + w.name).c_str(),
        [&w](benchmark::State& st) { BM_Lint(st, w); });
  }
  benchmark::RunSpecifiedBenchmarks();
  const char* path = "BENCH_lint.json";
  if (argc > 1 && argv[1][0] != '-') path = argv[1];
  write_report(path);
  return 0;
}
