// E8 — Fig. 8: guarded evaluation (Tiwari et al. [105]).
//
// Paper: transparent latches controlled by *existing* signals block logic
// cones whose observability don't-care condition the guard implies; no new
// control logic is synthesized. Savings grow when one mux side dominates.

#include <cstdio>

#include "core/guarded_eval.hpp"
#include "netlist/words.hpp"
#include "sim/streams.hpp"

namespace {

hlp::netlist::Module alu_select_module(int n) {
  hlp::netlist::Module m;
  m.name = "alusel" + std::to_string(n);
  auto& nl = m.netlist;
  auto a = hlp::netlist::make_input_word(nl, n, "a");
  auto b = hlp::netlist::make_input_word(nl, n, "b");
  auto sel = nl.add_input("sel");
  auto sum = hlp::netlist::ripple_adder(nl, a, b);
  auto mult = hlp::netlist::array_multiplier(nl, a, b);
  mult.resize(sum.size());
  auto out = hlp::netlist::mux_word(nl, sel, sum, mult);
  hlp::netlist::mark_output_word(nl, out, "y");
  m.input_words = {a, b, {sel}};
  m.output_words = {out};
  return m;
}

}  // namespace

int main() {
  using namespace hlp;
  using namespace hlp::core;

  std::printf("E8 — guarded evaluation on a shared add/mul datapath "
              "(out = sel ? mult : add)\n\n");
  std::printf("%4s %10s %8s %11s %11s %9s %7s\n", "n", "P(sel=1)", "latches",
              "P(base)", "P(guard)", "saving", "func");
  for (int n : {4, 6, 8}) {
    auto mod = alu_select_module(n);
    auto guards = find_guards(mod);
    auto gc = apply_guards(mod, guards);
    for (double psel : {0.5, 0.2, 0.05}) {
      stats::Rng rng(5);
      auto data = sim::random_stream(2 * n, 6000, 0.5, rng);
      auto selbit = sim::random_stream(1, 6000, psel, rng);
      auto in = sim::zip_streams(data, selbit);
      auto res = evaluate_guarded(mod, gc, in);
      std::printf("%4d %10.2f %8zu %11.4g %11.4g %8.1f%% %7s\n", n, psel,
                  gc.latches, res.base_power, res.guarded_power,
                  100.0 * res.saving(),
                  res.functionally_correct ? "ok" : "FAIL");
    }
  }
  std::printf("\nGuard candidates found on the 8-bit design:\n");
  {
    auto mod = alu_select_module(8);
    for (auto& g : find_guards(mod))
      std::printf("  cone %4zu gates, guard=%s, odc=%s, pure-timing=%s\n",
                  g.cone.size(),
                  g.block_when_guard_high ? "sel(high)" : "sel(low)",
                  g.odc_verified ? "yes" : "no", g.pure ? "yes" : "no");
  }
  std::printf("\n(paper claim shape: savings track how often the guarded "
              "cone is unobserved; skewed selects favor the multiplier "
              "guard)\n");
  return 0;
}
