// E6 — Fig. 6: precomputation-based sequential logic optimization
// (Alidina/Monteiro et al. [99]).
//
// Paper: registering predictor functions g1/g0 over a small input subset
// lets the main block's input register hold whenever the predictors decide
// the output, eliminating its internal switching for those cycles. The
// classic example family is comparators, where the two MSBs decide half of
// all cycles.

#include <cstdio>

#include "core/precomputation.hpp"
#include "sim/streams.hpp"

int main() {
  using namespace hlp;
  using namespace hlp::core;

  std::printf("E6 — precomputation on n-bit comparators (subset = 2 MSBs "
              "... 2k MSBs)\n\n");
  std::printf("%6s %8s %10s %10s %10s %9s %10s %8s\n", "n", "subset",
              "coverage", "observed", "P(base)", "P(pre)", "saving",
              "pred-gates");
  for (int n : {6, 8, 10}) {
    auto mod = netlist::comparator_module(n);
    for (int k = 2; k <= 6; k += 2) {
      auto subset = select_precompute_inputs(mod, k);
      auto pc = build_precomputed(mod, subset, true);
      auto base = build_precomputed(mod, subset, false);
      stats::Rng rng(3);
      auto in = sim::random_stream(2 * n, 4000, 0.5, rng);
      auto ev = evaluate_precomputed(pc, mod, in);
      auto ev0 = evaluate_precomputed(base, mod, in);
      std::printf("%6d %8d %9.3f %10.3f %10.3g %10.3g %8.1f%% %8zu %s\n", n,
                  k, pc.coverage, ev.coverage_observed, ev0.power, ev.power,
                  100.0 * (1.0 - ev.power / ev0.power), pc.predictor_gates,
                  ev.functionally_correct ? "" : "FUNC-MISMATCH!");
    }
  }
  std::printf("\nMulti-output precomputation ([16],[100]) — every output "
              "must be decided:\n");
  std::printf("%6s %8s %10s %10s %9s %10s %8s\n", "n", "subset",
              "coverage", "P(base)", "P(pre)", "saving", "func");
  for (int n : {6, 8}) {
    auto mod = netlist::comparator_module(n);  // outputs lt + eq
    for (int k = 2; k <= 4; k += 2) {
      std::vector<std::uint32_t> subset;
      for (int j = 0; j < k / 2; ++j) {
        subset.push_back(static_cast<std::uint32_t>(n - 1 - j));
        subset.push_back(static_cast<std::uint32_t>(2 * n - 1 - j));
      }
      auto pc = build_precomputed_multi(mod, subset, true);
      auto base = build_precomputed_multi(mod, subset, false);
      stats::Rng rng(3);
      auto in = sim::random_stream(2 * n, 3000, 0.5, rng);
      auto ev = evaluate_precomputed_multi(pc, mod, in);
      auto ev0 = evaluate_precomputed_multi(base, mod, in);
      std::printf("%6d %8d %9.3f %10.3g %10.3g %8.1f%% %8s\n", n,
                  static_cast<int>(subset.size()), pc.coverage, ev0.power,
                  ev.power, 100.0 * (1.0 - ev.power / ev0.power),
                  ev.functionally_correct ? "ok" : "FAIL");
    }
  }

  std::printf("\nAdversarial case (parity): no small subset predicts the "
              "output\n");
  auto par = netlist::parity_module(10);
  auto subset = select_precompute_inputs(par, 4);
  auto pc = build_precomputed(par, subset, true);
  std::printf("parity-10, subset 4: coverage = %.3f (paper: "
              "precomputation must be selective — some circuits offer no "
              "opportunity)\n", pc.coverage);
  std::printf("\n(paper claim shape: power drops when coverage is high and "
              "the predictors are small; savings grow with coverage)\n");
  return 0;
}
