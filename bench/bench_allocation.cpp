// E14 — Low-power resource allocation (Section III-E, Raghunathan-Jha [65],
// Chang-Pedram [64]).
//
// Paper: weighting the compatibility graph with W = Wc * (1 - Ws), where Ws
// is the observed switching between candidate share-partners, yields
// register/module bindings 5-33% lower in switching than activity-blind
// allocation at a comparable resource count.

#include <cstdio>

#include "cdfg/generators.hpp"
#include "core/allocation.hpp"
#include "stats/rng.hpp"

namespace {

using namespace hlp;

cdfg::DataTrace correlated_trace(const cdfg::Cdfg& g, std::uint64_t seed,
                                 std::size_t iters) {
  stats::Rng rng(seed);
  std::vector<std::vector<std::int64_t>> inputs;
  int n_inputs = 0;
  for (cdfg::OpId i = 0; i < g.size(); ++i)
    if (g.op(i).kind == cdfg::OpKind::Input) ++n_inputs;
  for (int i = 0; i < n_inputs; ++i) {
    std::vector<std::int64_t> vs;
    std::int64_t v = rng.uniform_int(0, 255);
    for (std::size_t t = 0; t < iters; ++t) {
      v = (v + rng.uniform_int(-2, 2)) & 0xFF;
      vs.push_back(v);
    }
    inputs.push_back(vs);
  }
  return cdfg::simulate_cdfg(g, inputs);
}

}  // namespace

int main() {
  using namespace hlp::core;
  using hlp::cdfg::OpKind;

  std::printf("E14 — power-aware vs activity-blind binding (correlated "
              "data streams)\n\n");
  std::printf("%-12s %5s | %8s %10s | %8s %10s | %8s\n", "design", "kind",
              "regs", "reg-sw", "regs'", "reg-sw'", "saving");

  double total_blind = 0.0, total_aware = 0.0;
  for (int taps : {6, 8, 12, 16}) {
    auto g = hlp::cdfg::fir_cdfg(taps);
    std::map<OpKind, int> limits{{OpKind::Mul, 2}, {OpKind::Add, 2}};
    auto s = hlp::cdfg::list_schedule(g, limits);
    auto tr = correlated_trace(g, 77 + static_cast<std::uint64_t>(taps), 400);
    auto blind = bind_registers(g, s, tr, false);
    auto aware = bind_registers(g, s, tr, true);
    total_blind += blind.switching;
    total_aware += aware.switching;
    std::printf("fir-%-8d %5s | %8d %10.2f | %8d %10.2f | %6.1f%%\n", taps,
                "reg", blind.resources, blind.switching, aware.resources,
                aware.switching,
                100.0 * (1.0 - aware.switching / blind.switching));
  }
  std::printf("aggregate register-switching saving: %.1f%% "
              "(paper: 5-33%%)\n\n",
              100.0 * (1.0 - total_aware / total_blind));

  std::printf("Functional-unit binding (operand switching at shared "
              "units):\n");
  std::printf("%-12s | %6s %10s | %6s %10s | %8s\n", "design", "FUs",
              "fu-sw", "FUs'", "fu-sw'", "saving");
  for (int taps : {6, 8, 12}) {
    auto g = hlp::cdfg::fir_cdfg(taps);
    std::map<OpKind, int> limits{{OpKind::Mul, 2}, {OpKind::Add, 2}};
    auto s = hlp::cdfg::list_schedule(g, limits);
    auto tr = correlated_trace(g, 11 + static_cast<std::uint64_t>(taps), 400);
    auto blind = bind_functional_units(g, s, tr, false);
    auto aware = bind_functional_units(g, s, tr, true);
    std::printf("fir-%-8d | %6d %10.2f | %6d %10.2f | %6.1f%%\n", taps,
                blind.resources, blind.switching, aware.resources,
                aware.switching,
                100.0 * (1.0 - aware.switching / blind.switching));
  }
  std::printf("\n(paper claim shape: exploiting data correlation in the "
              "binding cuts input switching at a near-minimal resource "
              "count)\n");
  return 0;
}
