// E11 — RT-level power macro-modeling (Section II-C1).
//
// Paper: macro-model forms trade accuracy for evaluation cost — PFA [39]
// (constant) < dual-bit-type [40] < bitwise < input-output < 3D table [41]
// < statistically-selected cycle-accurate models [44],[45]. With ~8
// selected variables the typical error is 5-10% (average power) and
// 10-20% (cycle power).

#include <cstdio>

#include "core/macromodel.hpp"
#include "sim/streams.hpp"

int main() {
  using namespace hlp;
  using namespace hlp::core;

  struct ModCase {
    const char* name;
    netlist::Module mod;
  };
  std::vector<ModCase> mods;
  mods.push_back({"adder-8", netlist::adder_module(8)});
  mods.push_back({"mult-4", netlist::multiplier_module(4)});
  mods.push_back({"alu-6", netlist::alu_module(6)});
  mods.push_back({"parity-12", netlist::parity_module(12)});

  std::printf("E11 — macro-model accuracy (train p=0.5 random, eval "
              "gaussian-walk data; errors vs gate level)\n\n");
  std::printf("%-10s | %-7s | %16s | %16s | %16s | %16s | %16s\n", "module",
              "", "pfa", "in-out", "dual-bit", "3d-table", "selected(8)");
  std::printf("%-10s | %-7s | %7s %8s | %7s %8s | %7s %8s | %7s %8s | %7s "
              "%8s\n", "", "", "avg", "cycle", "avg", "cycle", "avg",
              "cycle", "avg", "cycle", "avg", "cycle");

  for (auto& mc : mods) {
    int n_in = mc.mod.total_input_bits();
    stats::Rng rng(3);
    auto train_in = sim::random_stream(n_in, 4000, 0.5, rng);
    // Eval on realistic (correlated word) data.
    int half = n_in / 2;
    auto a = sim::gaussian_walk_stream(half, 4000, 0.95, 0.25, rng);
    auto b = sim::gaussian_walk_stream(n_in - half, 4000, 0.95, 0.25, rng);
    auto eval_in = sim::zip_streams(a, b);

    auto chr_train = characterize(mc.mod, train_in);
    auto chr_eval = characterize(mc.mod, eval_in);

    PfaModel pfa;
    pfa.fit(chr_train);
    InputOutputModel io;
    io.fit(chr_train);
    DualBitModel db;
    std::vector<int> widths{half, n_in - half};
    db.fit(chr_train, widths);
    Table3dModel tbl(5);
    tbl.fit(chr_train);
    SelectedModel sel;
    sel.fit(chr_train, 8);

    auto eval_model = [&](auto&& fn) {
      std::vector<double> pred;
      for (std::size_t t = 0; t < chr_eval.transitions(); ++t)
        pred.push_back(fn(t));
      return evaluate_predictions(pred, chr_eval.energy);
    };
    auto e_pfa = eval_model([&](std::size_t) { return pfa.predict(); });
    auto e_io = eval_model([&](std::size_t t) {
      return io.predict_cycle(chr_eval.in_activity[t],
                              chr_eval.out_activity[t]);
    });
    auto e_db = eval_model([&](std::size_t t) {
      return db.predict_cycle(chr_eval.prev_word[t], chr_eval.cur_word[t]);
    });
    auto e_tbl = eval_model([&](std::size_t t) {
      return tbl.predict_cycle(chr_eval.in_prob[t], chr_eval.in_activity[t],
                               chr_eval.out_activity[t]);
    });
    auto e_sel =
        eval_model([&](std::size_t t) { return sel.predict_cycle(chr_eval, t); });

    auto pct = [](double v) { return 100.0 * v; };
    std::printf("%-10s | sign=%-2d | %6.1f%% %7.1f%% | %6.1f%% %7.1f%% | "
                "%6.1f%% %7.1f%% | %6.1f%% %7.1f%% | %6.1f%% %7.1f%%\n",
                mc.name, db.sign_bits(), pct(e_pfa.avg_power_error),
                pct(e_pfa.cycle_mean_abs_error), pct(e_io.avg_power_error),
                pct(e_io.cycle_mean_abs_error), pct(e_db.avg_power_error),
                pct(e_db.cycle_mean_abs_error), pct(e_tbl.avg_power_error),
                pct(e_tbl.cycle_mean_abs_error), pct(e_sel.avg_power_error),
                pct(e_sel.cycle_mean_abs_error));
  }
  std::printf("\n(paper: activity-sensitive forms dominate PFA; ~8-variable "
              "selected models reach 5-10%% avg / 10-20%% cycle error)\n");

  // Cluster-based (Mehta [43]) and combined dual-bit+IO cycle models.
  std::printf("\nCluster model [43] vs 3D-table on a mode-changing circuit "
              "(mux tree, random data):\n");
  {
    auto mod = netlist::mux_tree_module(3);
    stats::Rng rng(7);
    auto chr = characterize(
        mod, sim::random_stream(mod.total_input_bits(), 6000, 0.5, rng));
    ClusterModel cm(8);
    cm.fit(chr);
    Table3dModel tbl(5);
    tbl.fit(chr);
    std::vector<double> pc, pt;
    for (std::size_t t = 0; t < chr.transitions(); ++t) {
      pc.push_back(cm.predict_cycle(chr.prev_word[t], chr.cur_word[t],
                                    chr.n_in));
      pt.push_back(tbl.predict_cycle(chr.in_prob[t], chr.in_activity[t],
                                     chr.out_activity[t]));
    }
    auto ec = evaluate_predictions(pc, chr.energy);
    auto et = evaluate_predictions(pt, chr.energy);
    std::printf("  cluster(%zu clusters): cycle err %.1f%%; 3d-table: "
                "%.1f%% — the select lines are the paper's "
                "\"mode-changing bits\"\n",
                cm.clusters(), 100.0 * ec.cycle_mean_abs_error,
                100.0 * et.cycle_mean_abs_error);
  }

  // Characterization-free analytical model (Benini et al. [23]): built from
  // the netlist structure alone, no training simulation.
  std::printf("\nCharacterization-free analytical model [23] vs fitted "
              "bitwise model (random eval data):\n");
  std::printf("%-10s %14s %14s\n", "module", "analytic avg", "fitted avg");
  for (auto& mc : mods) {
    int n_in = mc.mod.total_input_bits();
    stats::Rng rng(13);
    auto chr = characterize(mc.mod, sim::random_stream(n_in, 3000, 0.5, rng));
    AnalyticBitwiseModel am;
    am.build(mc.mod);
    BitwiseModel bw;
    bw.fit(chr);
    std::vector<double> pa, pf;
    for (std::size_t t = 0; t < chr.transitions(); ++t) {
      pa.push_back(am.predict_cycle(chr.pin_toggle[t]));
      pf.push_back(bw.predict_cycle(chr.pin_toggle[t]));
    }
    auto ea = evaluate_predictions(pa, chr.energy);
    auto ef = evaluate_predictions(pf, chr.energy);
    std::printf("%-10s %13.1f%% %13.1f%%\n", mc.name,
                100.0 * ea.avg_power_error, 100.0 * ef.avg_power_error);
  }
  std::printf("(the analytical model costs no characterization runs — the "
              "paper's answer for soft macros — at reduced accuracy)\n");

  // In-distribution check: selected model on held-out random data.
  std::printf("\nSelected-model error on held-out in-distribution data:\n");
  for (auto& mc : mods) {
    int n_in = mc.mod.total_input_bits();
    stats::Rng rng(17);
    auto chr_train =
        characterize(mc.mod, sim::random_stream(n_in, 4000, 0.5, rng));
    auto chr_test =
        characterize(mc.mod, sim::random_stream(n_in, 4000, 0.5, rng));
    SelectedModel sel;
    sel.fit(chr_train, 8);
    std::vector<double> pred;
    for (std::size_t t = 0; t < chr_test.transitions(); ++t)
      pred.push_back(sel.predict_cycle(chr_test, t));
    auto e = evaluate_predictions(pred, chr_test.energy);
    std::printf("  %-10s avg %5.1f%%  cycle %5.1f%%  (%zu vars)\n", mc.name,
                100.0 * e.avg_power_error, 100.0 * e.cycle_mean_abs_error,
                sel.num_selected());
  }
  return 0;
}
