// E-SERVE — Cost and benefit of the estimation service (src/serve).
//
// Two questions decide whether serving estimates through a daemon makes
// sense at all:
//
//  1. Cold vs hot: how much does the content-addressed result cache buy on
//     a repeated request? Cold = distinct cache keys (every request runs
//     the symbolic kernel); hot = one key asked again and again. The
//     acceptance bar is hot >= 5x cold throughput for symbolic adder:16 —
//     in practice the gap is orders of magnitude, since a hit is a map
//     probe plus one TCP round trip.
//
//  2. Concurrency: requests/sec for a hot workload at 1/2/4/8 client
//     connections. The cache is sharded and the server is
//     thread-per-connection, so hot throughput should scale until
//     loopback syscalls dominate.
//
// Results go to BENCH_serve.json (cwd, or argv[1] after the
// google-benchmark flags).

#include <benchmark/benchmark.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"

namespace {

using namespace hlp;
using clock_type = std::chrono::steady_clock;

/// Minimal blocking line client (loopback only).
class LineClient {
 public:
  bool connect_to(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    return ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) ==
           0;
  }
  ~LineClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool roundtrip(const std::string& line, std::string& resp) {
    std::string framed = line;
    framed.push_back('\n');
    const char* p = framed.data();
    std::size_t left = framed.size();
    while (left > 0) {
      const ssize_t n = ::send(fd_, p, left, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      p += n;
      left -= static_cast<std::size_t>(n);
    }
    while (true) {
      const std::size_t nl = buf_.find('\n');
      if (nl != std::string::npos) {
        resp = buf_.substr(0, nl);
        buf_.erase(0, nl + 1);
        return true;
      }
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        return false;
      }
      buf_.append(chunk, static_cast<std::size_t>(n));
    }
  }

 private:
  int fd_ = -1;
  std::string buf_;
};

std::string symbolic_line(std::uint64_t seed) {
  serve::Request rq;
  rq.op = serve::Op::Estimate;
  rq.kind = jobs::JobKind::Symbolic;
  rq.design = "adder:16";
  rq.has_seed = true;
  rq.seed = seed;
  return rq.serialize();
}

/// In-process hot path (no sockets): what one cached handle_line costs.
void BM_HotHandleLine(benchmark::State& st) {
  serve::Service service;
  const std::string line = symbolic_line(1);
  benchmark::DoNotOptimize(service.handle_line(line));  // warm the cache
  for (auto _ : st) {
    benchmark::DoNotOptimize(service.handle_line(line));
  }
}

void write_report(const std::string& path) {
  std::printf("\n--- BENCH_serve report ---\n");

  serve::ServerOptions sopts;
  serve::Server server(sopts);
  server.start();
  const std::uint16_t port = server.port();

  // --- Cold vs hot latency over TCP, symbolic adder:16 -------------------
  // Distinct seeds give distinct cache keys, so every cold request runs
  // the full BDD kernel; the hot line reuses one key.
  constexpr int kColdReps = 3;
  double cold_total = 0.0;
  {
    LineClient c;
    if (!c.connect_to(port)) {
      std::fprintf(stderr, "bench_serve: connect failed\n");
      return;
    }
    std::string resp;
    for (int i = 0; i < kColdReps; ++i) {
      const auto t0 = clock_type::now();
      if (!c.roundtrip(symbolic_line(1000 + static_cast<std::uint64_t>(i)),
                       resp)) {
        std::fprintf(stderr, "bench_serve: cold request failed\n");
        return;
      }
      cold_total +=
          std::chrono::duration<double>(clock_type::now() - t0).count();
    }
  }
  const double cold_latency = cold_total / kColdReps;
  const double cold_rps = 1.0 / cold_latency;

  constexpr int kHotReps = 2000;
  double hot_total = 0.0;
  {
    LineClient c;
    if (!c.connect_to(port)) return;
    std::string resp;
    c.roundtrip(symbolic_line(1), resp);  // fill the cache line
    const auto t0 = clock_type::now();
    for (int i = 0; i < kHotReps; ++i) {
      if (!c.roundtrip(symbolic_line(1), resp)) return;
    }
    hot_total = std::chrono::duration<double>(clock_type::now() - t0).count();
  }
  const double hot_latency = hot_total / kHotReps;
  const double hot_rps = 1.0 / hot_latency;
  const double ratio = hot_rps / cold_rps;

  std::printf("cold (symbolic adder:16, unique keys): %8.2f ms/req "
              "(%6.2f req/s)\n",
              cold_latency * 1e3, cold_rps);
  std::printf("hot  (same key, cache hit):            %8.4f ms/req "
              "(%6.0f req/s)\n",
              hot_latency * 1e3, hot_rps);
  std::printf("hot/cold throughput ratio: %.0fx %s\n", ratio,
              ratio >= 5.0 ? "(>= 5x bar met)" : "(BELOW 5x bar)");

  // --- Hot throughput vs connection count --------------------------------
  constexpr int kPerConn = 500;
  benchjson::Array scaling;
  double serial_rps = 0.0;
  std::printf("hot throughput vs connections (%d req/conn):\n", kPerConn);
  for (int conns : {1, 2, 4, 8}) {
    std::vector<std::thread> threads;
    std::atomic<int> failures{0};
    const auto t0 = clock_type::now();
    for (int t = 0; t < conns; ++t) {
      threads.emplace_back([&] {
        LineClient c;
        if (!c.connect_to(port)) {
          failures.fetch_add(1);
          return;
        }
        std::string resp;
        for (int i = 0; i < kPerConn; ++i) {
          if (!c.roundtrip(symbolic_line(1), resp)) {
            failures.fetch_add(1);
            return;
          }
        }
      });
    }
    for (auto& th : threads) th.join();
    const double secs =
        std::chrono::duration<double>(clock_type::now() - t0).count();
    const double rps = failures.load() == 0
                           ? static_cast<double>(conns * kPerConn) / secs
                           : 0.0;
    if (conns == 1) serial_rps = rps;
    std::printf("  connections %d: %8.0f req/s (speedup %.2fx)\n", conns, rps,
                serial_rps > 0.0 ? rps / serial_rps : 0.0);
    scaling.push_back(benchjson::Object{
        {"connections", conns},
        {"requests_per_sec", rps},
        {"speedup", serial_rps > 0.0 ? rps / serial_rps : 0.0},
    });
  }

  const serve::ServiceMetrics m = server.service().metrics();
  server.shutdown();

  benchjson::Object root{
      {"bench", "serve"},
      {"design", "adder:16"},
      {"kind", "symbolic"},
      {"cold",
       benchjson::Object{
           {"reps", kColdReps},
           {"latency_seconds", cold_latency},
           {"requests_per_sec", cold_rps},
       }},
      {"hot",
       benchjson::Object{
           {"reps", kHotReps},
           {"latency_seconds", hot_latency},
           {"requests_per_sec", hot_rps},
       }},
      {"hot_over_cold_throughput", ratio},
      {"meets_5x_bar", ratio >= 5.0},
      {"connection_scaling", std::move(scaling)},
      {"server_metrics",
       benchjson::Object{
           {"hits", m.hits},
           {"misses", m.misses},
           {"coalesced", m.coalesced},
           {"shed", m.shed},
       }},
  };
  if (benchjson::save(path, root))
    std::printf("\nwrote %s\n", path.c_str());
  else
    std::printf("\nfailed to write %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RegisterBenchmark("BM_HotHandleLine", BM_HotHandleLine)
      ->Unit(benchmark::kMicrosecond);
  benchmark::RunSpecifiedBenchmarks();
  const char* path = "BENCH_serve.json";
  if (argc > 1 && argv[1][0] != '-') path = argv[1];
  write_report(path);
  return 0;
}
