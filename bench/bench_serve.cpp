// E-SERVE — Cost and benefit of the estimation service (src/serve).
//
// Two questions decide whether serving estimates through a daemon makes
// sense at all:
//
//  1. Cold vs hot: how much does the content-addressed result cache buy on
//     a repeated request? Cold = distinct cache keys (every request runs
//     the symbolic kernel); hot = one key asked again and again. The
//     acceptance bar is hot >= 5x cold throughput for symbolic adder:16 —
//     in practice the gap is orders of magnitude, since a hit is a map
//     probe plus one TCP round trip.
//
//  2. Concurrency: requests/sec for a hot workload at 1/2/4/8 client
//     connections. The cache is sharded and the server is
//     thread-per-connection, so hot throughput should scale until
//     loopback syscalls dominate.
//
// Two more decide whether the fault-tolerance layer earns its keep:
//
//  3. Warm restart: with --cache-file persistence, a restarted server's
//     first request for a previously-cached design must be a cache hit —
//     byte-identical to the pre-restart response and orders of magnitude
//     faster than the cold computation it replaces.
//
//  4. Overload: at 4x the worker pool's closed-loop capacity, admission
//     control must shed the excess with a retry-after-ms hint while the
//     p99 latency of *admitted* requests stays within 2x of the unloaded
//     p99 (bounded queueing, not collapse).
//
// Results go to BENCH_serve.json (cwd, or argv[1] after the
// google-benchmark flags).

#include <benchmark/benchmark.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.hpp"
#include "exec/fi.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"

namespace {

using namespace hlp;
using clock_type = std::chrono::steady_clock;

/// Minimal blocking line client (loopback only).
class LineClient {
 public:
  bool connect_to(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    return ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) ==
           0;
  }
  ~LineClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool roundtrip(const std::string& line, std::string& resp) {
    std::string framed = line;
    framed.push_back('\n');
    const char* p = framed.data();
    std::size_t left = framed.size();
    while (left > 0) {
      const ssize_t n = ::send(fd_, p, left, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      p += n;
      left -= static_cast<std::size_t>(n);
    }
    while (true) {
      const std::size_t nl = buf_.find('\n');
      if (nl != std::string::npos) {
        resp = buf_.substr(0, nl);
        buf_.erase(0, nl + 1);
        return true;
      }
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        return false;
      }
      buf_.append(chunk, static_cast<std::size_t>(n));
    }
  }

 private:
  int fd_ = -1;
  std::string buf_;
};

std::string symbolic_line(std::uint64_t seed) {
  serve::Request rq;
  rq.op = serve::Op::Estimate;
  rq.kind = jobs::JobKind::Symbolic;
  rq.design = "adder:16";
  rq.has_seed = true;
  rq.seed = seed;
  return rq.serialize();
}

/// In-process hot path (no sockets): what one cached handle_line costs.
void BM_HotHandleLine(benchmark::State& st) {
  serve::Service service;
  const std::string line = symbolic_line(1);
  benchmark::DoNotOptimize(service.handle_line(line));  // warm the cache
  for (auto _ : st) {
    benchmark::DoNotOptimize(service.handle_line(line));
  }
}

void write_report(const std::string& path) {
  std::printf("\n--- BENCH_serve report ---\n");

  serve::ServerOptions sopts;
  serve::Server server(sopts);
  server.start();
  const std::uint16_t port = server.port();

  // --- Cold vs hot latency over TCP, symbolic adder:16 -------------------
  // Distinct seeds give distinct cache keys, so every cold request runs
  // the full BDD kernel; the hot line reuses one key.
  constexpr int kColdReps = 3;
  double cold_total = 0.0;
  {
    LineClient c;
    if (!c.connect_to(port)) {
      std::fprintf(stderr, "bench_serve: connect failed\n");
      return;
    }
    std::string resp;
    for (int i = 0; i < kColdReps; ++i) {
      const auto t0 = clock_type::now();
      if (!c.roundtrip(symbolic_line(1000 + static_cast<std::uint64_t>(i)),
                       resp)) {
        std::fprintf(stderr, "bench_serve: cold request failed\n");
        return;
      }
      cold_total +=
          std::chrono::duration<double>(clock_type::now() - t0).count();
    }
  }
  const double cold_latency = cold_total / kColdReps;
  const double cold_rps = 1.0 / cold_latency;

  constexpr int kHotReps = 2000;
  double hot_total = 0.0;
  {
    LineClient c;
    if (!c.connect_to(port)) return;
    std::string resp;
    c.roundtrip(symbolic_line(1), resp);  // fill the cache line
    const auto t0 = clock_type::now();
    for (int i = 0; i < kHotReps; ++i) {
      if (!c.roundtrip(symbolic_line(1), resp)) return;
    }
    hot_total = std::chrono::duration<double>(clock_type::now() - t0).count();
  }
  const double hot_latency = hot_total / kHotReps;
  const double hot_rps = 1.0 / hot_latency;
  const double ratio = hot_rps / cold_rps;

  std::printf("cold (symbolic adder:16, unique keys): %8.2f ms/req "
              "(%6.2f req/s)\n",
              cold_latency * 1e3, cold_rps);
  std::printf("hot  (same key, cache hit):            %8.4f ms/req "
              "(%6.0f req/s)\n",
              hot_latency * 1e3, hot_rps);
  std::printf("hot/cold throughput ratio: %.0fx %s\n", ratio,
              ratio >= 5.0 ? "(>= 5x bar met)" : "(BELOW 5x bar)");

  // --- Hot throughput vs connection count --------------------------------
  constexpr int kPerConn = 500;
  benchjson::Array scaling;
  double serial_rps = 0.0;
  std::printf("hot throughput vs connections (%d req/conn):\n", kPerConn);
  for (int conns : {1, 2, 4, 8}) {
    std::vector<std::thread> threads;
    std::atomic<int> failures{0};
    const auto t0 = clock_type::now();
    for (int t = 0; t < conns; ++t) {
      threads.emplace_back([&] {
        LineClient c;
        if (!c.connect_to(port)) {
          failures.fetch_add(1);
          return;
        }
        std::string resp;
        for (int i = 0; i < kPerConn; ++i) {
          if (!c.roundtrip(symbolic_line(1), resp)) {
            failures.fetch_add(1);
            return;
          }
        }
      });
    }
    for (auto& th : threads) th.join();
    const double secs =
        std::chrono::duration<double>(clock_type::now() - t0).count();
    const double rps = failures.load() == 0
                           ? static_cast<double>(conns * kPerConn) / secs
                           : 0.0;
    if (conns == 1) serial_rps = rps;
    std::printf("  connections %d: %8.0f req/s (speedup %.2fx)\n", conns, rps,
                serial_rps > 0.0 ? rps / serial_rps : 0.0);
    scaling.push_back(benchjson::Object{
        {"connections", conns},
        {"requests_per_sec", rps},
        {"speedup", serial_rps > 0.0 ? rps / serial_rps : 0.0},
    });
  }

  const serve::ServiceMetrics m = server.service().metrics();
  server.shutdown();

  // --- Warm restart via the persistent segment file ----------------------
  // Cold-compute once with --cache-file persistence, tear the server down,
  // start a fresh one on the same file: the first request must hit warm.
  const std::string seg =
      "/tmp/hlp_bench_seg_" + std::to_string(::getpid()) + ".bin";
  std::remove(seg.c_str());
  const std::string warm_line = symbolic_line(4242);
  double warm_cold_s = 0.0;
  double warm_first_s = 0.0;
  bool warm_identical = false;
  std::uint64_t warm_entries = 0;
  {
    serve::ServerOptions cold_opts;
    cold_opts.service.cache_path = seg;
    serve::Server cold_srv(cold_opts);
    cold_srv.start();
    LineClient c;
    std::string resp;
    if (c.connect_to(cold_srv.port())) {
      const auto t0 = clock_type::now();
      c.roundtrip(warm_line, resp);
      warm_cold_s =
          std::chrono::duration<double>(clock_type::now() - t0).count();
    }
    cold_srv.shutdown();

    serve::ServerOptions warm_opts;
    warm_opts.service.cache_path = seg;
    serve::Server warm_srv(warm_opts);
    warm_srv.start();
    warm_entries = warm_srv.service().metrics().warm_entries;
    LineClient w;
    std::string warm_resp;
    if (w.connect_to(warm_srv.port())) {
      const auto t0 = clock_type::now();
      w.roundtrip(warm_line, warm_resp);
      warm_first_s =
          std::chrono::duration<double>(clock_type::now() - t0).count();
    }
    warm_identical = !warm_resp.empty() && warm_resp == resp;
    warm_srv.shutdown();
  }
  std::remove(seg.c_str());
  std::printf("warm restart (segment file): cold %8.2f ms -> first warm "
              "request %8.4f ms, byte-identical: %s\n",
              warm_cold_s * 1e3, warm_first_s * 1e3,
              warm_identical ? "yes" : "NO");

  // --- Overload: 4x the pool's closed-loop capacity ----------------------
  // Paced fake kernel (fixed service time) so the row measures admission
  // control, not kernel variance. 16 closed-loop connections against 4
  // workers = 4x overload; queue_limit bounds the latency of whatever is
  // admitted and everything else sheds with a retry hint.
  constexpr double kServiceSeconds = 0.005;
  constexpr int kWorkers = 4;
  constexpr int kOverloadConns = 16;
  constexpr int kOverloadPerConn = 120;
  serve::ServerOptions oopts;
  oopts.service.workers = kWorkers;
  oopts.service.queue_limit = 2;
  oopts.service.executor = [&](const jobs::KernelRequest& krq,
                               const exec::Budget&) {
    std::this_thread::sleep_for(
        std::chrono::duration<double>(kServiceSeconds));
    jobs::AttemptOutcome ao;
    ao.ok = true;
    ao.out.value = static_cast<double>(krq.seed % 97);
    ao.out.detail = "paced";
    return ao;
  };
  serve::Server oserver(oopts);
  oserver.start();
  const std::uint16_t oport = oserver.port();

  auto nocache_line = [](std::uint64_t seed) {
    serve::Request rq;
    rq.op = serve::Op::Estimate;
    rq.kind = jobs::JobKind::Symbolic;
    rq.design = "adder:16";
    rq.has_seed = true;
    rq.seed = seed;
    rq.use_cache = false;
    return rq.serialize();
  };
  auto p99_of = [](std::vector<double>& xs) {
    if (xs.empty()) return 0.0;
    std::sort(xs.begin(), xs.end());
    return xs[std::min(xs.size() - 1,
                       static_cast<std::size_t>(
                           static_cast<double>(xs.size()) * 0.99))];
  };

  std::vector<double> unloaded;
  {
    LineClient c;
    std::string resp;
    if (c.connect_to(oport)) {
      for (int i = 0; i < 200; ++i) {
        const auto t0 = clock_type::now();
        if (!c.roundtrip(nocache_line(static_cast<std::uint64_t>(i)), resp))
          break;
        unloaded.push_back(
            std::chrono::duration<double>(clock_type::now() - t0).count());
      }
    }
  }
  const double p99_unloaded = p99_of(unloaded);

  std::vector<std::vector<double>> admitted_lat(kOverloadConns);
  std::atomic<std::uint64_t> shed_count{0};
  std::atomic<std::uint64_t> admitted_count{0};
  std::atomic<std::uint64_t> hints_present{0};
  {
    std::vector<std::thread> threads;
    for (int t = 0; t < kOverloadConns; ++t) {
      threads.emplace_back([&, t] {
        LineClient c;
        if (!c.connect_to(oport)) return;
        std::string resp;
        for (int i = 0; i < kOverloadPerConn; ++i) {
          const std::uint64_t seed =
              1000000ull + static_cast<std::uint64_t>(t) * 100000ull +
              static_cast<std::uint64_t>(i);
          const auto t0 = clock_type::now();
          if (!c.roundtrip(nocache_line(seed), resp)) return;
          const double secs =
              std::chrono::duration<double>(clock_type::now() - t0).count();
          serve::ResponseView v;
          if (!serve::parse_response(resp, v)) continue;
          if (!v.ok && v.error == "shed") {
            shed_count.fetch_add(1);
            if (v.retry_after_ms > 0) hints_present.fetch_add(1);
          } else if (v.ok) {
            admitted_count.fetch_add(1);
            admitted_lat[static_cast<std::size_t>(t)].push_back(secs);
          }
        }
      });
    }
    for (auto& th : threads) th.join();
  }
  oserver.shutdown();

  std::vector<double> admitted_all;
  for (auto& v : admitted_lat)
    admitted_all.insert(admitted_all.end(), v.begin(), v.end());
  const double p99_admitted = p99_of(admitted_all);
  const double total_offered =
      static_cast<double>(kOverloadConns) * kOverloadPerConn;
  const double shed_rate =
      static_cast<double>(shed_count.load()) / total_offered;
  const double p99_ratio =
      p99_unloaded > 0.0 ? p99_admitted / p99_unloaded : 0.0;
  std::printf("overload %dx (%d conns vs %d workers): shed %.0f%% with "
              "retry-after on %llu/%llu, admitted p99 %.2f ms vs unloaded "
              "p99 %.2f ms (%.2fx %s)\n",
              kOverloadConns / kWorkers, kOverloadConns, kWorkers,
              shed_rate * 100.0,
              static_cast<unsigned long long>(hints_present.load()),
              static_cast<unsigned long long>(shed_count.load()),
              p99_admitted * 1e3, p99_unloaded * 1e3, p99_ratio,
              p99_ratio <= 2.0 ? "(<= 2x bar met)" : "(ABOVE 2x bar)");

  // --- Isolated cold: what the fork-per-request sandbox costs ------------
  // Same symbolic kernel, in-process vs forked into a single-request child
  // (--isolate all). The bar: isolated cold p50 <= 1.3x in-process cold
  // p50 (fork + pipe framing is noise next to a BDD build), and the hot
  // path is unchanged — a cache hit never forks.
  auto median_of = [](std::vector<double>& xs) {
    if (xs.empty()) return 0.0;
    std::sort(xs.begin(), xs.end());
    return xs[xs.size() / 2];
  };
  auto cold_and_hot_p50 = [&](serve::IsolateMode mode, std::uint64_t base,
                              double& hot_p50) {
    serve::ServerOptions iopts;
    iopts.service.isolate = mode;
    serve::Server srv(iopts);
    srv.start();
    std::vector<double> lat, hot;
    {
      LineClient c;
      std::string resp;
      if (c.connect_to(srv.port())) {
        for (int i = 0; i < 9; ++i) {  // unique seeds: every request cold
          const auto t0 = clock_type::now();
          if (!c.roundtrip(symbolic_line(base + static_cast<std::uint64_t>(i)),
                           resp))
            break;
          lat.push_back(
              std::chrono::duration<double>(clock_type::now() - t0).count());
        }
        c.roundtrip(symbolic_line(base + 5000), resp);  // warm one key
        for (int i = 0; i < 400; ++i) {
          const auto t0 = clock_type::now();
          if (!c.roundtrip(symbolic_line(base + 5000), resp)) break;
          hot.push_back(
              std::chrono::duration<double>(clock_type::now() - t0).count());
        }
      }
    }
    srv.shutdown();
    hot_p50 = median_of(hot);
    return median_of(lat);
  };
  double hot_p50_inproc = 0.0, hot_p50_isolated = 0.0;
  const double cold_p50_inproc =
      cold_and_hot_p50(serve::IsolateMode::Off, 70000, hot_p50_inproc);
  const double cold_p50_isolated =
      cold_and_hot_p50(serve::IsolateMode::All, 80000, hot_p50_isolated);
  const double isolate_overhead =
      cold_p50_inproc > 0.0 ? cold_p50_isolated / cold_p50_inproc : 0.0;
  std::printf("isolated cold p50: in-process %8.2f ms vs forked child "
              "%8.2f ms (%.2fx %s); hot p50 %8.4f ms vs %8.4f ms\n",
              cold_p50_inproc * 1e3, cold_p50_isolated * 1e3, isolate_overhead,
              isolate_overhead > 0.0 && isolate_overhead <= 1.3
                  ? "(<= 1.3x bar met)"
                  : "(ABOVE 1.3x bar)",
              hot_p50_inproc * 1e3, hot_p50_isolated * 1e3);

  // --- Crash storm: throughput while children die --------------------------
  // One injected child fault per round (segv / OOM kill / wedge in
  // rotation), four concurrent requests per round against an isolate=all
  // service. The row records that every request got a typed answer, every
  // fault became a typed crash report, and the worker pool ends at full
  // strength — the survival proof as a benchmark.
  constexpr int kStormRounds = 50;
  constexpr int kStormThreads = 4;
  serve::ServiceOptions copts;
  copts.workers = 4;
  copts.isolate = serve::IsolateMode::All;
  copts.quarantine_threshold = 0;  // measure the sandbox, not the breaker
  copts.default_deadline_seconds = 0.1;
  copts.executor = [](const jobs::KernelRequest& krq, const exec::Budget&) {
    jobs::AttemptOutcome ao;
    ao.ok = true;
    ao.out.value = static_cast<double>(krq.seed % 97);
    ao.out.detail = "storm";
    return ao;
  };
  serve::Service storm_svc(copts);
  std::atomic<std::uint64_t> storm_typed{0};
  const auto storm_t0 = clock_type::now();
  for (int round = 0; round < kStormRounds; ++round) {
    fi::disarm_serve_faults();
    const fi::ServeFault fault = round % 3 == 0   ? fi::ServeFault::ChildSegv
                                 : round % 3 == 1 ? fi::ServeFault::ChildOom
                                                  : fi::ServeFault::ChildWedge;
    fi::arm_serve_fault(fault, static_cast<std::uint64_t>(round) % kStormThreads);
    std::vector<std::thread> threads;
    for (int t = 0; t < kStormThreads; ++t) {
      threads.emplace_back([&, round, t] {
        serve::Request rq;
        rq.op = serve::Op::Estimate;
        rq.kind = jobs::JobKind::Symbolic;
        rq.design = "adder:16";
        rq.has_seed = true;
        rq.seed = 900000ull + static_cast<std::uint64_t>(round) * 100 +
                  static_cast<std::uint64_t>(t);
        serve::ResponseView v;
        if (serve::parse_response(storm_svc.handle_line(rq.serialize()), v))
          storm_typed.fetch_add(1);
      });
    }
    for (auto& th : threads) th.join();
  }
  fi::disarm_serve_faults();
  const double storm_secs =
      std::chrono::duration<double>(clock_type::now() - storm_t0).count();
  // Wedge crash reports land at the wall kill, slightly after the waiter
  // gave up at the deadline; give the reaper a moment to finish.
  for (int i = 0; i < 500; ++i) {
    const serve::ServiceHealth sh = storm_svc.health();
    if (sh.child_crashes >= static_cast<std::uint64_t>(kStormRounds) &&
        sh.busy == 0)
      break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  const serve::ServiceHealth storm_health = storm_svc.health();
  const double storm_offered =
      static_cast<double>(kStormRounds) * kStormThreads;
  const double storm_rps = storm_secs > 0.0 ? storm_offered / storm_secs : 0.0;
  std::printf("crash storm (%d faulted rounds x %d conns): %.0f req/s, "
              "typed responses %llu/%.0f, child crashes %llu, live workers "
              "%d/%d\n",
              kStormRounds, kStormThreads, storm_rps,
              static_cast<unsigned long long>(storm_typed.load()),
              storm_offered,
              static_cast<unsigned long long>(storm_health.child_crashes),
              storm_health.live, copts.workers);

  benchjson::Object root{
      {"bench", "serve"},
      {"design", "adder:16"},
      {"kind", "symbolic"},
      {"cold",
       benchjson::Object{
           {"reps", kColdReps},
           {"latency_seconds", cold_latency},
           {"requests_per_sec", cold_rps},
       }},
      {"hot",
       benchjson::Object{
           {"reps", kHotReps},
           {"latency_seconds", hot_latency},
           {"requests_per_sec", hot_rps},
       }},
      {"hot_over_cold_throughput", ratio},
      {"meets_5x_bar", ratio >= 5.0},
      {"connection_scaling", std::move(scaling)},
      {"server_metrics",
       benchjson::Object{
           {"hits", m.hits},
           {"misses", m.misses},
           {"coalesced", m.coalesced},
           {"shed", m.shed},
       }},
      {"warm_restart",
       benchjson::Object{
           {"cold_first_request_seconds", warm_cold_s},
           {"warm_first_request_seconds", warm_first_s},
           {"byte_identical", warm_identical},
           {"warm_entries", warm_entries},
           {"speedup", warm_first_s > 0.0 ? warm_cold_s / warm_first_s : 0.0},
           {"warm_under_1ms", warm_first_s > 0.0 && warm_first_s < 1e-3},
       }},
      {"overload_4x",
       benchjson::Object{
           {"workers", kWorkers},
           {"queue_limit", 2},
           {"connections", kOverloadConns},
           {"service_seconds", kServiceSeconds},
           {"offered", total_offered},
           {"admitted", admitted_count.load()},
           {"shed", shed_count.load()},
           {"shed_rate", shed_rate},
           {"retry_after_hints", hints_present.load()},
           {"p99_unloaded_seconds", p99_unloaded},
           {"p99_admitted_seconds", p99_admitted},
           {"p99_admitted_over_unloaded", p99_ratio},
           {"meets_2x_bar", p99_ratio > 0.0 && p99_ratio <= 2.0},
       }},
      {"isolated_cold",
       benchjson::Object{
           {"in_process_p50_seconds", cold_p50_inproc},
           {"isolated_p50_seconds", cold_p50_isolated},
           {"overhead_ratio", isolate_overhead},
           {"meets_1p3x_bar",
            isolate_overhead > 0.0 && isolate_overhead <= 1.3},
           {"hot_p50_in_process_seconds", hot_p50_inproc},
           {"hot_p50_isolated_seconds", hot_p50_isolated},
       }},
      {"crash_storm",
       benchjson::Object{
           {"rounds", kStormRounds},
           {"connections", kStormThreads},
           {"offered", storm_offered},
           {"typed_responses", storm_typed.load()},
           {"requests_per_sec", storm_rps},
           {"child_crashes", storm_health.child_crashes},
           {"respawns", storm_health.respawns},
           {"live_workers", storm_health.live},
           {"all_responses_typed",
            storm_typed.load() == static_cast<std::uint64_t>(storm_offered)},
           {"capacity_restored", storm_health.live == copts.workers},
       }},
  };
  if (benchjson::save(path, root))
    std::printf("\nwrote %s\n", path.c_str());
  else
    std::printf("\nfailed to write %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RegisterBenchmark("BM_HotHandleLine", BM_HotHandleLine)
      ->Unit(benchmark::kMicrosecond);
  benchmark::RunSpecifiedBenchmarks();
  const char* path = "BENCH_serve.json";
  if (argc > 1 && argv[1][0] != '-') path = argv[1];
  write_report(path);
  return 0;
}
