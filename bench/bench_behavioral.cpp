// E5 — Figs. 4 and 5: algebraic transformation of polynomial evaluation.
//
// Paper: order-2 transformation cuts operations at equal critical path;
// order-3 transformation cuts operations but lengthens the critical path
// (4 -> 5), reducing the headroom for supply-voltage scaling.

#include <cstdio>

#include "cdfg/generators.hpp"
#include "core/behavioral_transform.hpp"
#include "core/scheduling_power.hpp"

int main() {
  using namespace hlp;
  using namespace hlp::core;

  OpEnergyModel energy;
  auto row = [&](const char* name, const cdfg::Cdfg& g, const char* claim) {
    auto m = cdfg_metrics(g);
    std::printf("%-26s %5d %5d %5d %8d   %-22s  E=%.0f\n", name, m.muls,
                m.adds, m.total_compute_ops, m.critical_path, claim,
                cdfg_energy(g, energy));
  };

  std::printf("E5 — polynomial evaluation structures (width 8)\n\n");
  std::printf("%-26s %5s %5s %5s %8s   %-22s\n", "structure", "mul", "add",
              "ops", "critpath", "paper claim");
  row("order-2 direct", cdfg::polynomial_direct(2), "2 add, 2 mul, CP 3");
  row("order-2 completed-square", polynomial_completed_square(),
      "2 add, 1 mul, CP 3");
  row("order-3 direct", cdfg::polynomial_direct(3), "3 add, 4 mul, CP 4");
  row("order-3 horner", cdfg::polynomial_horner(3), "(intermediate form)");
  row("order-3 preconditioned", polynomial_preconditioned_cubic(),
      "3 add, 2 mul, CP 5");

  std::printf("\nHigher orders (direct vs. Horner): operation count vs. "
              "critical path tradeoff\n");
  std::printf("%8s %10s %10s %10s %10s %10s %10s\n", "order", "dir-ops",
              "dir-cp", "dir-E", "hor-ops", "hor-cp", "hor-E");
  for (int order : {2, 3, 4, 6, 8, 12}) {
    auto d = cdfg_metrics(cdfg::polynomial_direct(order));
    auto h = cdfg_metrics(cdfg::polynomial_horner(order));
    std::printf("%8d %10d %10d %10.0f %10d %10d %10.0f\n", order,
                d.total_compute_ops, d.critical_path,
                cdfg_energy(cdfg::polynomial_direct(order), energy),
                h.total_compute_ops, h.critical_path,
                cdfg_energy(cdfg::polynomial_horner(order), energy));
  }
  std::printf("\n(the paper's point: fewer operations do not always mean "
              "a better design — the CP increase of the order-3 transform\n"
              " reduces the voltage-scaling headroom)\n");
  return 0;
}
