// E4 — System-level power management (Section III-B, Fig. 3).
//
// Paper claims (Srivastava et al. [58], Hwang-Wu [59]):
//  * predictive shutdown achieves power improvements as high as 38x with
//    ~3% performance loss on event-driven workloads;
//  * static timeout policies waste the timeout interval and are dominated;
//  * the maximum achievable improvement is 1 + T_I/T_A.

#include <cstdio>
#include <vector>

#include "core/shutdown.hpp"

int main() {
  using namespace hlp;
  using namespace hlp::core;

  DeviceParams dev;
  stats::Rng rng(42);
  auto w = session_workload(20000, rng);
  double busy = 0.0;
  for (auto& e : w) busy += e.active;

  std::printf("E4 — predictive system shutdown\n");
  std::printf("workload: %zu events, max theoretical improvement "
              "1+T_I/T_A = %.1fx, break-even idle = %.2f\n\n",
              w.size(), max_power_improvement(w), breakeven_idle(dev));

  std::vector<std::unique_ptr<ShutdownPolicy>> policies;
  policies.push_back(always_on_policy());
  policies.push_back(static_timeout_policy(1.0 * breakeven_idle(dev)));
  policies.push_back(static_timeout_policy(2.0 * breakeven_idle(dev)));
  policies.push_back(static_timeout_policy(10.0 * breakeven_idle(dev)));
  policies.push_back(regression_policy(dev));
  policies.push_back(threshold_policy(dev));
  policies.push_back(hwang_wu_policy(dev));
  policies.push_back(oracle_policy(w, dev));

  double p_on = 0.0;
  std::printf("%-26s %10s %10s %9s %9s %10s\n", "policy", "avg-power",
              "improve", "perfloss", "shutdwns", "delay");
  for (auto& p : policies) {
    auto r = simulate_policy(w, dev, *p);
    if (p->name() == "always-on") p_on = r.avg_power();
    std::printf("%-26s %10.4f %9.1fx %8.2f%% %9zu %10.1f\n",
                p->name().c_str(), r.avg_power(),
                p_on > 0 ? p_on / r.avg_power() : 1.0,
                100.0 * r.perf_loss(busy), r.shutdowns, r.delay_penalty);
  }
  std::printf("\n(paper: predictive policies approach the oracle; up to "
              "38x improvement at ~3%% perf. loss on X-server traces)\n");

  // Sensitivity: improvement vs. session idle-gap scale (the paper's 38x
  // arises when idle gaps dwarf the active bursts).
  std::printf("\nSensitivity of hwang-wu improvement to idle-gap scale:\n");
  std::printf("%12s %12s %12s\n", "gap-mean", "max(1+I/A)", "improve");
  for (double gap : {500.0, 2000.0, 8000.0, 32000.0}) {
    stats::Rng r2(7);
    auto w2 = session_workload(8000, r2, 10.0, 5.0, gap);
    auto on = always_on_policy();
    auto hw = hwang_wu_policy(dev);
    auto r_on = simulate_policy(w2, dev, *on);
    auto r_hw = simulate_policy(w2, dev, *hw);
    std::printf("%12.0f %11.1fx %11.1fx\n", gap, max_power_improvement(w2),
                r_on.avg_power() / r_hw.avg_power());
  }
  return 0;
}
