// E19 — Complexity-based power models (Section II-B2).
//
// Paper: circuit complexity measures predict optimized area/power —
// the gate-equivalent CES model [14], Nemani-Najm's prime-implicant
// "linear measure" [15] (regression of optimized area on C(f)), and the
// Landman-Rabaey controller model [17] fitted on synthesized FSMs.

#include <cmath>
#include <cstdio>

#include "core/complexity_model.hpp"
#include "netlist/generators.hpp"
#include "core/fsm_encoding_power.hpp"
#include "core/two_level.hpp"
#include "fsm/encoding.hpp"
#include "sim/simulator.hpp"
#include "sim/streams.hpp"
#include "stats/regression.hpp"
#include "stats/rng.hpp"

int main() {
  using namespace hlp;
  using namespace hlp::core;

  std::printf("E19a — CES gate-equivalent power vs simulated power\n\n");
  std::printf("%-10s %10s %12s %12s %8s\n", "module", "gate-eq",
              "P(ces)", "P(sim)", "ratio");
  CesParams ces;
  sim::PowerParams pp;
  for (auto [name, mod] :
       std::vector<std::pair<const char*, netlist::Module>>{
           {"adder-4", netlist::adder_module(4)},
           {"adder-8", netlist::adder_module(8)},
           {"mult-4", netlist::multiplier_module(4)},
           {"mult-6", netlist::multiplier_module(6)},
           {"alu-6", netlist::alu_module(6)}}) {
    stats::Rng rng(5);
    auto in = sim::random_stream(mod.total_input_bits(), 1500, 0.5, rng);
    auto acts = sim::simulate_activities(mod.netlist, in);
    double p_sim = sim::compute_power(mod.netlist, acts, pp).total_power;
    double p_ces = ces_power(gate_equivalents(mod.netlist), ces, pp);
    std::printf("%-10s %10zu %12.3g %12.3g %8.2f\n", name,
                gate_equivalents(mod.netlist), p_ces, p_sim, p_ces / p_sim);
  }
  std::printf("(implementation-independent model: constant ratio across a "
              "family indicates the complexity proxy works)\n\n");

  std::printf("E19b — Nemani-Najm area complexity vs minimized cover "
              "size (random functions, n=6)\n\n");
  std::printf("%10s %12s %12s\n", "C(f)", "cover-cubes", "cover-lits");
  stats::Rng rng(9);
  stats::Matrix xs;
  std::vector<double> ys;
  for (int rep = 0; rep < 14; ++rep) {
    // Random function with controlled on-set density.
    double density = 0.1 + 0.06 * rep;
    auto tt = table_from(6, [&](std::uint32_t) { return rng.bit(density); });
    auto ac = area_complexity(tt, 6);
    auto cover = minimize_cover(tt, 6);
    std::printf("%10.3f %12zu %12d\n", ac.c, cover.size(),
                cover_literals(cover));
    xs.push_back({ac.c});
    ys.push_back(std::log(1.0 + cover_literals(cover)));
  }
  auto fit = stats::ols(xs, ys);
  std::printf("log-area ~ C(f): slope=%.3f R^2=%.3f (paper: exponential "
              "regression family)\n\n", fit.beta.empty() ? 0.0 : fit.beta[0],
              fit.r2);

  std::printf("E19c — Landman-Rabaey controller model fitted on "
              "synthesized FSMs\n\n");
  stats::Matrix cx;
  std::vector<double> cy;
  struct Row {
    std::string name;
    double model, sim;
  };
  std::vector<Row> rows;
  for (auto [name, stg] : std::vector<std::pair<std::string, fsm::Stg>>{
           {"counter-16", fsm::counter_fsm(4)},
           {"protocol-4", fsm::protocol_fsm(4)},
           {"protocol-8", fsm::protocol_fsm(8)},
           {"seqdet-6", fsm::sequence_detector_fsm(0b101101, 6)},
           {"random-12", fsm::random_fsm(12, 2, 3, 3)},
           {"random-24", fsm::random_fsm(24, 2, 3, 5)}}) {
    auto ma = fsm::analyze_markov(stg);
    auto rep = evaluate_encoding(stg, fsm::EncodingStyle::Binary, ma, 4000,
                                 7);
    // Model variables: minterms ~ states * symbols; activities measured.
    int n_m = static_cast<int>(stg.num_states() * stg.n_symbols());
    int n_i = stg.n_inputs() + rep.state_bits;
    int n_o = stg.n_outputs() + rep.state_bits;
    double e_st = rep.simulated_state_switching /
                  std::max(1, rep.state_bits);
    ControllerModelParams cm;
    double model = landman_rabaey_power(n_i, 0.25 + e_st, n_o, 0.25 + e_st,
                                        n_m, cm, pp);
    cx.push_back({model});
    cy.push_back(rep.simulated_power);
    rows.push_back({name, model, rep.simulated_power});
  }
  auto cfit = stats::ols(cx, cy);
  std::printf("%-12s %14s %14s %14s\n", "fsm", "model(raw)", "P(sim)",
              "model(fitted)");
  for (auto& r : rows) {
    double fitted = cfit.intercept +
                    (cfit.beta.empty() ? 0.0 : cfit.beta[0]) * r.model;
    std::printf("%-12s %14.4g %14.4g %14.4g\n", r.name.c_str(), r.model,
                r.sim, fitted);
  }
  std::printf("calibrated fit R^2 = %.3f (paper: accuracy comes from "
              "empirically fitted C_I/C_O coefficients)\n", cfit.r2);
  return 0;
}
