// Differential and property tests for hlp::analysis (DESIGN.md §10): the
// worklist fixpoint engine, the four analyses, the static estimator's
// bracketing guarantee against the simulation/symbolic kernels, and the
// serve tier-0 path.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "analysis/activity.hpp"
#include "analysis/arrival.hpp"
#include "analysis/bounds.hpp"
#include "analysis/const_prop.hpp"
#include "analysis/estimate.hpp"
#include "analysis/fixpoint.hpp"
#include "core/sampling_power.hpp"
#include "fsm/benchmarks.hpp"
#include "fsm/encoding.hpp"
#include "fsm/synth.hpp"
#include "jobs/kernels.hpp"
#include "netlist/generators.hpp"
#include "netlist/index.hpp"
#include "serve/protocol.hpp"
#include "serve/service.hpp"
#include "sim/glitch_sim.hpp"
#include "sim/streams.hpp"
#include "stats/rng.hpp"

namespace {

using namespace hlp;
using analysis::StaticEstimate;
using analysis::StaticOptions;
using netlist::GateId;
using netlist::Module;

// The combinational generator corpus every differential test sweeps.
const char* const kCombSpecs[] = {
    "adder:8",          "mult:4",           "mult:6",
    "parity:8",         "comparator:6",     "max:6",
    "mux:3",            "alu:4",            "mulred:4:2",
    "random:12:80:6:3", "random:16:200:8:9", "c17",
};

Module fsm_module(const std::string& name) {
  fsm::Stg stg = fsm::controller_by_name(name);
  std::vector<std::uint64_t> codes;
  for (std::size_t s = 0; s < stg.num_states(); ++s) codes.push_back(s);
  int bits = 1;
  while ((std::size_t{1} << bits) < stg.num_states()) ++bits;
  fsm::SynthesizedFsm sf = fsm::synthesize_fsm(stg, codes, bits);
  Module m;
  m.name = "fsm:" + name;
  m.netlist = std::move(sf.netlist);
  m.input_words = {sf.inputs};
  return m;
}

std::vector<Module> corpus() {
  std::vector<Module> mods;
  for (const char* spec : kCombSpecs) mods.push_back(jobs::make_module(spec));
  mods.push_back(fsm_module("traffic"));
  mods.push_back(fsm_module("dma"));
  mods.push_back(fsm_module("elevator"));
  return mods;
}

StaticEstimate estimate_of(const Module& m, std::size_t refine = 20000,
                           std::uint64_t salt = 0) {
  netlist::NetlistIndex ix = netlist::build_index(m.netlist);
  StaticOptions opts;
  opts.refine_node_budget = refine;
  opts.fixpoint.worklist_salt = salt;
  return analysis::static_estimate(m.netlist, ix, opts);
}

// --- Bracketing: lower <= truth <= upper ------------------------------------

TEST(StaticBounds, BracketSymbolicExactOnCombinationalCorpus) {
  for (const char* spec : kCombSpecs) {
    jobs::KernelRequest krq;
    krq.kind = jobs::JobKind::Symbolic;
    krq.design = spec;
    const jobs::AttemptOutcome sym = jobs::run_kernel(krq, {});
    ASSERT_TRUE(sym.ok) << spec;
    const StaticEstimate est = estimate_of(jobs::make_module(spec));
    EXPECT_LE(est.lower, sym.out.value + 1e-6) << spec;
    EXPECT_GE(est.upper, sym.out.value - 1e-6) << spec;
    EXPECT_LE(est.lower, est.upper) << spec;
    EXPECT_GE(est.point, est.lower - 1e-9) << spec;
    EXPECT_LE(est.point, est.upper + 1e-9) << spec;
  }
}

TEST(StaticBounds, BracketPackedMonteCarloOnFullCorpus) {
  // The Monte Carlo mean is a random variable centered on the true
  // expectation the bounds enclose, so the assertion allows its own
  // reported confidence-interval half-width (3x, ~4 sigma at 95%).
  for (const Module& m : corpus()) {
    const StaticEstimate est = estimate_of(m);
    stats::Rng rng(42);
    const int width = m.total_input_bits();
    auto gen = [&rng, width] { return rng.uniform_bits(width); };
    const core::MonteCarloResult mc =
        core::monte_carlo_power(m, gen, 0.01, 0.99, 100, 20000);
    const double slack = 3.0 * std::max(mc.ci_halfwidth, 1e-9);
    EXPECT_GE(mc.mean_energy, est.lower - slack) << m.name;
    EXPECT_LE(mc.mean_energy, est.upper + slack) << m.name;
  }
}

TEST(StaticBounds, RefinementTightensWithoutBreakingTheBracket) {
  const Module m = jobs::make_module("mult:6");
  jobs::KernelRequest krq;
  krq.kind = jobs::JobKind::Symbolic;
  krq.design = "mult:6";
  const double truth = jobs::run_kernel(krq, {}).out.value;
  double prev_spread = -1.0;
  for (std::size_t budget : {std::size_t{0}, std::size_t{2000},
                             std::size_t{200000}}) {
    const StaticEstimate est = estimate_of(m, budget);
    EXPECT_LE(est.lower, truth + 1e-6) << budget;
    EXPECT_GE(est.upper, truth - 1e-6) << budget;
    if (prev_spread >= 0.0) {
      EXPECT_LE(est.upper - est.lower, prev_spread + 1e-9)
          << "a larger refinement budget must not loosen bounds";
    }
    prev_spread = est.upper - est.lower;
  }
}

// --- Decorrelated point: exact where independence actually holds ------------

TEST(StaticPoint, ExactOnNonReconvergentNetlists) {
  // parity:N is a pure XOR tree — every input feeds one gate, so spatial
  // independence holds and the decorrelated point (no BDD refinement at
  // all) must equal the symbolic exact value to float accuracy.
  for (const char* spec : {"parity:8", "parity:16"}) {
    jobs::KernelRequest krq;
    krq.kind = jobs::JobKind::Symbolic;
    krq.design = spec;
    const double truth = jobs::run_kernel(krq, {}).out.value;
    const StaticEstimate est = estimate_of(jobs::make_module(spec), 0);
    EXPECT_NEAR(est.point, truth, 1e-9 * std::max(1.0, truth)) << spec;
  }
}

TEST(StaticPoint, BddRefinementRecoversExactValueOnReconvergentCone) {
  // Multipliers reconverge heavily; with enough refinement budget the whole
  // cone is BDD-exact and the point estimate equals the symbolic kernel.
  jobs::KernelRequest krq;
  krq.kind = jobs::JobKind::Symbolic;
  krq.design = "mult:4";
  const double truth = jobs::run_kernel(krq, {}).out.value;
  const StaticEstimate est = estimate_of(jobs::make_module("mult:4"), 500000);
  EXPECT_GT(est.activity.refined_gates, 0u);
  EXPECT_FALSE(est.activity.refine_budget_hit);
  EXPECT_NEAR(est.point, truth, 1e-9 * std::max(1.0, truth));
  // Fully refined combinational cone: bounds collapse onto the point.
  EXPECT_NEAR(est.upper, est.lower, 1e-9 * std::max(1.0, truth));
}

// --- Determinism / worklist-order independence ------------------------------

TEST(Fixpoint, ResultsAreIndependentOfWorklistSalt) {
  for (const Module& m : corpus()) {
    const StaticEstimate base = estimate_of(m, 20000, 0);
    for (std::uint64_t salt : {std::uint64_t{1}, std::uint64_t{0x9e3779b9},
                               std::uint64_t{0xfeedfacecafebeefull}}) {
      const StaticEstimate other = estimate_of(m, 20000, salt);
      EXPECT_NEAR(base.point, other.point, 1e-9) << m.name << " salt " << salt;
      EXPECT_NEAR(base.lower, other.lower, 1e-9) << m.name << " salt " << salt;
      EXPECT_NEAR(base.upper, other.upper, 1e-9) << m.name << " salt " << salt;
    }
  }
}

TEST(Fixpoint, RepeatedRunsAreBitIdentical) {
  const Module m = jobs::make_module("random:16:200:8:9");
  const StaticEstimate a = estimate_of(m);
  const StaticEstimate b = estimate_of(m);
  EXPECT_EQ(a.point, b.point);
  EXPECT_EQ(a.lower, b.lower);
  EXPECT_EQ(a.upper, b.upper);
  ASSERT_EQ(a.gate_point.size(), b.gate_point.size());
  for (std::size_t g = 0; g < a.gate_point.size(); ++g)
    ASSERT_EQ(a.gate_point[g], b.gate_point[g]) << g;
}

TEST(Fixpoint, MeterTripStopsIterationGracefully) {
  const Module m = jobs::make_module("mult:6");
  netlist::NetlistIndex ix = netlist::build_index(m.netlist);
  exec::Budget b;
  b.step_quota = 10;
  exec::Meter meter(b);
  const StaticEstimate est =
      analysis::static_estimate(m.netlist, ix, {}, &meter);
  EXPECT_EQ(est.stop, exec::StopReason::StepQuota);
  EXPECT_FALSE(est.complete);
}

// --- Constant / dead-logic propagation --------------------------------------

TEST(ConstProp, ProvesConstantsThroughLogicAndRegisters) {
  netlist::Netlist nl;
  const GateId x = nl.add_input("x");
  const GateId zero = nl.add_const(false);
  const GateId dead = nl.add_binary(netlist::GateKind::And, x, zero, "dead");
  const GateId live = nl.add_binary(netlist::GateKind::Or, x, dead, "live");
  // A register recirculating its own output never leaves its init value.
  const GateId hold = nl.add_dff(netlist::kNullGate, true, "hold");
  nl.set_dff_input(hold, hold);
  const GateId gated =
      nl.add_binary(netlist::GateKind::And, live, hold, "gated");
  nl.mark_output(gated);

  netlist::NetlistIndex ix = netlist::build_index(nl);
  const analysis::ConstResult cr = analysis::run_const_prop(nl, ix);
  EXPECT_EQ(cr.value[dead], analysis::ConstValue::Zero);
  EXPECT_EQ(cr.value[hold], analysis::ConstValue::One);
  EXPECT_EQ(cr.value[live], analysis::ConstValue::Varying);
  EXPECT_EQ(cr.value[gated], analysis::ConstValue::Varying);
  EXPECT_TRUE(cr.stats.converged);
  EXPECT_GE(cr.constant_gates, 2u);

  // Constant nets carry zero activity in the estimate.
  const StaticEstimate est = [&] {
    return analysis::static_estimate(nl, ix);
  }();
  EXPECT_EQ(est.gate_point[dead], 0.0);
  EXPECT_EQ(est.gate_upper[dead], 0.0);
}

// --- Arrival windows vs the unit-delay glitch simulator ---------------------

TEST(Arrival, TransitionBoundDominatesGlitchSimulation)
{
  for (const char* spec : {"adder:8", "mult:4", "random:12:80:6:3"}) {
    const Module m = jobs::make_module(spec);
    netlist::NetlistIndex ix = netlist::build_index(m.netlist);
    const analysis::ArrivalResult ar = analysis::run_arrival(m.netlist, ix);
    ASSERT_TRUE(ar.stats.converged) << spec;
    stats::Rng rng(7);
    stats::VectorStream stream =
        sim::random_stream(m.total_input_bits(), 200, 0.5, rng);
    const sim::GlitchResult gr = sim::simulate_glitches(m.netlist, stream);
    for (GateId g = 0; g < m.netlist.gate_count(); ++g) {
      EXPECT_LE(gr.total_activity[g],
                static_cast<double>(ar.window[g].max_transitions) + 1e-9)
          << spec << " gate " << g;
    }
  }
}

// --- Serve: tier-0 static estimates and escalation --------------------------

TEST(ServeStatic, Tier0AnswersAndCaches) {
  serve::Service service;
  serve::Request rq;
  rq.op = serve::Op::Estimate;
  rq.kind = jobs::JobKind::Static;
  rq.design = "parity:8";
  rq.epsilon = 0.05;  // parity bounds are exact: tier-0 must satisfy this
  serve::ResponseView rv;
  ASSERT_TRUE(serve::parse_response(service.handle_line(rq.serialize()), rv));
  ASSERT_TRUE(rv.ok) << rv.error;
  EXPECT_NE(rv.detail.find("static-tier0"), std::string::npos) << rv.detail;
  EXPECT_FALSE(rv.degraded);

  // Second identical request: served from the result cache.
  serve::ResponseView rv2;
  ASSERT_TRUE(serve::parse_response(service.handle_line(rq.serialize()), rv2));
  EXPECT_EQ(rv2.value, rv.value);
  EXPECT_EQ(service.metrics().hits, 1u);
}

TEST(ServeStatic, EscalatesToMonteCarloWhenBoundsAreTooLoose) {
  serve::Service service;
  serve::Request rq;
  rq.op = serve::Op::Estimate;
  rq.kind = jobs::JobKind::Static;
  // An 8x8 multiplier's middle product bits blow the fixed BDD refinement
  // budget, so the unrefined tail keeps loose union-bound toggle intervals
  // and the spread cannot meet a 5% accuracy request.
  rq.design = "mult:8";
  rq.epsilon = 0.05;
  serve::ResponseView rv;
  ASSERT_TRUE(serve::parse_response(service.handle_line(rq.serialize()), rv));
  ASSERT_TRUE(rv.ok) << rv.error;
  EXPECT_NE(rv.detail.find("static-escalated"), std::string::npos)
      << rv.detail;
  EXPECT_FALSE(rv.degraded) << "escalation is the tier contract, not a "
                               "degradation: the result must cache";

  // The escalated value matches a direct Monte Carlo run with the same
  // derived parameters and seed.
  jobs::KernelRequest krq;
  krq.kind = jobs::JobKind::MonteCarlo;
  krq.design = rq.design;
  krq.epsilon = rq.epsilon;
  krq.seed = service.keys(rq).seed;
  const jobs::AttemptOutcome mc = jobs::run_kernel(krq, {});
  ASSERT_TRUE(mc.ok);
  EXPECT_EQ(rv.value, mc.out.value);
}

TEST(ServeStatic, StaticKindRoundTripsThroughTheWireProtocol) {
  serve::Request rq;
  rq.op = serve::Op::Estimate;
  rq.kind = jobs::JobKind::Static;
  rq.design = "adder:8";
  const std::string line = rq.serialize();
  serve::Request back;
  std::string error;
  ASSERT_TRUE(serve::Request::parse(line, back, error)) << error;
  EXPECT_EQ(back.kind, jobs::JobKind::Static);
  EXPECT_EQ(back.design, "adder:8");
}

}  // namespace
