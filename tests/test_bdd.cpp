#include <gtest/gtest.h>

#include "bdd/bdd.hpp"
#include "bdd/bdd_to_netlist.hpp"
#include "bdd/netlist_bdd.hpp"
#include "exec/exec.hpp"
#include "netlist/generators.hpp"
#include "sim/simulator.hpp"
#include "stats/rng.hpp"

namespace {

using namespace hlp::bdd;

TEST(Bdd, BasicOperators) {
  Manager m;
  auto a = m.var(0), b = m.var(1);
  EXPECT_EQ(m.bdd_and(a, m.bdd_not(a)), kFalse);
  EXPECT_EQ(m.bdd_or(a, m.bdd_not(a)), kTrue);
  EXPECT_EQ(m.bdd_xor(a, a), kFalse);
  EXPECT_EQ(m.bdd_xnor(a, a), kTrue);
  EXPECT_EQ(m.bdd_and(a, b), m.bdd_and(b, a));  // canonical
  EXPECT_EQ(m.bdd_not(m.bdd_not(a)), a);
}

TEST(Bdd, EvalTruthTable) {
  Manager m;
  auto f = m.bdd_or(m.bdd_and(m.var(0), m.var(1)), m.var(2));
  for (std::uint64_t in = 0; in < 8; ++in) {
    bool expect = ((in & 1) && (in & 2)) || (in & 4);
    EXPECT_EQ(m.eval(f, in), expect);
  }
}

TEST(Bdd, SatFraction) {
  Manager m;
  auto a = m.var(0), b = m.var(1), c = m.var(2);
  EXPECT_DOUBLE_EQ(m.sat_fraction(kTrue), 1.0);
  EXPECT_DOUBLE_EQ(m.sat_fraction(kFalse), 0.0);
  EXPECT_DOUBLE_EQ(m.sat_fraction(a), 0.5);
  EXPECT_DOUBLE_EQ(m.sat_fraction(m.bdd_and(a, b)), 0.25);
  EXPECT_DOUBLE_EQ(m.sat_fraction(m.bdd_and(m.bdd_and(a, b), c)), 0.125);
  EXPECT_DOUBLE_EQ(m.sat_fraction(m.bdd_or(a, b)), 0.75);
}

TEST(Bdd, Quantification) {
  Manager m;
  auto a = m.var(0), b = m.var(1);
  auto f = m.bdd_and(a, b);
  EXPECT_EQ(m.exists(f, 0), b);
  EXPECT_EQ(m.forall(f, 0), kFalse);
  auto g = m.bdd_or(a, b);
  EXPECT_EQ(m.forall(g, 0), b);
  EXPECT_EQ(m.exists(g, 0), kTrue);
}

TEST(Bdd, ComposeSubstitutes) {
  Manager m;
  auto a = m.var(0), b = m.var(1), c = m.var(2);
  auto f = m.bdd_xor(a, b);
  auto g = m.bdd_and(b, c);
  auto h = m.compose(f, 0, g);  // (b&c) ^ b
  for (std::uint64_t in = 0; in < 8; ++in) {
    bool bb = (in >> 1) & 1, cc = (in >> 2) & 1;
    EXPECT_EQ(m.eval(h, in), static_cast<bool>((bb && cc) ^ bb));
  }
}

TEST(Bdd, ImpliesAndAnySat) {
  Manager m;
  auto a = m.var(0), b = m.var(1);
  auto f = m.bdd_and(a, b);
  EXPECT_TRUE(m.implies(f, a));
  EXPECT_TRUE(m.implies(f, b));
  EXPECT_FALSE(m.implies(a, f));
  auto sat = m.any_sat(f);
  EXPECT_TRUE(m.eval(f, sat));
}

TEST(Bdd, SupportAndNodeCount) {
  Manager m;
  auto f = m.bdd_xor(m.var(0), m.bdd_xor(m.var(2), m.var(5)));
  auto sup = m.support(f);
  EXPECT_EQ(sup, (std::vector<std::uint32_t>{0, 2, 5}));
  // XOR of k variables has k internal nodes... with plain BDDs it is
  // 2k-1? For xor chain: each level has 2 nodes except the last; count > 0.
  EXPECT_GE(m.node_count(f), 3u);
}

TEST(Bdd, SharedNodeCountDedups) {
  Manager m;
  auto f = m.bdd_and(m.var(0), m.var(1));
  NodeRef roots[2] = {f, f};
  EXPECT_EQ(m.node_count(roots), m.node_count(f));
}

TEST(NetlistBdd, MatchesSimulation) {
  auto mod = hlp::netlist::c17_module();
  Manager m;
  auto bdds = build_bdds(m, mod.netlist);
  hlp::sim::Simulator s(mod.netlist);
  for (std::uint64_t in = 0; in < 32; ++in) {
    s.set_all_inputs(in);
    s.eval();
    for (std::size_t o = 0; o < mod.netlist.outputs().size(); ++o) {
      EXPECT_EQ(m.eval(bdds.output(mod.netlist, o), in),
                s.value(mod.netlist.outputs()[o]));
    }
  }
}

class NetlistBddModule : public ::testing::TestWithParam<int> {};

TEST_P(NetlistBddModule, AdderBddMatchesSim) {
  auto mod = hlp::netlist::adder_module(GetParam());
  Manager m;
  auto bdds = build_bdds(m, mod.netlist);
  hlp::sim::Simulator s(mod.netlist);
  hlp::stats::Rng rng(31);
  int n_in = mod.total_input_bits();
  for (int rep = 0; rep < 100; ++rep) {
    std::uint64_t in = rng.uniform_bits(n_in);
    s.set_all_inputs(in);
    s.eval();
    for (std::size_t o = 0; o < mod.netlist.outputs().size(); ++o)
      EXPECT_EQ(m.eval(bdds.output(mod.netlist, o), in),
                s.value(mod.netlist.outputs()[o]));
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, NetlistBddModule,
                         ::testing::Values(2, 4, 6, 8));

TEST(BddOrdering, InterleavingCollapsesAdderBdd) {
  // The classic ordering lesson: with operands concatenated (a-bits then
  // b-bits) the adder BDD is exponential; interleaved (a0,b0,a1,b1,...) it
  // is linear.
  auto mod = hlp::netlist::adder_module(8);
  Manager m1, m2;
  auto bad = build_bdds(m1, mod.netlist);
  auto order = interleaved_word_order(mod.input_words);
  auto good = build_bdds_ordered(m2, mod.netlist, order);
  std::vector<NodeRef> roots_bad, roots_good;
  for (auto g : mod.netlist.outputs()) {
    roots_bad.push_back(bad.fn[g]);
    roots_good.push_back(good.fn[g]);
  }
  std::size_t n_bad = m1.node_count(roots_bad);
  std::size_t n_good = m2.node_count(roots_good);
  EXPECT_GT(n_bad, 10 * n_good);
  EXPECT_LT(n_good, 200u);  // linear-size BDD for an 8-bit adder
}

TEST(BddOrdering, OrderedBuildStaysFunctionallyCorrect) {
  auto mod = hlp::netlist::adder_module(5);
  Manager m;
  auto order = interleaved_word_order(mod.input_words);
  auto bdds = build_bdds_ordered(m, mod.netlist, order);
  hlp::sim::Simulator s(mod.netlist);
  hlp::stats::Rng rng(3);
  for (int rep = 0; rep < 200; ++rep) {
    std::uint64_t in = rng.uniform_bits(10);
    // Permute the assignment: variable bdds.input_vars[i] carries input i.
    std::uint64_t assignment = 0;
    for (std::size_t i = 0; i < 10; ++i)
      if ((in >> i) & 1u)
        assignment |= std::uint64_t{1} << bdds.input_vars[i];
    s.set_all_inputs(in);
    s.eval();
    for (std::size_t o = 0; o < mod.netlist.outputs().size(); ++o)
      ASSERT_EQ(m.eval(bdds.output(mod.netlist, o), assignment),
                s.value(mod.netlist.outputs()[o]));
  }
}

TEST(BddOrdering, NodeCapTripsAdversarialOrderAndManagerSurvives) {
  // Worst-case variable order (operands concatenated) on a wide adder: the
  // build must trip the node cap instead of exhausting memory, and the
  // manager must stay fully usable afterwards.
  auto mod = hlp::netlist::adder_module(14);
  Manager m;
  hlp::exec::Meter meter(hlp::exec::Budget::with_node_cap(10000));
  m.set_meter(&meter);
  bool tripped = false;
  try {
    (void)build_bdds(m, mod.netlist);
  } catch (const hlp::exec::BudgetExceeded& e) {
    tripped = true;
    EXPECT_EQ(e.reason(), hlp::exec::StopReason::NodeCap);
  }
  ASSERT_TRUE(tripped);
  EXPECT_LE(m.total_nodes(), 10000u);  // the cap really bounded growth
  m.set_meter(nullptr);

  // Same manager, good (interleaved) order: the build succeeds and is
  // functionally correct, proving the tables survived the mid-ITE unwind.
  auto order = interleaved_word_order(mod.input_words);
  auto bdds = build_bdds_ordered(m, mod.netlist, order);
  hlp::sim::Simulator s(mod.netlist);
  hlp::stats::Rng rng(17);
  const int n_in = mod.total_input_bits();
  for (int rep = 0; rep < 50; ++rep) {
    std::uint64_t in = rng.uniform_bits(n_in);
    std::uint64_t assignment = 0;
    for (int i = 0; i < n_in; ++i)
      if ((in >> i) & 1u)
        assignment |= std::uint64_t{1}
                      << bdds.input_vars[static_cast<std::size_t>(i)];
    s.set_all_inputs(in);
    s.eval();
    for (std::size_t o = 0; o < mod.netlist.outputs().size(); ++o)
      ASSERT_EQ(m.eval(bdds.output(mod.netlist, o), assignment),
                s.value(mod.netlist.outputs()[o]));
  }
}

TEST(BddToNetlist, MaterializedMuxNetworkMatches) {
  Manager m;
  auto f = m.bdd_or(m.bdd_and(m.var(0), m.var(1)),
                    m.bdd_and(m.bdd_not(m.var(0)), m.var(2)));
  hlp::netlist::Netlist nl;
  std::unordered_map<std::uint32_t, hlp::netlist::GateId> vars;
  for (std::uint32_t v = 0; v < 3; ++v) vars[v] = nl.add_input();
  auto g = materialize(m, f, nl, vars);
  nl.mark_output(g);
  hlp::sim::Simulator s(nl);
  for (std::uint64_t in = 0; in < 8; ++in) {
    s.set_all_inputs(in);
    s.eval();
    EXPECT_EQ(s.value(g), m.eval(f, in));
  }
}

TEST(Bdd, RestrictMatchesCofactor) {
  Manager m;
  hlp::stats::Rng rng(13);
  // Random 4-var function via its minterms.
  std::uint64_t tt = rng.uniform_bits(16);
  NodeRef f = kFalse;
  for (std::uint32_t mt = 0; mt < 16; ++mt) {
    if (!((tt >> mt) & 1)) continue;
    NodeRef cube = kTrue;
    for (std::uint32_t v = 0; v < 4; ++v)
      cube = m.bdd_and(cube, ((mt >> v) & 1) ? m.var(v) : m.nvar(v));
    f = m.bdd_or(f, cube);
  }
  for (std::uint32_t v = 0; v < 4; ++v) {
    auto f0 = m.restrict_var(f, v, false);
    auto f1 = m.restrict_var(f, v, true);
    for (std::uint64_t in = 0; in < 16; ++in) {
      EXPECT_EQ(m.eval(f0, in & ~(1ull << v)),
                m.eval(f, in & ~(1ull << v)));
      EXPECT_EQ(m.eval(f1, in | (1ull << v)),
                m.eval(f, in | (1ull << v)));
    }
  }
}

}  // namespace
