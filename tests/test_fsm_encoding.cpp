#include <gtest/gtest.h>

#include "core/entropy_model.hpp"
#include "core/fsm_encoding_power.hpp"

namespace {

using namespace hlp;
using namespace hlp::core;

TEST(FsmEncodingPower, ReportsAllStyles) {
  auto stg = fsm::random_fsm(8, 1, 2, 5);
  auto reports = compare_encodings(stg, 2000, 7);
  ASSERT_EQ(reports.size(), 5u);
  for (auto& r : reports) {
    EXPECT_GT(r.simulated_power, 0.0) << r.style;
    EXPECT_GT(r.gates, 0u);
    EXPECT_GE(r.expected_switching, 0.0);
  }
}

TEST(FsmEncodingPower, LowPowerBeatsRandomOnSwitching) {
  auto stg = fsm::random_fsm(16, 2, 2, 9);
  auto reports = compare_encodings(stg, 4000, 11);
  double lp = -1, rnd = -1;
  for (auto& r : reports) {
    if (r.style == "low-power") lp = r.expected_switching;
    if (r.style == "random") rnd = r.expected_switching;
  }
  ASSERT_GE(lp, 0.0);
  ASSERT_GE(rnd, 0.0);
  EXPECT_LE(lp, rnd + 1e-9);
}

TEST(FsmEncodingPower, MeasuredSwitchingTracksAnalytical) {
  auto stg = fsm::random_fsm(8, 1, 2, 13);
  auto ma = fsm::analyze_markov(stg);
  auto rep = evaluate_encoding(stg, fsm::EncodingStyle::Binary, ma, 30000, 3);
  EXPECT_NEAR(rep.simulated_state_switching, rep.expected_switching,
              0.15 * rep.expected_switching + 0.05);
}

TEST(FsmEncodingPower, TyagiBoundBelowAllMeasurements) {
  auto stg = fsm::random_fsm(24, 2, 2, 17);
  auto ma = fsm::analyze_markov(stg);
  double bound = tyagi_switching_bound(ma, stg.num_states());
  auto reports = compare_encodings(stg, 1500, 19);
  for (auto& r : reports) {
    if (r.style == "one-hot") continue;  // different bit budget
    EXPECT_GE(r.expected_switching, bound - 1e-9) << r.style;
  }
}

TEST(FsmEncodingPower, OneHotUsesMoreBits) {
  auto stg = fsm::random_fsm(10, 1, 1, 21);
  auto reports = compare_encodings(stg, 500, 23);
  int onehot_bits = 0, binary_bits = 0;
  for (auto& r : reports) {
    if (r.style == "one-hot") onehot_bits = r.state_bits;
    if (r.style == "binary") binary_bits = r.state_bits;
  }
  EXPECT_EQ(onehot_bits, 10);
  EXPECT_EQ(binary_bits, 4);
}

}  // namespace
