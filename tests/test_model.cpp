// hlp::model tests: feature extraction, the CRC-framed artifact file,
// fitting, the registry's refusal semantics, and the serve predicted tier
// end to end (DESIGN.md §12).

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "jobs/kernels.hpp"
#include "model/artifact.hpp"
#include "model/characterize.hpp"
#include "model/features.hpp"
#include "model/registry.hpp"
#include "serve/protocol.hpp"
#include "serve/service.hpp"
#include "stats/regression.hpp"
#include "util/hash.hpp"

namespace {

using namespace hlp;
using model::FeatureVector;
using model::kFeatureCount;
using model::Macromodel;
using model::ModelFileStatus;
using model::ModelLoad;
using model::ModelRegistry;
using model::PredictStatus;
using serve::Op;
using serve::Request;
using serve::ResponseView;
using serve::Service;
using serve::ServiceOptions;

std::string temp_model_path(const std::string& tag) {
  return ::testing::TempDir() + "hlp_model_" + tag + "_" +
         std::to_string(::getpid()) + ".hlpm";
}

/// A structurally valid model over a [0, 1]^kFeatureCount hull:
/// value = 2 + 3 * gates, with unit inference by-products.
Macromodel simple_model(const std::string& family, const std::string& kind,
                        double intercept = 2.0) {
  Macromodel m;
  m.family = family;
  m.kind = kind;
  m.selected = {0};
  m.beta = {3.0};
  m.intercept = intercept;
  m.sigma2 = 0.01;
  m.dof = 10;
  m.n = 12;
  m.r2 = 0.99;
  m.condition = 4.0;
  m.xtx_inv = {0.5, 0.0, 0.0, 0.5};  // 2x2 identity-ish
  for (std::size_t i = 0; i < kFeatureCount; ++i) {
    m.hull_lo[i] = 0.0;
    m.hull_hi[i] = 1.0;
  }
  return m;
}

// --- Features ---------------------------------------------------------------

TEST(ModelFeatures, DeterministicAndStatisticsSensitive) {
  const FeatureVector a = model::extract_features("adder:8", 0.5);
  const FeatureVector b = model::extract_features("adder:8", 0.5);
  for (std::size_t i = 0; i < kFeatureCount; ++i)
    EXPECT_EQ(a.v[i], b.v[i]) << model::feature_name(i);

  // Structural features are real counts.
  EXPECT_GT(a.v[0], 0.0);  // gates
  EXPECT_GT(a.v[1], 0.0);  // inputs
  EXPECT_GT(a.v[3], 0.0);  // cap
  // Static bounds bracket the point estimate.
  EXPECT_LE(a.v[6], a.v[5] + 1e-12);
  EXPECT_LE(a.v[5], a.v[7] + 1e-12);
  // Input-statistics features reflect p.
  EXPECT_DOUBLE_EQ(a.v[9], 0.5);
  EXPECT_DOUBLE_EQ(a.v[10], 0.5);

  const FeatureVector c = model::extract_features("adder:8", 0.25);
  EXPECT_DOUBLE_EQ(c.v[9], 0.25);
  EXPECT_DOUBLE_EQ(c.v[10], 2 * 0.25 * 0.75);
  // Activity figures move with the input statistics.
  EXPECT_NE(a.v[5], c.v[5]);
}

TEST(ModelFeatures, ValidationThrowsTyped) {
  EXPECT_THROW(model::extract_features("nosuch:4", 0.5), std::invalid_argument);
  EXPECT_THROW(model::extract_features("adder:8", -0.1), std::invalid_argument);
  EXPECT_THROW(model::extract_features("adder:8", 1.5), std::invalid_argument);
  EXPECT_EQ(model::design_family("adder:16"), "adder");
  EXPECT_EQ(model::design_family("c17"), "c17");
}

// --- Artifact ---------------------------------------------------------------

TEST(ModelArtifact, SerializeParseIsByteIdenticalFixedPoint) {
  Macromodel m = simple_model("adder", "symbolic");
  m.selected = {0, 5, 9};
  m.beta = {1.25, -0.5, 1e-3};
  m.xtx_inv.assign(16, 0.0);
  for (int i = 0; i < 4; ++i) m.xtx_inv[i * 4 + i] = 0.25;
  m.hull_lo[4] = -3.5;
  m.hull_hi[4] = 17.25;

  const std::string line = m.serialize();
  Macromodel parsed;
  std::string err;
  ASSERT_EQ(Macromodel::parse(line, parsed, err), Macromodel::ParseStatus::Ok)
      << err;
  EXPECT_EQ(parsed.serialize(), line);
  EXPECT_EQ(parsed.family, "adder");
  EXPECT_EQ(parsed.selected, m.selected);
  EXPECT_EQ(parsed.beta, m.beta);
  EXPECT_EQ(parsed.dof, m.dof);
  EXPECT_EQ(parsed.hull_hi[4], 17.25);
}

TEST(ModelArtifact, ParseRejectsMalformedWithoutTouchingOut) {
  Macromodel out = simple_model("keep", "symbolic", 7.0);
  std::string err;
  // Size cross-check violation: |beta| != |selected|.
  Macromodel bad = simple_model("adder", "symbolic");
  bad.beta.push_back(1.0);
  EXPECT_EQ(Macromodel::parse(bad.serialize(), out, err),
            Macromodel::ParseStatus::Malformed);
  EXPECT_EQ(out.family, "keep");
  EXPECT_EQ(out.intercept, 7.0);

  EXPECT_EQ(Macromodel::parse("{\"nonsense\":1}", out, err),
            Macromodel::ParseStatus::Malformed);
  EXPECT_EQ(out.family, "keep");
}

TEST(ModelArtifact, VersionMismatchIsItsOwnStatus) {
  Macromodel m = simple_model("adder", "symbolic");
  m.version = model::kModelVersion + 1;
  Macromodel out;
  std::string err;
  EXPECT_EQ(Macromodel::parse(m.serialize(), out, err),
            Macromodel::ParseStatus::VersionMismatch);
}

TEST(ModelArtifact, FileRoundTripAndMissing) {
  const std::string path = temp_model_path("roundtrip");
  std::remove(path.c_str());
  EXPECT_EQ(model::load_models_file(path).status, ModelFileStatus::Missing);

  std::vector<Macromodel> models = {simple_model("adder", "symbolic"),
                                    simple_model("mult", "monte-carlo", 5.0)};
  std::string err;
  ASSERT_TRUE(model::save_models_file(path, models, err)) << err;
  const ModelLoad back = model::load_models_file(path);
  ASSERT_TRUE(back.ok()) << back.error;
  ASSERT_EQ(back.models.size(), 2u);
  EXPECT_EQ(back.models[0].serialize(), models[0].serialize());
  EXPECT_EQ(back.models[1].serialize(), models[1].serialize());
  EXPECT_EQ(back.torn_bytes, 0u);
  std::remove(path.c_str());
}

TEST(ModelArtifact, TornTailLoadsIntactPrefix) {
  std::vector<Macromodel> models = {simple_model("adder", "symbolic"),
                                    simple_model("mult", "symbolic")};
  const std::string path = temp_model_path("torn");
  std::string err;
  ASSERT_TRUE(model::save_models_file(path, models, err)) << err;
  std::string bytes;
  {
    FILE* f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    char buf[1 << 16];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) bytes.append(buf, n);
    std::fclose(f);
  }
  std::remove(path.c_str());

  // A crash mid-append: drop half of the second record.
  const std::string torn = bytes.substr(0, bytes.size() - 40);
  const ModelLoad load = model::decode_models(torn);
  ASSERT_TRUE(load.ok()) << load.error;
  ASSERT_EQ(load.models.size(), 1u);
  EXPECT_EQ(load.models[0].family, "adder");
  EXPECT_GT(load.torn_bytes, 0u);

  // Trailing garbage after intact records is also a torn tail.
  const ModelLoad junk = model::decode_models(bytes + "xyz");
  ASSERT_TRUE(junk.ok());
  EXPECT_EQ(junk.models.size(), 2u);
  EXPECT_EQ(junk.torn_bytes, 3u);
}

TEST(ModelArtifact, BadMagicAndCrcValidCorruptionAreTyped) {
  EXPECT_EQ(model::decode_models("not a registry").status,
            ModelFileStatus::BadMagic);

  // Frame a CRC-valid record whose payload is not a model: corruption in
  // sound framing rejects the whole file.
  std::string bytes("HLPMODL1", 8);
  const std::string payload = "{\"version\":1,\"garbage\":true}";
  const std::size_t frame_start = bytes.size();
  const auto len = static_cast<std::uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i)
    bytes.push_back(static_cast<char>((len >> (8 * i)) & 0xff));
  bytes += payload;
  const std::uint32_t crc =
      util::crc32(bytes.data() + frame_start, bytes.size() - frame_start);
  for (int i = 0; i < 4; ++i)
    bytes.push_back(static_cast<char>((crc >> (8 * i)) & 0xff));
  const ModelLoad load = model::decode_models(bytes);
  EXPECT_EQ(load.status, ModelFileStatus::BadRecord);
  EXPECT_TRUE(load.models.empty());
  EXPECT_NE(load.error.find("record 0"), std::string::npos) << load.error;

  // Same framing around a future-version record: typed as version skew.
  Macromodel future = simple_model("adder", "symbolic");
  future.version = model::kModelVersion + 3;
  std::vector<Macromodel> models = {future};
  const std::string path = temp_model_path("skew");
  std::string err;
  ASSERT_TRUE(model::save_models_file(path, models, err)) << err;
  EXPECT_EQ(model::load_models_file(path).status,
            ModelFileStatus::VersionMismatch);
  std::remove(path.c_str());
}

// --- Fitting ----------------------------------------------------------------

/// Synthetic rows: power = 10 + 4 * gates - 2 * depth + noise-free, with
/// the other features varying so the hull is non-degenerate.
std::vector<model::Row> synthetic_rows(int n) {
  std::vector<model::Row> rows;
  for (int i = 0; i < n; ++i) {
    model::Row r;
    r.design = "fake:" + std::to_string(i);
    for (std::size_t f = 0; f < kFeatureCount; ++f)
      r.x.v[f] = 0.1 * static_cast<double>((i * (f + 3)) % 17);
    r.x.v[0] = static_cast<double>(i);            // gates
    r.x.v[4] = static_cast<double>((i * 7) % 13); // depth
    r.power = 10.0 + 4.0 * r.x.v[0] - 2.0 * r.x.v[4];
    rows.push_back(r);
  }
  return rows;
}

TEST(ModelFit, RecoversLinearStructure) {
  const std::vector<model::Row> rows = synthetic_rows(40);
  const model::FitReport rep =
      model::fit_macromodel(rows, "fake", "symbolic");
  EXPECT_EQ(rep.model.family, "fake");
  EXPECT_GT(rep.train_r2, 0.999);
  EXPECT_LT(rep.holdout_mape, 0.01);
  EXPECT_GT(rep.holdout_rows, 0u);
  EXPECT_FALSE(rep.selected_names.empty());

  // The fitted artifact predicts a training row back.
  const model::Row& probe = rows[8];
  EXPECT_NEAR(rep.model.predict(probe.x), probe.power,
              1e-6 * std::abs(probe.power) + 1e-6);
  EXPECT_TRUE(rep.model.in_hull(probe.x));
  // Interval machinery is sane: positive width, wider at higher confidence.
  const double hw95 = rep.model.halfwidth(probe.x, 0.95);
  const double hw99 = rep.model.halfwidth(probe.x, 0.99);
  EXPECT_GE(hw95, 0.0);
  EXPECT_GT(hw99, hw95 * 0.99);
}

TEST(ModelFit, TooFewRowsThrows) {
  const std::vector<model::Row> rows = synthetic_rows(2);
  EXPECT_THROW(model::fit_macromodel(rows, "fake", "symbolic"),
               std::invalid_argument);
}

TEST(ModelFit, IllConditionedDesignRaisesTheWarning) {
  // One feature lives at 1e12 scale: the normal equations stay solvable
  // but their condition estimate explodes past the 1e8 warning bar.
  std::vector<model::Row> rows = synthetic_rows(30);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    rows[i].x.v[3] = 1e12 * (1.0 + 0.001 * static_cast<double>(i));
    rows[i].power += 1e-10 * rows[i].x.v[3];
  }
  model::FitOptions opts;
  opts.holdout_frac = 0.0;
  const model::FitReport rep =
      model::fit_macromodel(rows, "fake", "symbolic", opts);
  if (rep.condition > 1e8) EXPECT_TRUE(rep.condition_warning);
  EXPECT_GT(rep.condition, 0.0);
}

// --- Registry ---------------------------------------------------------------

TEST(ModelRegistryLookup, RoutesRefusesAndScoresIntervals) {
  ModelRegistry reg;
  reg.insert(simple_model("adder", "symbolic"));

  FeatureVector in;
  for (std::size_t i = 0; i < kFeatureCount; ++i) in.v[i] = 0.5;
  const model::Prediction hit = reg.predict("adder", "symbolic", in, 0.95);
  ASSERT_TRUE(hit.ok());
  EXPECT_NEAR(hit.value, 2.0 + 3.0 * 0.5, 1e-12);
  EXPECT_GT(hit.halfwidth, 0.0);

  // Out-of-hull: one coordinate beyond the training box.
  FeatureVector out = in;
  out.v[7] = 2.0;
  EXPECT_EQ(reg.predict("adder", "symbolic", out, 0.95).status,
            PredictStatus::OutOfHull);

  // Unknown family / kind.
  EXPECT_EQ(reg.predict("mult", "symbolic", in, 0.95).status,
            PredictStatus::NoModel);
  EXPECT_EQ(reg.predict("adder", "monte-carlo", in, 0.95).status,
            PredictStatus::NoModel);

  // Last insert wins for the same (family, kind).
  reg.insert(simple_model("adder", "symbolic", 100.0));
  EXPECT_EQ(reg.size(), 1u);
  const Macromodel* m = reg.find("adder", "symbolic");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->intercept, 100.0);
}

// --- Characterize + fit + serve end to end ----------------------------------

Request accuracy_request(const std::string& design, double accuracy,
                         jobs::JobKind kind = jobs::JobKind::Symbolic) {
  Request rq;
  rq.op = Op::Estimate;
  rq.kind = kind;
  rq.design = design;
  rq.has_accuracy = true;
  rq.accuracy = accuracy;
  return rq;
}

/// Shared expensive fixture: one real characterization campaign over the
/// adder family (symbolic labels at p = 0.5), fitted and saved once.
class ServeModelE2E : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    model::SweepSpec spec;
    spec.family = "adder";
    spec.kind = jobs::JobKind::Symbolic;
    spec.params = {4, 6, 8, 10, 12};
    spec.input_p = {0.5};
    jobs::RunnerOptions ropts;
    ropts.workers = 2;
    const model::Characterization ch = model::characterize(spec, ropts);
    ASSERT_TRUE(ch.complete());
    ASSERT_EQ(ch.rows.size(), 5u);
    model::FitOptions fopts;
    fopts.holdout_frac = 0.0;  // 5 rows: train on all of them
    const model::FitReport rep =
        model::fit_macromodel(ch.rows, "adder", "symbolic", fopts);
    path_ = temp_model_path("e2e");
    std::string err;
    std::vector<Macromodel> models = {rep.model};
    ASSERT_TRUE(model::save_models_file(path_, models, err)) << err;
  }
  static void TearDownTestSuite() { std::remove(path_.c_str()); }
  static std::string path_;
};

std::string ServeModelE2E::path_;

TEST_F(ServeModelE2E, InDomainAnswersFromPredictedTierWithCoveringInterval) {
  ServiceOptions opts;
  opts.workers = 2;
  opts.model_path = path_;
  Service service(opts);
  ASSERT_EQ(service.health().models_loaded, 1u);

  // Ground truth from the real symbolic kernel.
  jobs::KernelRequest krq;
  krq.kind = jobs::JobKind::Symbolic;
  krq.design = "adder:8";
  const jobs::AttemptOutcome truth = jobs::run_kernel(krq, exec::Budget{});
  ASSERT_TRUE(truth.ok);

  const std::string line = accuracy_request("adder:8", 0.5).serialize();
  ResponseView v;
  ASSERT_TRUE(serve::parse_response(service.handle_line(line), v));
  ASSERT_TRUE(v.ok);
  EXPECT_EQ(v.tier, "predicted");
  ASSERT_TRUE(v.has_interval);
  EXPECT_LE(v.interval_lo, truth.out.value);
  EXPECT_GE(v.interval_hi, truth.out.value);
  EXPECT_LE(v.interval_lo, v.value);
  EXPECT_GE(v.interval_hi, v.value);

  // Warm repeats never touch a kernel: microsecond-class, but assert a
  // generous CI-safe bound and the counter instead of a tight clock.
  const auto t0 = std::chrono::steady_clock::now();
  ResponseView v2;
  ASSERT_TRUE(serve::parse_response(service.handle_line(line), v2));
  const double warm_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_EQ(v2.tier, "predicted");
  EXPECT_LT(warm_s, 0.05);
  EXPECT_EQ(service.health().model_predicted, 2u);
  // Predicted answers are never cached: no cache traffic happened.
  EXPECT_EQ(service.metrics().hits, 0u);
  EXPECT_EQ(service.metrics().misses, 0u);
}

TEST_F(ServeModelE2E, TightAccuracyEscalatesToExactKernel) {
  ServiceOptions opts;
  opts.workers = 2;
  opts.model_path = path_;
  Service service(opts);

  jobs::KernelRequest krq;
  krq.kind = jobs::JobKind::Symbolic;
  krq.design = "adder:8";
  const jobs::AttemptOutcome truth = jobs::run_kernel(krq, exec::Budget{});
  ASSERT_TRUE(truth.ok);

  // An interval this tight is beyond the model: the request escalates and
  // gets the exact kernel answer, tagged with the exact tier.
  ResponseView v;
  ASSERT_TRUE(serve::parse_response(
      service.handle_line(accuracy_request("adder:8", 1e-9).serialize()), v));
  ASSERT_TRUE(v.ok);
  EXPECT_EQ(v.tier, "exact");
  EXPECT_FALSE(v.has_interval);
  EXPECT_DOUBLE_EQ(v.value, truth.out.value);
  EXPECT_EQ(service.health().model_escalated, 1u);
  EXPECT_EQ(service.health().model_predicted, 0u);
}

TEST_F(ServeModelE2E, OutOfHullAndUnknownFamilyNeverAnswerFromTheModel) {
  // Stub executor: the exact path costs nothing, so this test isolates the
  // routing decision (model vs kernel) from kernel cost.
  std::atomic<int> kernel_calls{0};
  ServiceOptions opts;
  opts.workers = 0;
  opts.model_path = path_;
  opts.executor = [&kernel_calls](const jobs::KernelRequest&,
                                  const exec::Budget&) {
    ++kernel_calls;
    jobs::AttemptOutcome ao;
    ao.ok = true;
    ao.out.value = 42.0;
    ao.out.detail = "stub";
    return ao;
  };
  Service service(opts);

  // adder:14 is in-family but outside the training hull (params 4..12).
  ResponseView v;
  ASSERT_TRUE(serve::parse_response(
      service.handle_line(accuracy_request("adder:14", 0.9).serialize()), v));
  ASSERT_TRUE(v.ok);
  EXPECT_EQ(v.tier, "exact");
  EXPECT_EQ(v.value, 42.0);
  EXPECT_EQ(service.health().model_out_of_hull, 1u);

  // No model covers the parity family: typed miss, kernel answers.
  ASSERT_TRUE(serve::parse_response(
      service.handle_line(
          accuracy_request("parity:8", 0.9).serialize()),
      v));
  ASSERT_TRUE(v.ok);
  EXPECT_EQ(v.tier, "exact");
  EXPECT_EQ(service.health().model_miss, 1u);
  EXPECT_EQ(service.health().model_predicted, 0u);
  EXPECT_EQ(kernel_calls.load(), 2);

  // A request without an accuracy field never consults the model and its
  // response carries no tier marker at all (byte-compatible with PR 6).
  Request plain;
  plain.op = Op::Estimate;
  plain.kind = jobs::JobKind::Symbolic;
  plain.design = "adder:8";
  const std::string body = service.handle_line(plain.serialize());
  EXPECT_EQ(body.find("\"tier\":"), std::string::npos);
}

// --- Registry lifecycle on the service --------------------------------------

TEST(ServeModelLifecycle, MissingCorruptAndSkewedFilesAreTypedAndNonFatal) {
  Service service;  // no model_path: empty registry
  EXPECT_EQ(service.health().models_loaded, 0u);
  EXPECT_EQ(service.models(), nullptr);

  // Missing file: typed, registry unchanged.
  Service::ModelsStatus ms = service.load_models(temp_model_path("absent"));
  EXPECT_EQ(ms.status, ModelFileStatus::Missing);
  EXPECT_EQ(service.models(), nullptr);

  // Healthy file loads.
  const std::string good = temp_model_path("life_good");
  std::vector<Macromodel> models = {simple_model("adder", "symbolic")};
  std::string err;
  ASSERT_TRUE(model::save_models_file(good, models, err)) << err;
  ms = service.load_models(good);
  ASSERT_TRUE(ms.ok()) << ms.error;
  EXPECT_EQ(ms.count, 1u);
  EXPECT_EQ(service.health().models_loaded, 1u);

  // Bad magic: typed failure, the previous registry keeps serving.
  const std::string bad = temp_model_path("life_bad");
  {
    FILE* f = std::fopen(bad.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("BOGUS FILE", f);
    std::fclose(f);
  }
  ms = service.load_models(bad);
  EXPECT_EQ(ms.status, ModelFileStatus::BadMagic);
  EXPECT_EQ(service.health().models_loaded, 1u);
  ASSERT_NE(service.models(), nullptr);
  EXPECT_NE(service.models()->find("adder", "symbolic"), nullptr);

  // Version skew: typed, previous registry retained.
  Macromodel future = simple_model("mult", "symbolic");
  future.version = model::kModelVersion + 1;
  std::vector<Macromodel> skewed = {future};
  const std::string skew = temp_model_path("life_skew");
  ASSERT_TRUE(model::save_models_file(skew, skewed, err)) << err;
  ms = service.load_models(skew);
  EXPECT_EQ(ms.status, ModelFileStatus::VersionMismatch);
  EXPECT_EQ(service.health().models_loaded, 1u);

  // Torn tail is survivable: intact prefix replaces the registry.
  std::vector<Macromodel> two = {simple_model("adder", "symbolic", 9.0),
                                 simple_model("mult", "symbolic")};
  const std::string torn = temp_model_path("life_torn");
  ASSERT_TRUE(model::save_models_file(torn, two, err)) << err;
  {
    FILE* f = std::fopen(torn.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    std::fclose(f);
    ASSERT_EQ(::truncate(torn.c_str(), size - 25), 0);
  }
  ms = service.load_models(torn);
  ASSERT_TRUE(ms.ok()) << ms.error;
  EXPECT_EQ(ms.count, 1u);
  EXPECT_GT(ms.torn_bytes, 0u);
  ASSERT_NE(service.models(), nullptr);
  const Macromodel* m = service.models()->find("adder", "symbolic");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->intercept, 9.0);  // hot-reload really swapped the registry

  for (const std::string& p : {good, bad, skew, torn}) std::remove(p.c_str());
}

TEST(ServeModelLifecycle, HotReloadRaceIsSafeUnderConcurrentPredictions) {
  // Two registry files with different models for the same key; reload flips
  // between them while reader threads hammer the predicted tier. TSan-clean
  // by construction: readers snapshot the shared_ptr, writers swap it.
  const std::string a = temp_model_path("race_a");
  const std::string b = temp_model_path("race_b");
  std::string err;
  {
    // Hulls wide enough that adder:8's real features are inside.
    Macromodel ma = simple_model("adder", "symbolic", 1.0);
    Macromodel mb = simple_model("adder", "symbolic", 2.0);
    for (std::size_t i = 0; i < kFeatureCount; ++i) {
      ma.hull_lo[i] = mb.hull_lo[i] = -1e9;
      ma.hull_hi[i] = mb.hull_hi[i] = 1e9;
    }
    std::vector<Macromodel> va = {ma}, vb = {mb};
    ASSERT_TRUE(model::save_models_file(a, va, err)) << err;
    ASSERT_TRUE(model::save_models_file(b, vb, err)) << err;
  }

  ServiceOptions opts;
  opts.workers = 0;
  opts.executor = [](const jobs::KernelRequest&, const exec::Budget&) {
    jobs::AttemptOutcome ao;
    ao.ok = true;
    ao.out.value = 7.0;
    return ao;
  };
  Service service(opts);
  ASSERT_TRUE(service.load_models(a).ok());

  const std::string line = accuracy_request("adder:8", 0.99).serialize();
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> answered{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        ResponseView v;
        ASSERT_TRUE(serve::parse_response(service.handle_line(line), v));
        ASSERT_TRUE(v.ok);
        answered.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (int i = 0; i < 60; ++i) {
    ASSERT_TRUE(service.load_models(i % 2 ? b : a).ok());
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  stop.store(true);
  for (std::thread& th : readers) th.join();
  EXPECT_GT(answered.load(), 0u);
  const serve::ServiceHealth h = service.health();
  EXPECT_EQ(h.model_predicted + h.model_escalated + h.model_out_of_hull +
                h.model_miss,
            answered.load());
  std::remove(a.c_str());
  std::remove(b.c_str());
}

// --- Characterization campaign plumbing -------------------------------------

TEST(ModelCharacterize, GridJobsAreDeterministicAndLedgerResumable) {
  model::SweepSpec spec;
  spec.family = "adder";
  spec.params = {4, 6};
  spec.input_p = {0.3, 0.5};
  const std::vector<jobs::Job> js = model::sweep_jobs(spec);
  ASSERT_EQ(js.size(), 4u);
  // Ids are stable text: same spec -> same ids (they seed the RNG).
  const std::vector<jobs::Job> js2 = model::sweep_jobs(spec);
  for (std::size_t i = 0; i < js.size(); ++i) EXPECT_EQ(js[i].id, js2[i].id);
  EXPECT_NE(js[0].id, js[1].id);

  // Biased-MC labels at p != 0.5 differ from the p = 0.5 labels.
  jobs::RunnerOptions ropts;
  ropts.workers = 2;
  const model::Characterization ch = model::characterize(spec, ropts);
  ASSERT_TRUE(ch.complete());
  ASSERT_EQ(ch.rows.size(), 4u);
  double p03 = 0.0, p05 = 0.0;
  for (const model::Row& r : ch.rows) {
    if (r.design == "adder:4" && r.input_p == 0.3) p03 = r.power;
    if (r.design == "adder:4" && r.input_p == 0.5) p05 = r.power;
  }
  EXPECT_GT(p03, 0.0);
  EXPECT_GT(p05, 0.0);
  EXPECT_NE(p03, p05);

  // Re-running the same campaign reproduces every label bit for bit.
  const model::Characterization ch2 = model::characterize(spec, ropts);
  ASSERT_EQ(ch2.rows.size(), ch.rows.size());
  for (std::size_t i = 0; i < ch.rows.size(); ++i)
    EXPECT_EQ(ch.rows[i].power, ch2.rows[i].power) << ch.rows[i].design;
}

}  // namespace
