#include <gtest/gtest.h>

#include <new>

#include "bdd/netlist_bdd.hpp"
#include "core/sampling_power.hpp"
#include "exec/fi.hpp"
#include "fsm/markov.hpp"
#include "netlist/generators.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace hlp;
using exec::StopReason;

/// Every test leaves the thread-local FI state disarmed even on failure.
struct FiGuard {
  FiGuard() { fi::disarm(); }
  ~FiGuard() { fi::disarm(); }
};

// --- Harness mechanics -------------------------------------------------------

TEST(FaultInjection, AllocCheckpointFiresAtExactIndex) {
  FiGuard guard;
  fi::alloc_checkpoint();
  fi::alloc_checkpoint();
  EXPECT_EQ(fi::alloc_checkpoints(), 2u);  // counted even while disarmed

  fi::arm_alloc_failure(1);
  EXPECT_NO_THROW(fi::alloc_checkpoint());               // index 0
  EXPECT_THROW(fi::alloc_checkpoint(), std::bad_alloc);  // index 1: fires
  EXPECT_NO_THROW(fi::alloc_checkpoint());               // single-shot
}

TEST(FaultInjection, CancelCheckpointIsStickyFromArmedStep) {
  FiGuard guard;
  fi::arm_cancel_at_step(2);
  exec::CancelToken tok;
  fi::step_checkpoint(tok);
  fi::step_checkpoint(tok);
  EXPECT_FALSE(tok.cancel_requested());
  fi::step_checkpoint(tok);  // step 2: fires
  EXPECT_TRUE(tok.cancel_requested());
  exec::CancelToken late;  // later kernels keep getting cancelled
  fi::step_checkpoint(late);
  EXPECT_TRUE(late.cancel_requested());
}

// --- BDD kernel: allocation-failure sweep ------------------------------------

TEST(FaultInjection, BddManagerSurvivesAllocFailureSweep) {
  FiGuard guard;
  auto mod = netlist::multiplier_module(3);  // 6 inputs: full truth check
  const netlist::GateId out0 = mod.netlist.outputs()[0];

  // Discovery run: count the injection points one construction passes.
  {
    bdd::Manager ref;
    (void)bdd::build_bdds(ref, mod.netlist);
  }
  const std::uint64_t n = fi::alloc_checkpoints();
  ASSERT_GT(n, 0u);

  sim::Simulator s(mod.netlist);
  auto truth_check = [&](bdd::Manager& m, bdd::NodeRef f) {
    for (std::uint64_t a = 0; a < 64; ++a) {
      s.set_all_inputs(a);
      s.eval();
      ASSERT_EQ(m.eval(f, a), s.value(out0)) << "assignment " << a;
    }
  };

  std::uint64_t injected = 0;
  for (std::uint64_t i = 0; i < n; i += 7) {
    bdd::Manager m;
    fi::arm_alloc_failure(i);
    bool threw = false;
    try {
      (void)bdd::build_bdds(m, mod.netlist);
    } catch (const std::bad_alloc&) {
      threw = true;
      ++injected;
    }
    fi::disarm();
    if (!threw) continue;
    // Strong guarantee: the manager that just lost an allocation mid-ITE
    // must still be fully usable — rebuild in it and truth-check.
    auto bdds = bdd::build_bdds(m, mod.netlist);
    truth_check(m, bdds.fn[out0]);
  }
  EXPECT_GT(injected, 0u);
}

// --- Markov kernel: cancellation sweep ---------------------------------------

TEST(FaultInjection, MarkovCancellationSweepKeepsDistributionValid) {
  FiGuard guard;
  auto stg = fsm::random_fsm(32, 2, 2, 5);

  auto full = fsm::analyze_markov_budgeted(stg, exec::Budget{});
  ASSERT_TRUE(full->converged);
  const std::uint64_t n = fi::step_checkpoints();
  ASSERT_GT(n, 0u);

  const std::uint64_t stride = n > 40 ? n / 40 : 1;
  for (std::uint64_t i = 0; i < n; i += stride) {
    fi::arm_cancel_at_step(i);
    exec::Budget b;  // fresh token per injection
    auto out = fsm::analyze_markov_budgeted(stg, b);
    fi::disarm();
    EXPECT_EQ(out.diag.stop, StopReason::Cancelled) << "inject at " << i;
    EXPECT_FALSE(out->converged);
    EXPECT_LE(out->iterations, static_cast<int>(i));
    // The abandoned iterate is still a probability distribution.
    ASSERT_EQ(out->state_prob.size(), stg.num_states());
    double sum = 0.0;
    for (double p : out->state_prob) {
      EXPECT_GE(p, 0.0);
      sum += p;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9) << "inject at " << i;
  }

  // No residue: a clean rerun converges to the same steady state.
  auto again = fsm::analyze_markov_budgeted(stg, exec::Budget{});
  ASSERT_TRUE(again->converged);
  for (std::size_t s = 0; s < stg.num_states(); ++s)
    EXPECT_DOUBLE_EQ(again->state_prob[s], full->state_prob[s]);
}

TEST(FaultInjection, MarkovAllocFailureSweepLosesNoExceptions) {
  FiGuard guard;
  auto stg = fsm::random_fsm(16, 1, 1, 7);
  (void)fsm::analyze_markov(stg);
  const std::uint64_t n = fi::alloc_checkpoints();
  ASSERT_GT(n, 0u);
  for (std::uint64_t i = 0; i < n; ++i) {
    fi::arm_alloc_failure(i);
    // Every armed index must surface as std::bad_alloc — never swallowed,
    // never converted (a catch(...) in the kernel would break this).
    EXPECT_THROW((void)fsm::analyze_markov(stg), std::bad_alloc)
        << "inject at " << i;
    fi::disarm();
  }
  auto clean = fsm::analyze_markov(stg);
  EXPECT_TRUE(clean.converged);
}

// --- Monte Carlo kernel: both fault kinds ------------------------------------

TEST(FaultInjection, MonteCarloAllocFailureSweepIsClean) {
  FiGuard guard;
  auto mod = netlist::adder_module(6);
  auto run = [&] {
    stats::Rng rng(3);
    return core::monte_carlo_power(
        mod, [&] { return rng.uniform_bits(12); }, 0.05, 0.95, 30, 500);
  };
  (void)run();
  const std::uint64_t n = fi::alloc_checkpoints();
  ASSERT_GT(n, 0u);
  for (std::uint64_t i = 0; i < n; ++i) {
    fi::arm_alloc_failure(i);
    EXPECT_THROW((void)run(), std::bad_alloc) << "inject at " << i;
    fi::disarm();
  }
  auto clean = run();
  EXPECT_GT(clean.pairs, 0u);
}

TEST(FaultInjection, MonteCarloCancellationCountsOnlyPaidPairs) {
  FiGuard guard;
  auto mod = netlist::adder_module(6);
  for (std::uint64_t i : {std::uint64_t{0}, std::uint64_t{1},
                          std::uint64_t{63}, std::uint64_t{64},
                          std::uint64_t{100}}) {
    // Scalar engine: one meter step per pair, so cancellation at step i
    // preserves exactly i pairs of statistics.
    fi::arm_cancel_at_step(i);
    stats::Rng rng(3);
    exec::Budget b;
    sim::SimOptions scalar{sim::EngineKind::Scalar};
    auto out = core::monte_carlo_power_budgeted(
        mod, [&] { return rng.uniform_bits(12); }, b, 1e-6, 0.95, 30, 400, {},
        scalar);
    fi::disarm();
    EXPECT_EQ(out.diag.stop, StopReason::Cancelled) << "inject at " << i;
    EXPECT_EQ(out->stop_reason,
              core::MonteCarloResult::StopReason::BudgetExhausted);
    EXPECT_EQ(out->pairs, i) << "inject at " << i;
    EXPECT_EQ(out->checkpoint.count, i);

    // Packed engine: the meter is charged one block of pairs per probe, so
    // a cancellation inside a block rejects that whole (not yet drawn)
    // block — only fully-paid blocks survive, and the count is the largest
    // block boundary at or below i.
    fi::arm_cancel_at_step(i);
    stats::Rng rng_p(3);
    exec::Budget bp;
    sim::SimOptions packed{sim::EngineKind::Packed};
    packed.block_words = 1;  // 64-pair blocks
    auto outp = core::monte_carlo_power_budgeted(
        mod, [&] { return rng_p.uniform_bits(12); }, bp, 1e-6, 0.95, 30, 400,
        {}, packed);
    fi::disarm();
    EXPECT_EQ(outp.diag.stop, StopReason::Cancelled) << "inject at " << i;
    EXPECT_EQ(outp->stop_reason,
              core::MonteCarloResult::StopReason::BudgetExhausted);
    EXPECT_EQ(outp->pairs, i / 64 * 64) << "inject at " << i;
    EXPECT_EQ(outp->checkpoint.count, i / 64 * 64);
  }
}

}  // namespace
