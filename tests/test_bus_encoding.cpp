#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "core/bus_encoding.hpp"

namespace {

using namespace hlp;
using namespace hlp::core;

std::vector<std::unique_ptr<BusEncoder>> all_encoders(
    int w, const std::vector<std::uint64_t>& training) {
  std::vector<std::unique_ptr<BusEncoder>> v;
  v.push_back(binary_encoder(w));
  v.push_back(gray_encoder(w));
  v.push_back(bus_invert_encoder(w));
  v.push_back(t0_encoder(w));
  v.push_back(t0_bi_encoder(w));
  v.push_back(working_zone_encoder(w, 4, 4));
  v.push_back(beach_encoder(w, training, 4));
  return v;
}

TEST(BusEncoders, RoundTripOnRandomStreams) {
  stats::Rng rng(3);
  const int w = 12;
  auto training = random_data_stream(500, w, rng);
  auto stream = random_data_stream(2000, w, rng);
  for (auto& enc : all_encoders(w, training)) {
    EXPECT_NO_THROW(run_encoder(*enc, stream, w)) << enc->name();
  }
}

TEST(BusEncoders, RoundTripOnSequentialStreams) {
  stats::Rng rng(4);
  const int w = 12;
  auto training = address_stream(500, 0.9, w, rng);
  auto stream = address_stream(2000, 0.9, w, rng);
  for (auto& enc : all_encoders(w, training)) {
    EXPECT_NO_THROW(run_encoder(*enc, stream, w)) << enc->name();
  }
}

TEST(BusInvert, NeverExceedsHalfWidthPerWord) {
  stats::Rng rng(5);
  const int w = 8;
  auto enc = bus_invert_encoder(w);
  enc->reset();
  std::uint64_t prev = 0;
  bool first = true;
  for (int i = 0; i < 2000; ++i) {
    std::uint64_t phys = enc->encode(rng.uniform_bits(w));
    if (!first) {
      EXPECT_LE(__builtin_popcountll(phys ^ prev), w / 2 + 1);
    }
    prev = phys;
    first = false;
  }
}

TEST(BusInvert, BeatsBinaryOnRandomData) {
  stats::Rng rng(6);
  const int w = 16;
  auto stream = random_data_stream(5000, w, rng);
  auto bin = binary_encoder(w);
  auto bi = bus_invert_encoder(w);
  auto r_bin = run_encoder(*bin, stream, w);
  auto r_bi = run_encoder(*bi, stream, w);
  EXPECT_LT(r_bi.per_word, r_bin.per_word);
}

TEST(Gray, OneTransitionPerSequentialAddress) {
  const int w = 12;
  std::vector<std::uint64_t> seq;
  for (std::uint64_t a = 0; a < 3000; ++a) seq.push_back(a & 0xFFF);
  auto enc = gray_encoder(w);
  auto r = run_encoder(*enc, seq, w);
  // Asymptotically exactly 1 transition per address (paper claim).
  EXPECT_NEAR(r.per_word, 1.0, 0.01);
  auto bin = binary_encoder(w);
  auto rb = run_encoder(*bin, seq, w);
  EXPECT_NEAR(rb.per_word, 2.0, 0.05);  // binary counter averages ~2
}

TEST(T0, ZeroTransitionsOnPureSequence) {
  const int w = 12;
  std::vector<std::uint64_t> seq;
  for (std::uint64_t a = 100; a < 2100; ++a) seq.push_back(a & 0xFFF);
  auto enc = t0_encoder(w);
  auto r = run_encoder(*enc, seq, w);
  // After the first address, the bus freezes and INC stays high:
  // asymptotically zero transitions (the paper's T0 claim).
  EXPECT_LT(r.per_word, 0.01);
}

TEST(T0, DegradesGracefullyOnMixedStreams) {
  stats::Rng rng(8);
  const int w = 12;
  auto mixed = address_stream(4000, 0.5, w, rng);
  auto t0 = t0_encoder(w);
  auto bin = binary_encoder(w);
  auto r_t0 = run_encoder(*t0, mixed, w);
  auto r_bin = run_encoder(*bin, mixed, w);
  EXPECT_LT(r_t0.per_word, r_bin.per_word);
}

TEST(WorkingZone, WinsOnInterleavedArrays) {
  stats::Rng rng(9);
  const int w = 14;
  auto stream = interleaved_array_stream(4000, 4, w, rng);
  auto wz = working_zone_encoder(w, 4, 4);
  auto gray = gray_encoder(w);
  auto t0 = t0_encoder(w);
  auto r_wz = run_encoder(*wz, stream, w);
  auto r_gray = run_encoder(*gray, stream, w);
  auto r_t0 = run_encoder(*t0, stream, w);
  // Interleaving destroys plain sequentiality: WZ restores it.
  EXPECT_LT(r_wz.per_word, r_gray.per_word);
  EXPECT_LT(r_wz.per_word, r_t0.per_word);
}

TEST(Beach, ExploitsTrainedCorrelations) {
  stats::Rng rng(10);
  const int w = 12;
  // Strongly block-correlated stream: same pattern class repeats.
  std::vector<std::uint64_t> stream;
  std::uint64_t patterns[4] = {0x000, 0x0FF, 0xF0F, 0xFFF};
  int state = 0;
  for (int i = 0; i < 6000; ++i) {
    // Markov walk among patterns; adjacent patterns differ a lot in binary.
    if (rng.bit(0.3)) state = (state + 1) % 4;
    stream.push_back(patterns[state]);
  }
  std::vector<std::uint64_t> training(stream.begin(), stream.begin() + 2000);
  auto beach = beach_encoder(w, training, 6);
  auto bin = binary_encoder(w);
  auto r_beach = run_encoder(*beach, stream, w);
  auto r_bin = run_encoder(*bin, stream, w);
  EXPECT_LT(r_beach.per_word, r_bin.per_word);
}

TEST(Beach, IsBijective) {
  stats::Rng rng(11);
  const int w = 8;
  auto training = random_data_stream(300, w, rng);
  auto enc = beach_encoder(w, training, 4);
  std::set<std::uint64_t> images;
  for (std::uint64_t v = 0; v < 256; ++v) images.insert(enc->encode(v));
  EXPECT_EQ(images.size(), 256u);
}

TEST(StreamGenerators, SequentialFractionRespected) {
  stats::Rng rng(12);
  auto s = address_stream(10000, 0.8, 16, rng);
  std::size_t seq = 0;
  for (std::size_t i = 1; i < s.size(); ++i)
    if (s[i] == ((s[i - 1] + 1) & 0xFFFF)) ++seq;
  EXPECT_NEAR(static_cast<double>(seq) / static_cast<double>(s.size() - 1),
              0.8, 0.03);
}

class EncoderParam : public ::testing::TestWithParam<int> {};

TEST_P(EncoderParam, AllWidthsRoundTrip) {
  int w = GetParam();
  stats::Rng rng(13);
  auto training = address_stream(300, 0.7, w, rng);
  auto stream = address_stream(1000, 0.7, w, rng);
  for (auto& enc : all_encoders(w, training))
    EXPECT_NO_THROW(run_encoder(*enc, stream, w)) << enc->name() << " w=" << w;
}

INSTANTIATE_TEST_SUITE_P(Widths, EncoderParam,
                         ::testing::Values(8, 10, 16, 24, 32));

}  // namespace
