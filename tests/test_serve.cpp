#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstring>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "exec/fi.hpp"
#include "fsm/benchmarks.hpp"
#include "fsm/stg.hpp"
#include "jobs/kernels.hpp"
#include "netlist/netlist.hpp"
#include "serve/cache.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"
#include "serve/singleflight.hpp"
#include "serve/workerpool.hpp"

namespace {

using namespace hlp;
using serve::Op;
using serve::Request;
using serve::ResponseView;
using serve::ResultCache;
using serve::Service;
using serve::ServiceOptions;
using serve::SingleFlight;

bool wait_until(const std::function<bool()>& pred, double seconds = 10.0) {
  const auto t0 = std::chrono::steady_clock::now();
  while (!pred()) {
    if (std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count() > seconds) {
      return false;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

// --- Protocol ---------------------------------------------------------------

TEST(Protocol, FullRequestRoundTripsAndSerializeIsAFixedPoint) {
  Request rq;
  rq.op = Op::Estimate;
  rq.id = "client-7";
  rq.kind = jobs::JobKind::MonteCarlo;
  rq.design = "alu:12";
  rq.has_seed = true;
  rq.seed = 12345678901234567ull;
  rq.epsilon = 0.01;
  rq.confidence = 0.99;
  rq.min_pairs = 50;
  rq.max_pairs = 5000;
  rq.max_iters = 300;
  rq.deadline_seconds = 1.5;
  rq.node_cap = 20000;
  rq.step_quota = 1000000;
  rq.memory_cap_bytes = 1u << 20;
  rq.use_cache = false;

  const std::string line = rq.serialize();
  Request back;
  std::string error;
  ASSERT_TRUE(Request::parse(line, back, error)) << error;
  EXPECT_EQ(back, rq);
  EXPECT_EQ(back.serialize(), line);
}

TEST(Protocol, MinimalEstimateGetsDefaults) {
  Request rq;
  std::string error;
  ASSERT_TRUE(
      Request::parse("{\"op\":\"estimate\",\"design\":\"adder:4\"}", rq, error))
      << error;
  EXPECT_EQ(rq.op, Op::Estimate);
  EXPECT_EQ(rq.kind, jobs::JobKind::MonteCarlo);
  EXPECT_EQ(rq.design, "adder:4");
  EXPECT_FALSE(rq.has_seed);
  EXPECT_TRUE(rq.use_cache);
  EXPECT_EQ(rq.epsilon, 0.02);
  EXPECT_EQ(rq.deadline_seconds, 0.0);
}

TEST(Protocol, HealthOpRoundTrips) {
  Request rq;
  rq.op = Op::Health;
  rq.id = "h";
  const std::string line = rq.serialize();
  Request back;
  std::string error;
  ASSERT_TRUE(Request::parse(line, back, error)) << error;
  EXPECT_EQ(back.op, Op::Health);
  EXPECT_EQ(back.id, "h");
  EXPECT_EQ(back.serialize(), line);
}

TEST(Protocol, AcceptsKeysInAnyOrder) {
  Request rq;
  std::string error;
  ASSERT_TRUE(Request::parse(
      "{\"design\":\"mult:6\",\"seed\":9,\"kind\":\"symbolic\","
      "\"op\":\"estimate\"}",
      rq, error))
      << error;
  EXPECT_EQ(rq.kind, jobs::JobKind::Symbolic);
  EXPECT_EQ(rq.design, "mult:6");
  EXPECT_TRUE(rq.has_seed);
  EXPECT_EQ(rq.seed, 9u);
}

TEST(Protocol, RejectsMalformedRequests) {
  const char* bad[] = {
      "",
      "not json",
      "[1,2]",
      "{\"op\":\"estimate\",\"design\":\"adder:4\"",      // unterminated
      "{\"op\":\"estimate\",\"design\":\"adder:4\"}x",    // trailing garbage
      "{\"design\":\"adder:4\"}",                         // missing op
      "{\"op\":\"estimate\"}",                            // missing design
      "{\"op\":\"nosuch\",\"design\":\"adder:4\"}",       // unknown op
      "{\"op\":\"estimate\",\"design\":\"adder:4\",\"zz\":1}",  // unknown key
      "{\"op\":\"estimate\",\"design\":\"a\",\"design\":\"b\"}",  // duplicate
      "{\"op\":\"estimate\",\"kind\":\"custom\",\"design\":\"x\"}",
      "{\"op\":\"estimate\",\"design\":\"adder:4\",\"epsilon\":0}",
      "{\"op\":\"estimate\",\"design\":\"adder:4\",\"confidence\":1.0}",
      "{\"op\":\"estimate\",\"design\":\"adder:4\",\"max-iters\":0}",
      "{\"op\":\"estimate\",\"design\":\"adder:4\",\"deadline\":-1}",
      "{\"op\":\"ping\",\"design\":\"adder:4\"}",  // estimate-only key
      "{\"op\":\"metrics\",\"seed\":3}",
  };
  for (const char* line : bad) {
    Request rq;
    std::string error;
    EXPECT_FALSE(Request::parse(line, rq, error)) << line;
    EXPECT_FALSE(error.empty()) << line;
  }
}

TEST(Protocol, RejectsOversizedLine) {
  std::string line = "{\"op\":\"estimate\",\"design\":\"";
  line.append(serve::kMaxLineBytes, 'a');
  line += "\"}";
  Request rq;
  std::string error;
  EXPECT_FALSE(Request::parse(line, rq, error));
  EXPECT_NE(error.find("bytes"), std::string::npos);
}

TEST(Protocol, ResponseWritersParseBack) {
  ResponseView v;
  ASSERT_TRUE(serve::parse_response(
      serve::make_value_response("id1", 42.5, "bdd exact", false), v));
  EXPECT_TRUE(v.ok);
  EXPECT_EQ(v.id, "id1");
  EXPECT_TRUE(v.has_value);
  EXPECT_EQ(v.value, 42.5);
  EXPECT_FALSE(v.degraded);
  EXPECT_EQ(v.detail, "bdd exact");

  ResponseView e;
  ASSERT_TRUE(serve::parse_response(
      serve::make_error_response({}, "shed", "too busy"), e));
  EXPECT_FALSE(e.ok);
  EXPECT_EQ(e.error, "shed");
  EXPECT_TRUE(e.id.empty());

  ResponseView p;
  ASSERT_TRUE(serve::parse_response(serve::make_ping_response(), p));
  EXPECT_TRUE(p.ok);
}

TEST(Protocol, ResponseParserToleratesUnknownKeys) {
  ResponseView v;
  ASSERT_TRUE(serve::parse_response(
      "{\"ok\":true,\"value\":3.5,\"future-field\":\"x\",\"flag\":true,"
      "\"n\":12}",
      v));
  EXPECT_TRUE(v.ok);
  EXPECT_EQ(v.value, 3.5);
}

// --- Result cache -----------------------------------------------------------

TEST(ResultCache, LookupMissThenHit) {
  ResultCache cache(1 << 16, 4);
  std::string out;
  EXPECT_FALSE(cache.lookup("k1", out));
  cache.insert("k1", "v1");
  ASSERT_TRUE(cache.lookup("k1", out));
  EXPECT_EQ(out, "v1");
  const serve::CacheStats st = cache.stats();
  EXPECT_EQ(st.hits, 1u);
  EXPECT_EQ(st.misses, 1u);
  EXPECT_EQ(st.insertions, 1u);
  EXPECT_EQ(st.entries, 1u);
  EXPECT_GT(st.bytes, 0u);
}

TEST(ResultCache, EvictsLeastRecentlyUsedUnderByteCap) {
  // Single shard so LRU order is global. Budget fits exactly two entries.
  const std::size_t entry = 2 + 10 + ResultCache::kEntryOverhead;
  ResultCache cache(2 * entry, 1);
  cache.insert("ka", std::string(10, 'a'));
  cache.insert("kb", std::string(10, 'b'));
  std::string out;
  ASSERT_TRUE(cache.lookup("ka", out));  // promote ka over kb
  cache.insert("kc", std::string(10, 'c'));
  EXPECT_TRUE(cache.lookup("ka", out));
  EXPECT_FALSE(cache.lookup("kb", out)) << "LRU entry should have been evicted";
  EXPECT_TRUE(cache.lookup("kc", out));
  const serve::CacheStats st = cache.stats();
  EXPECT_EQ(st.evictions, 1u);
  EXPECT_EQ(st.entries, 2u);
  EXPECT_LE(st.bytes, 2 * entry);
}

TEST(ResultCache, RefusesEntryLargerThanAShard) {
  ResultCache cache(256, 1);
  cache.insert("big", std::string(4096, 'x'));
  std::string out;
  EXPECT_FALSE(cache.lookup("big", out));
  EXPECT_EQ(cache.stats().insertions, 0u);
}

TEST(ResultCache, ZeroCapacityDisablesCaching) {
  ResultCache cache(0, 8);
  cache.insert("k", "v");
  std::string out;
  EXPECT_FALSE(cache.lookup("k", out));
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(ResultCache, UpdatingAKeyReplacesItsValueAndAccounting) {
  ResultCache cache(1 << 16, 1);
  cache.insert("k", "short");
  cache.insert("k", "a-considerably-longer-value");
  std::string out;
  ASSERT_TRUE(cache.lookup("k", out));
  EXPECT_EQ(out, "a-considerably-longer-value");
  EXPECT_EQ(cache.stats().entries, 1u);
}

TEST(ResultCache, ConcurrentMixedAccessStaysConsistent) {
  ResultCache cache(1 << 14, 4);
  std::vector<std::thread> threads;
  std::atomic<int> bad{0};
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&cache, &bad, t] {
      for (int i = 0; i < 500; ++i) {
        const std::string key = "k" + std::to_string((t * 7 + i) % 40);
        const std::string val = "v" + std::to_string((t * 7 + i) % 40);
        std::string out;
        if (cache.lookup(key, out) && out != val) bad.fetch_add(1);
        cache.insert(key, val);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(bad.load(), 0) << "a key returned another key's value";
  const serve::CacheStats st = cache.stats();
  EXPECT_EQ(st.hits + st.misses, 8u * 500u);
}

// --- Single flight ----------------------------------------------------------

TEST(SingleFlightTest, ConcurrentCallersShareOneExecution) {
  SingleFlight sf;
  std::atomic<int> runs{0};
  std::atomic<int> arrived{0};
  constexpr int kThreads = 8;
  std::vector<SingleFlight::Result> results(kThreads);
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      arrived.fetch_add(1);
      results[i] = sf.run("key", [&] {
        runs.fetch_add(1);
        // Hold the flight open until every thread has at least called
        // run(), so followers coalesce instead of starting a generation.
        wait_until([&] { return arrived.load() == kThreads; });
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
        return std::string("answer");
      });
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(runs.load(), 1);
  int leaders = 0;
  for (const auto& r : results) {
    EXPECT_EQ(r.value, "answer");
    leaders += r.leader ? 1 : 0;
  }
  EXPECT_EQ(leaders, 1);
}

TEST(SingleFlightTest, LeaderExceptionReachesEveryWaiter) {
  SingleFlight sf;
  std::atomic<int> arrived{0};
  std::atomic<int> caught{0};
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&] {
      arrived.fetch_add(1);
      try {
        sf.run("boom", [&]() -> std::string {
          wait_until([&] { return arrived.load() == kThreads; });
          std::this_thread::sleep_for(std::chrono::milliseconds(50));
          throw std::runtime_error("kernel exploded");
        });
      } catch (const std::runtime_error& e) {
        if (std::string(e.what()) == "kernel exploded") caught.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(caught.load(), kThreads);
}

TEST(SingleFlightTest, GenerationsRetireAfterCompletion) {
  SingleFlight sf;
  int runs = 0;
  auto r1 = sf.run("k", [&] { ++runs; return std::string("a"); });
  auto r2 = sf.run("k", [&] { ++runs; return std::string("b"); });
  EXPECT_TRUE(r1.leader);
  EXPECT_TRUE(r2.leader);
  EXPECT_EQ(runs, 2);
  EXPECT_EQ(r2.value, "b");  // no memoization across generations
}

// --- Structural fingerprints ------------------------------------------------

TEST(Fingerprint, NetlistHashIgnoresNamesButNotStructure) {
  auto build = [](const char* n1, const char* n2, bool extra_not_gate) {
    netlist::Netlist nl;
    const auto a = nl.add_input(n1);
    const auto b = nl.add_input(n2);
    auto g = nl.add_binary(netlist::GateKind::And, a, b, "g");
    if (extra_not_gate) g = nl.add_unary(netlist::GateKind::Not, g, "inv");
    nl.mark_output(g, "out");
    return nl;
  };
  const auto h1 = netlist::structural_hash(build("x", "y", false));
  const auto h2 = netlist::structural_hash(build("p", "q", false));
  const auto h3 = netlist::structural_hash(build("x", "y", true));
  EXPECT_EQ(h1, h2) << "names must not affect the fingerprint";
  EXPECT_NE(h1, h3) << "structure must affect the fingerprint";
}

TEST(Fingerprint, DesignSpecsHashStablyAndDistinctly) {
  EXPECT_EQ(netlist::structural_hash(jobs::make_module("adder:8").netlist),
            netlist::structural_hash(jobs::make_module("adder:8").netlist));
  EXPECT_NE(netlist::structural_hash(jobs::make_module("adder:8").netlist),
            netlist::structural_hash(jobs::make_module("adder:16").netlist));
  EXPECT_EQ(cdfg::structural_hash(jobs::make_cdfg("fir:8")),
            cdfg::structural_hash(jobs::make_cdfg("fir:8")));
  EXPECT_NE(cdfg::structural_hash(jobs::make_cdfg("fir:8")),
            cdfg::structural_hash(jobs::make_cdfg("fir:16")));
  EXPECT_EQ(fsm::structural_hash(fsm::controller_by_name("dma")),
            fsm::structural_hash(fsm::controller_by_name("dma")));
  EXPECT_NE(fsm::structural_hash(fsm::counter_fsm(4)),
            fsm::structural_hash(fsm::counter_fsm(5)));
}

// --- Service: keys ----------------------------------------------------------

Request estimate_request(const std::string& design,
                         jobs::JobKind kind = jobs::JobKind::MonteCarlo) {
  Request rq;
  rq.op = Op::Estimate;
  rq.kind = kind;
  rq.design = design;
  return rq;
}

TEST(ServeKeys, DefaultSeedIsContentAddressed) {
  Service service;
  Request rq = estimate_request("adder:8");
  const Service::Keys k1 = service.keys(rq);
  const Service::Keys k2 = service.keys(rq);
  EXPECT_EQ(k1.cache_key, k2.cache_key);
  EXPECT_EQ(k1.seed, k2.seed);

  Request with_seed = rq;
  with_seed.has_seed = true;
  with_seed.seed = 5;
  const Service::Keys k3 = service.keys(with_seed);
  EXPECT_EQ(k3.seed, 5u);
  EXPECT_NE(k3.cache_key, k1.cache_key);
}

TEST(ServeKeys, BudgetFieldsAffectFlightKeyOnly) {
  Service service;
  Request rq = estimate_request("adder:8");
  Request budgeted = rq;
  budgeted.node_cap = 100000;
  budgeted.deadline_seconds = 2.5;
  const Service::Keys plain = service.keys(rq);
  const Service::Keys limited = service.keys(budgeted);
  EXPECT_EQ(plain.cache_key, limited.cache_key)
      << "budget must not change the cache key";
  EXPECT_NE(plain.flight_key, limited.flight_key)
      << "budget must separate flights";
}

TEST(ServeKeys, KindAndParametersSeparateKeys) {
  Service service;
  const auto mc = service.keys(estimate_request("adder:8"));
  const auto sym =
      service.keys(estimate_request("adder:8", jobs::JobKind::Symbolic));
  EXPECT_NE(mc.cache_key, sym.cache_key);

  Request tighter = estimate_request("adder:8");
  tighter.epsilon = 0.01;
  EXPECT_NE(service.keys(tighter).cache_key, mc.cache_key)
      << "monte-carlo accuracy parameters are part of the result identity";
}

TEST(ServeKeys, InvalidDesignThrows) {
  Service service;
  EXPECT_THROW(service.keys(estimate_request("nosuch:4")),
               std::invalid_argument);
}

// --- Service: request handling ---------------------------------------------

TEST(Serve, EightConcurrentIdenticalRequestsExecuteOnceBitIdentically) {
  std::atomic<int> executions{0};
  std::atomic<int> arrived{0};
  constexpr int kClients = 8;
  ServiceOptions opts;
  opts.executor = [&](const jobs::KernelRequest& krq, const exec::Budget& b) {
    executions.fetch_add(1);
    if (krq.seed == 7) {
      // Hold the flight open until all clients have submitted, so the
      // other seven must coalesce rather than miss-and-lead.
      wait_until([&] { return arrived.load() == kClients; });
      std::this_thread::sleep_for(std::chrono::milliseconds(200));
    }
    return jobs::run_kernel(krq, b);
  };
  Service service(opts);

  Request rq = estimate_request("adder:8");
  rq.epsilon = 0.05;
  rq.has_seed = true;
  rq.seed = 7;
  const std::string line = rq.serialize();

  // Warm the fingerprint memo (different seed: does not gate, not the same
  // cache line) so the per-client path to the flight table is short.
  Request warm = rq;
  warm.seed = 999;
  ASSERT_NE(service.handle_line(warm.serialize()).find("\"ok\":true"),
            std::string::npos);
  ASSERT_EQ(executions.load(), 1);

  std::vector<std::string> responses(kClients);
  std::vector<std::thread> threads;
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      arrived.fetch_add(1);
      responses[i] = service.handle_line(line);
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(executions.load(), 2) << "the batch must execute exactly once";
  for (int i = 1; i < kClients; ++i) {
    EXPECT_EQ(responses[i], responses[0]) << "client " << i;
  }
  const serve::ServiceMetrics m = service.metrics();
  EXPECT_EQ(m.misses, 2u);  // warm-up + batch leader
  EXPECT_EQ(m.coalesced, 7u);
  EXPECT_EQ(m.hits, 0u);

  // The coalesced answer matches an uncached, single-client run bit for
  // bit (kernel determinism end to end).
  ServiceOptions plain_opts;
  plain_opts.cache_bytes = 0;
  Service plain(plain_opts);
  EXPECT_EQ(plain.handle_line(line), responses[0]);

  // And a later identical request is a cache hit with identical bytes.
  EXPECT_EQ(service.handle_line(line), responses[0]);
  EXPECT_EQ(service.metrics().hits, 1u);
}

TEST(Serve, CacheHitSkipsExecutionAndIgnoresBudgetFields) {
  std::atomic<int> executions{0};
  ServiceOptions opts;
  opts.executor = [&](const jobs::KernelRequest& krq, const exec::Budget& b) {
    executions.fetch_add(1);
    return jobs::run_kernel(krq, b);
  };
  Service service(opts);
  Request rq = estimate_request("adder:6");
  rq.epsilon = 0.05;
  const std::string r1 = service.handle_line(rq.serialize());
  Request budgeted = rq;
  budgeted.step_quota = 1000000000;
  budgeted.deadline_seconds = 30.0;
  const std::string r2 = service.handle_line(budgeted.serialize());
  EXPECT_EQ(executions.load(), 1)
      << "a budgeted request must reuse the unbudgeted cached result";
  EXPECT_EQ(r1, r2);
  EXPECT_EQ(service.metrics().hits, 1u);
}

TEST(Serve, DegradedResultsAreNotCached) {
  std::atomic<int> executions{0};
  ServiceOptions opts;
  opts.executor = [&](const jobs::KernelRequest&, const exec::Budget&) {
    executions.fetch_add(1);
    jobs::AttemptOutcome ao;
    ao.ok = true;
    ao.out.value = 1.5;
    ao.out.detail = "fallback";
    ao.out.degraded = true;
    return ao;
  };
  Service service(opts);
  const std::string line = estimate_request("adder:4").serialize();
  const std::string r1 = service.handle_line(line);
  const std::string r2 = service.handle_line(line);
  EXPECT_EQ(executions.load(), 2);
  EXPECT_EQ(r1, r2);
  EXPECT_NE(r1.find("\"degraded\":true"), std::string::npos);
  EXPECT_EQ(service.metrics().cache.entries, 0u);
}

TEST(Serve, BudgetStoppedRequestsReportAndAreNotCached) {
  std::atomic<int> executions{0};
  ServiceOptions opts;
  opts.executor = [&](const jobs::KernelRequest&, const exec::Budget&) {
    executions.fetch_add(1);
    jobs::AttemptOutcome ao;
    ao.ok = false;
    ao.stop = exec::StopReason::StepQuota;
    ao.detail = "step quota exhausted";
    return ao;
  };
  Service service(opts);
  Request rq = estimate_request("adder:4");
  rq.step_quota = 10;
  const std::string line = rq.serialize();
  ResponseView v;
  ASSERT_TRUE(serve::parse_response(service.handle_line(line), v));
  EXPECT_FALSE(v.ok);
  EXPECT_EQ(v.error, "budget-exhausted");
  service.handle_line(line);
  EXPECT_EQ(executions.load(), 2) << "failures must not be cached";
  EXPECT_EQ(service.metrics().cache.entries, 0u);
}

TEST(Serve, CacheOptOutBypassesTheCache) {
  std::atomic<int> executions{0};
  ServiceOptions opts;
  opts.executor = [&](const jobs::KernelRequest& krq, const exec::Budget& b) {
    executions.fetch_add(1);
    return jobs::run_kernel(krq, b);
  };
  Service service(opts);
  Request rq = estimate_request("adder:6");
  rq.epsilon = 0.05;
  service.handle_line(rq.serialize());  // populates the cache
  Request bypass = rq;
  bypass.use_cache = false;
  service.handle_line(bypass.serialize());
  EXPECT_EQ(executions.load(), 2) << "cache:false must recompute";
}

TEST(Serve, InvalidDesignAnswersInvalidInput) {
  Service service;
  ResponseView v;
  ASSERT_TRUE(serve::parse_response(
      service.handle_line(estimate_request("nosuch:9").serialize()), v));
  EXPECT_FALSE(v.ok);
  EXPECT_EQ(v.error, "invalid-input");
  EXPECT_NE(v.detail.find("nosuch"), std::string::npos);
}

TEST(Serve, MalformedLineAnswersMalformed) {
  Service service;
  ResponseView v;
  ASSERT_TRUE(serve::parse_response(service.handle_line("{\"op\":}"), v));
  EXPECT_FALSE(v.ok);
  EXPECT_EQ(v.error, "malformed");
  EXPECT_EQ(service.metrics().errors, 1u);
}

TEST(Serve, IdIsEchoedAndDoesNotAffectTheCachedBytes) {
  Service service;
  Request rq = estimate_request("adder:6", jobs::JobKind::Symbolic);
  rq.id = "first";
  ResponseView v1;
  ASSERT_TRUE(serve::parse_response(service.handle_line(rq.serialize()), v1));
  EXPECT_EQ(v1.id, "first");
  rq.id = "second";
  ResponseView v2;
  ASSERT_TRUE(serve::parse_response(service.handle_line(rq.serialize()), v2));
  EXPECT_EQ(v2.id, "second");
  EXPECT_EQ(service.metrics().hits, 1u) << "id must not be part of the key";
  EXPECT_EQ(v1.value, v2.value);

  rq.id.clear();
  const std::string idless = service.handle_line(rq.serialize());
  EXPECT_EQ(idless.find("\"id\""), std::string::npos);
}

TEST(Serve, ShedsWhenSaturated) {
  std::atomic<bool> release{false};
  ServiceOptions opts;
  opts.max_inflight = 1;
  opts.executor = [&](const jobs::KernelRequest& krq, const exec::Budget& b) {
    wait_until([&] { return release.load(); });
    return jobs::run_kernel(krq, b);
  };
  Service service(opts);
  Request slow = estimate_request("adder:6");
  slow.epsilon = 0.05;
  std::string slow_response;
  std::thread holder(
      [&] { slow_response = service.handle_line(slow.serialize()); });
  ASSERT_TRUE(wait_until([&] { return service.metrics().inflight == 1; }));

  ResponseView v;
  ASSERT_TRUE(serve::parse_response(
      service.handle_line(estimate_request("adder:4").serialize()), v));
  EXPECT_FALSE(v.ok);
  EXPECT_EQ(v.error, "shed");
  EXPECT_EQ(service.metrics().shed, 1u);

  release.store(true);
  holder.join();
  EXPECT_NE(slow_response.find("\"ok\":true"), std::string::npos);
}

TEST(Serve, DrainRefusesEstimatesButServesMetricsAndPing) {
  Service service;
  service.begin_drain();
  ResponseView v;
  ASSERT_TRUE(serve::parse_response(
      service.handle_line(estimate_request("adder:4").serialize()), v));
  EXPECT_FALSE(v.ok);
  EXPECT_EQ(v.error, "draining");

  ResponseView m;
  ASSERT_TRUE(serve::parse_response(service.handle_line("{\"op\":\"metrics\"}"), m));
  EXPECT_TRUE(m.ok);
  ResponseView p;
  ASSERT_TRUE(serve::parse_response(service.handle_line("{\"op\":\"ping\"}"), p));
  EXPECT_TRUE(p.ok);
  EXPECT_EQ(service.metrics().refused, 1u);
}

TEST(Serve, MetricsResponseCarriesTheCounters) {
  Service service;
  Request rq = estimate_request("adder:6", jobs::JobKind::Symbolic);
  const std::string line = rq.serialize();
  service.handle_line(line);  // miss
  service.handle_line(line);  // hit
  ResponseView v;
  ASSERT_TRUE(
      serve::parse_response(service.handle_line("{\"op\":\"metrics\"}"), v));
  EXPECT_TRUE(v.ok);
  EXPECT_EQ(v.hits, 1u);
  EXPECT_EQ(v.misses, 1u);
  EXPECT_EQ(v.coalesced, 0u);
  EXPECT_EQ(v.shed, 0u);
}

TEST(Serve, HealthReportsPoolStateAndKeepsWorkingWhileDraining) {
  ServiceOptions opts;
  opts.workers = 2;
  Service service(opts);
  const std::string body = service.handle_line("{\"op\":\"health\"}");
  ResponseView v;
  ASSERT_TRUE(serve::parse_response(body, v)) << body;
  EXPECT_TRUE(v.ok);
  // The supervision-state fields ride on the wire in fixed order.
  EXPECT_NE(body.find("\"op\":\"health\""), std::string::npos) << body;
  EXPECT_NE(body.find("\"workers\":2"), std::string::npos) << body;
  EXPECT_NE(body.find("\"live\":2"), std::string::npos) << body;
  EXPECT_NE(body.find("\"wedged\":0"), std::string::npos) << body;
  EXPECT_NE(body.find("\"respawns\":0"), std::string::npos) << body;
  EXPECT_NE(body.find("\"child-crashes\":0"), std::string::npos) << body;
  EXPECT_NE(body.find("\"crash-signal\":0"), std::string::npos) << body;
  EXPECT_NE(body.find("\"quarantine-trips\":0"), std::string::npos) << body;
  EXPECT_NE(body.find("\"draining\":false"), std::string::npos) << body;

  const serve::ServiceHealth h = service.health();
  EXPECT_EQ(h.workers, 2);
  EXPECT_EQ(h.live, 2);
  EXPECT_EQ(h.wedged, 0);
  EXPECT_EQ(h.isolated, 0u);

  // Like metrics, health answers while draining — incident response needs
  // the supervision state most when the service is going down.
  service.begin_drain();
  ResponseView d;
  ASSERT_TRUE(serve::parse_response(service.handle_line("{\"op\":\"health\"}"), d));
  EXPECT_TRUE(d.ok);
  EXPECT_NE(service.handle_line("{\"op\":\"health\"}").find("\"draining\":true"),
            std::string::npos);
}

TEST(Serve, HealthEchoesIdAndRejectsEstimateKeys) {
  Service service;
  const std::string body =
      service.handle_line("{\"op\":\"health\",\"id\":\"h-1\"}");
  ResponseView v;
  ASSERT_TRUE(serve::parse_response(body, v)) << body;
  EXPECT_TRUE(v.ok);
  EXPECT_EQ(v.id, "h-1");
  // Estimate-only keys on a health request are a protocol error, same as
  // for metrics/ping.
  ResponseView bad;
  ASSERT_TRUE(serve::parse_response(
      service.handle_line("{\"op\":\"health\",\"design\":\"adder:4\"}"), bad));
  EXPECT_FALSE(bad.ok);
  EXPECT_EQ(bad.error, "malformed");
}

// --- TCP server -------------------------------------------------------------

/// Minimal blocking line-protocol client for loopback tests.
class LineClient {
 public:
  bool connect_to(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    return ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) ==
           0;
  }
  ~LineClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool send_line(std::string line) {
    line.push_back('\n');
    return send_raw(line);
  }

  bool send_raw(const std::string& line) {
    const char* p = line.data();
    std::size_t left = line.size();
    while (left > 0) {
      const ssize_t n = ::send(fd_, p, left, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      p += n;
      left -= static_cast<std::size_t>(n);
    }
    return true;
  }

  bool recv_line(std::string& out) {
    while (true) {
      const std::size_t nl = buf_.find('\n');
      if (nl != std::string::npos) {
        out = buf_.substr(0, nl);
        buf_.erase(0, nl + 1);
        return true;
      }
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n == 0) return false;
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      buf_.append(chunk, static_cast<std::size_t>(n));
    }
  }

 private:
  int fd_ = -1;
  std::string buf_;
};

TEST(ServeTcp, EndToEndEstimateMetricsPing) {
  serve::ServerOptions sopts;
  serve::Server server(sopts);
  server.start();
  ASSERT_GT(server.port(), 0);

  LineClient client;
  ASSERT_TRUE(client.connect_to(server.port()));
  Request rq = estimate_request("adder:6", jobs::JobKind::Symbolic);
  rq.id = "tcp-1";
  ASSERT_TRUE(client.send_line(rq.serialize()));
  std::string resp;
  ASSERT_TRUE(client.recv_line(resp));
  ResponseView v;
  ASSERT_TRUE(serve::parse_response(resp, v)) << resp;
  EXPECT_TRUE(v.ok);
  EXPECT_EQ(v.id, "tcp-1");
  EXPECT_TRUE(v.has_value);

  ASSERT_TRUE(client.send_line("{\"op\":\"metrics\"}"));
  ASSERT_TRUE(client.recv_line(resp));
  ResponseView m;
  ASSERT_TRUE(serve::parse_response(resp, m));
  EXPECT_EQ(m.misses, 1u);

  ASSERT_TRUE(client.send_line("{\"op\":\"ping\"}"));
  ASSERT_TRUE(client.recv_line(resp));
  EXPECT_EQ(resp, serve::make_ping_response());

  server.shutdown();
  EXPECT_FALSE(server.running());
}

TEST(ServeTcp, ConcurrentConnectionsCoalesceToOneExecution) {
  std::atomic<int> executions{0};
  std::atomic<int> arrived{0};
  constexpr int kClients = 8;
  serve::ServerOptions sopts;
  sopts.service.executor = [&](const jobs::KernelRequest& krq,
                               const exec::Budget& b) {
    executions.fetch_add(1);
    if (krq.seed == 7) {
      wait_until([&] { return arrived.load() == kClients; });
      std::this_thread::sleep_for(std::chrono::milliseconds(200));
    }
    return jobs::run_kernel(krq, b);
  };
  serve::Server server(sopts);
  server.start();

  Request rq = estimate_request("adder:8");
  rq.epsilon = 0.05;
  rq.has_seed = true;
  rq.seed = 7;
  const std::string line = rq.serialize();

  Request warm = rq;
  warm.seed = 999;
  {
    LineClient c;
    ASSERT_TRUE(c.connect_to(server.port()));
    ASSERT_TRUE(c.send_line(warm.serialize()));
    std::string resp;
    ASSERT_TRUE(c.recv_line(resp));
  }

  std::vector<std::string> responses(kClients);
  std::vector<std::thread> threads;
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      LineClient c;
      if (!c.connect_to(server.port())) return;
      arrived.fetch_add(1);
      if (!c.send_line(line)) return;
      c.recv_line(responses[i]);
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(executions.load(), 2);  // warm-up + one for the batch
  for (int i = 0; i < kClients; ++i) {
    EXPECT_EQ(responses[i], responses[0]) << "client " << i;
    EXPECT_FALSE(responses[i].empty()) << "client " << i;
  }
  const serve::ServiceMetrics m = server.service().metrics();
  EXPECT_EQ(m.misses, 2u);
  EXPECT_EQ(m.coalesced, 7u);
  server.shutdown();
}

TEST(ServeTcp, GracefulDrainCompletesInFlightRequests) {
  std::atomic<bool> release{false};
  serve::ServerOptions sopts;
  sopts.service.executor = [&](const jobs::KernelRequest& krq,
                               const exec::Budget& b) {
    wait_until([&] { return release.load(); });
    return jobs::run_kernel(krq, b);
  };
  serve::Server server(sopts);
  server.start();
  const std::uint16_t port = server.port();

  LineClient client;
  ASSERT_TRUE(client.connect_to(port));
  Request rq = estimate_request("adder:6");
  rq.epsilon = 0.05;
  ASSERT_TRUE(client.send_line(rq.serialize()));
  ASSERT_TRUE(
      wait_until([&] { return server.service().metrics().inflight == 1; }));

  std::thread closer([&] { server.shutdown(); });
  // The drain must wait for the in-flight request, not abandon it.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  release.store(true);
  closer.join();

  std::string resp;
  ASSERT_TRUE(client.recv_line(resp))
      << "in-flight response must be flushed before the connection closes";
  ResponseView v;
  ASSERT_TRUE(serve::parse_response(resp, v));
  EXPECT_TRUE(v.ok);

  LineClient late;
  EXPECT_FALSE(late.connect_to(port)) << "drained server must refuse connects";
}

TEST(ServeTcp, ConnectionCapShedsExtraConnections) {
  serve::ServerOptions sopts;
  sopts.max_connections = 1;
  serve::Server server(sopts);
  server.start();

  LineClient first;
  ASSERT_TRUE(first.connect_to(server.port()));
  std::string resp;
  ASSERT_TRUE(first.send_line("{\"op\":\"ping\"}"));
  ASSERT_TRUE(first.recv_line(resp));  // first connection is now registered

  LineClient second;
  ASSERT_TRUE(second.connect_to(server.port()));
  ASSERT_TRUE(second.recv_line(resp)) << "shed notice expected";
  ResponseView v;
  ASSERT_TRUE(serve::parse_response(resp, v));
  EXPECT_FALSE(v.ok);
  EXPECT_EQ(v.error, "shed");
  EXPECT_FALSE(second.recv_line(resp)) << "shed connection must be closed";
  server.shutdown();
}

TEST(ServeTcp, MalformedJsonKeepsTheConnectionOpen) {
  serve::ServerOptions sopts;
  serve::Server server(sopts);
  server.start();
  LineClient client;
  ASSERT_TRUE(client.connect_to(server.port()));
  ASSERT_TRUE(client.send_line("this is not json"));
  std::string resp;
  ASSERT_TRUE(client.recv_line(resp));
  ResponseView v;
  ASSERT_TRUE(serve::parse_response(resp, v));
  EXPECT_EQ(v.error, "malformed");
  // A parse error poisons one request, not the connection.
  ASSERT_TRUE(client.send_line("{\"op\":\"ping\"}"));
  ASSERT_TRUE(client.recv_line(resp));
  EXPECT_EQ(resp, serve::make_ping_response());
  server.shutdown();
}

// --- Worker pool ------------------------------------------------------------

TEST(ServePool, PoolResultsMatchInlineExecutionBitForBit) {
  Request rq = estimate_request("adder:8", jobs::JobKind::Symbolic);
  ServiceOptions inline_opts;
  inline_opts.workers = 0;
  inline_opts.cache_bytes = 0;
  Service inline_svc(inline_opts);
  ServiceOptions pool_opts;
  pool_opts.workers = 4;
  pool_opts.cache_bytes = 0;
  Service pool_svc(pool_opts);
  EXPECT_EQ(pool_svc.handle_line(rq.serialize()),
            inline_svc.handle_line(rq.serialize()));
}

TEST(ServePool, QueuedTasksRunToCompletionOnStop) {
  std::atomic<int> ran{0};
  serve::WorkerPool pool(1, 16);
  std::atomic<bool> release{false};
  ASSERT_TRUE(pool.try_submit([&] {
    wait_until([&] { return release.load(); });
    ran.fetch_add(1);
  }));
  ASSERT_TRUE(wait_until([&] { return pool.busy() == 1; }));
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(pool.try_submit([&] { ran.fetch_add(1); }));
  }
  EXPECT_EQ(pool.queue_depth(), 5u);
  release.store(true);
  pool.stop();  // runs the queued tasks, then joins
  EXPECT_EQ(ran.load(), 6);
  EXPECT_FALSE(pool.try_submit([&] { ran.fetch_add(1); }))
      << "a stopped pool must refuse new work";
}

TEST(ServePool, BoundedQueueRefusesExcessTasks) {
  serve::WorkerPool pool(1, 1);
  std::atomic<bool> release{false};
  ASSERT_TRUE(pool.try_submit([&] { wait_until([&] { return release.load(); }); }));
  ASSERT_TRUE(wait_until([&] { return pool.busy() == 1; }));
  ASSERT_TRUE(pool.try_submit([] {}));  // fills the queue slot
  EXPECT_FALSE(pool.try_submit([] {})) << "queue_limit=1 must refuse a third";
  release.store(true);
  pool.stop();
}

TEST(ServePool, WedgedTaskIsSupersededAndCapacityRestored) {
  // Supervision (DESIGN.md §11): a task stalled past its deadline first
  // reads as wedged, then has its thread superseded — the pool's serving
  // capacity comes back while the stalled task still holds its old thread.
  serve::WorkerPool pool(2, 16);
  std::atomic<bool> release{false};
  const auto deadline = serve::WorkerPool::Clock::now() +
                        std::chrono::milliseconds(50);
  ASSERT_TRUE(pool.try_submit(
      [&] { wait_until([&] { return release.load(); }); }, deadline));

  // Past the deadline, before the supersede grace: visible as wedged.
  ASSERT_TRUE(wait_until([&] { return pool.wedged() == 1; }));
  EXPECT_EQ(pool.busy(), 1);
  EXPECT_EQ(pool.respawns(), 0u);

  // The supervisor replaces the thread: wedged clears, capacity restored.
  ASSERT_TRUE(wait_until([&] { return pool.respawns() == 1; }));
  ASSERT_TRUE(
      wait_until([&] { return pool.live() == 2 && pool.wedged() == 0; }));
  EXPECT_EQ(pool.busy(), 1) << "the stalled task is still running";

  // Both restored slots serve new work while the wedge holds its thread.
  std::atomic<int> ran{0};
  ASSERT_TRUE(pool.try_submit([&] { ran.fetch_add(1); }));
  ASSERT_TRUE(pool.try_submit([&] { ran.fetch_add(1); }));
  ASSERT_TRUE(wait_until([&] { return ran.load() == 2; }));

  release.store(true);  // the stalled task returns; its thread retires
  ASSERT_TRUE(wait_until([&] { return pool.busy() == 0; }));
  pool.stop();
  EXPECT_EQ(pool.respawns(), 1u) << "exactly one respawn per wedged task";
  EXPECT_EQ(pool.live(), 0) << "stop() joins every thread";
}

TEST(ServePool, TasksWithinDeadlineAreNeverSuperseded) {
  serve::WorkerPool pool(1, 16);
  std::atomic<int> ran{0};
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(pool.try_submit(
        [&] {
          std::this_thread::sleep_for(std::chrono::milliseconds(5));
          ran.fetch_add(1);
        },
        serve::WorkerPool::Clock::now() + std::chrono::seconds(30)));
  }
  ASSERT_TRUE(wait_until([&] { return ran.load() == 8; }));
  EXPECT_EQ(pool.respawns(), 0u)
      << "healthy deadline-carrying tasks must not trigger the supervisor";
  EXPECT_EQ(pool.wedged(), 0);
  pool.stop();
}

// --- Per-request deadlines --------------------------------------------------

/// Executor that ignores its meter and spins until cancelled — the "stuck
/// symbolic estimate" a wall deadline exists for. Cooperative only through
/// the CancelToken.
jobs::AttemptOutcome stuck_until_cancelled(const jobs::KernelRequest&,
                                           const exec::Budget& b) {
  while (!b.cancel.cancel_requested()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  jobs::AttemptOutcome ao;
  ao.ok = false;
  ao.stop = exec::StopReason::Cancelled;
  ao.detail = "cancelled mid-kernel";
  return ao;
}

TEST(ServeDeadline, StuckKernelReturnsTypedDeadlineExceeded) {
  ServiceOptions opts;
  opts.workers = 2;
  opts.executor = stuck_until_cancelled;
  Service service(opts);
  Request rq = estimate_request("adder:8", jobs::JobKind::Symbolic);
  rq.id = "dl-1";
  rq.deadline_seconds = 0.1;
  const auto t0 = std::chrono::steady_clock::now();
  ResponseView v;
  ASSERT_TRUE(serve::parse_response(service.handle_line(rq.serialize()), v));
  const double took =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_FALSE(v.ok);
  EXPECT_EQ(v.error, "deadline-exceeded");
  EXPECT_EQ(v.id, "dl-1");
  EXPECT_LT(took, 5.0) << "the connection must not wedge on a stuck kernel";
  EXPECT_GE(service.metrics().deadline_exceeded, 1u);
  EXPECT_EQ(service.metrics().cache.entries, 0u);
}

TEST(ServeDeadline, DeadlineDegradesToStaticBoundWhenEnabled) {
  ServiceOptions opts;
  opts.workers = 2;
  opts.degrade_on_deadline = true;
  opts.executor = stuck_until_cancelled;
  Service service(opts);
  Request rq = estimate_request("adder:8", jobs::JobKind::Symbolic);
  rq.deadline_seconds = 0.1;
  ResponseView v;
  ASSERT_TRUE(serve::parse_response(service.handle_line(rq.serialize()), v));
  EXPECT_TRUE(v.ok) << "degradation turns the deadline into a bounded answer";
  EXPECT_TRUE(v.degraded);
  EXPECT_GT(v.value, 0.0);
  EXPECT_NE(v.detail.find("deadline-degraded"), std::string::npos);
  EXPECT_EQ(service.metrics().degraded_deadline, 1u);
  EXPECT_EQ(service.metrics().cache.entries, 0u)
      << "degraded answers must never be cached";
}

TEST(ServeDeadline, DefaultDeadlineAppliesToRequestsWithoutOne) {
  ServiceOptions opts;
  opts.workers = 2;
  opts.default_deadline_seconds = 0.1;
  opts.executor = stuck_until_cancelled;
  Service service(opts);
  ResponseView v;
  ASSERT_TRUE(serve::parse_response(
      service.handle_line(
          estimate_request("adder:8", jobs::JobKind::Symbolic).serialize()),
      v));
  EXPECT_FALSE(v.ok);
  EXPECT_EQ(v.error, "deadline-exceeded");
}

TEST(ServeDeadline, CooperativeKernelDeadlineIsTypedFromItsStopReason) {
  ServiceOptions opts;
  opts.executor = [](const jobs::KernelRequest&, const exec::Budget&) {
    jobs::AttemptOutcome ao;
    ao.ok = false;
    ao.stop = exec::StopReason::Deadline;
    ao.detail = "deadline exceeded in kernel";
    return ao;
  };
  Service service(opts);
  Request rq = estimate_request("adder:4");
  rq.deadline_seconds = 5.0;
  ResponseView v;
  ASSERT_TRUE(serve::parse_response(service.handle_line(rq.serialize()), v));
  EXPECT_FALSE(v.ok);
  EXPECT_EQ(v.error, "deadline-exceeded");
}

// --- Overload shedding ------------------------------------------------------

TEST(ServeShed, QueueFullShedsWithRetryAfterHint) {
  std::atomic<bool> release{false};
  ServiceOptions opts;
  opts.workers = 1;
  opts.queue_limit = 1;
  opts.executor = [&](const jobs::KernelRequest& krq, const exec::Budget& b) {
    wait_until([&] { return release.load(); });
    return jobs::run_kernel(krq, b);
  };
  Service service(opts);

  auto line_with_seed = [](std::uint64_t seed) {
    Request rq = estimate_request("adder:4", jobs::JobKind::Symbolic);
    rq.has_seed = true;
    rq.seed = seed;
    rq.use_cache = false;  // distinct flights, no coalescing
    return rq.serialize();
  };
  std::string r1, r2;
  std::thread busy([&] { r1 = service.handle_line(line_with_seed(1)); });
  ASSERT_TRUE(wait_until([&] { return service.metrics().busy_workers == 1; }));
  std::thread queued([&] { r2 = service.handle_line(line_with_seed(2)); });
  ASSERT_TRUE(wait_until([&] { return service.metrics().queue_depth == 1; }));

  ResponseView v;
  ASSERT_TRUE(
      serve::parse_response(service.handle_line(line_with_seed(3)), v));
  EXPECT_FALSE(v.ok);
  EXPECT_EQ(v.error, "shed");
  EXPECT_GE(v.retry_after_ms, 1u) << "shed must carry a backoff hint";
  EXPECT_LE(v.retry_after_ms, 30000u);
  EXPECT_EQ(service.metrics().shed, 1u);

  release.store(true);
  busy.join();
  queued.join();
  EXPECT_NE(r1.find("\"ok\":true"), std::string::npos);
  EXPECT_NE(r2.find("\"ok\":true"), std::string::npos)
      << "a queued request must be served, not lost";
}

TEST(ServeShed, InflightCapShedCarriesRetryAfterHint) {
  std::atomic<bool> release{false};
  ServiceOptions opts;
  opts.workers = 0;
  opts.max_inflight = 1;
  opts.executor = [&](const jobs::KernelRequest& krq, const exec::Budget& b) {
    wait_until([&] { return release.load(); });
    return jobs::run_kernel(krq, b);
  };
  Service service(opts);
  Request slow = estimate_request("adder:6");
  slow.epsilon = 0.05;
  std::thread holder([&] { service.handle_line(slow.serialize()); });
  ASSERT_TRUE(wait_until([&] { return service.metrics().inflight == 1; }));
  ResponseView v;
  ASSERT_TRUE(serve::parse_response(
      service.handle_line(estimate_request("adder:4").serialize()), v));
  EXPECT_EQ(v.error, "shed");
  EXPECT_GE(v.retry_after_ms, 1u);
  release.store(true);
  holder.join();
}

TEST(ServeShed, RetryAfterHintIsPositiveMonotoneAndCapped) {
  // Property sweep over the free function behind the shed hint: strictly
  // positive, monotone non-decreasing in backlog, non-increasing in pool
  // width, and capped — for any input, including adversarial extremes.
  const std::uint64_t kMax = ~0ull;
  const std::uint64_t ewmas[] = {0, 1, 999, 1000, 25'000, 1'000'000, kMax};
  const int widths[] = {-3, 0, 1, 2, 8, 64};
  const std::uint64_t backlogs[] = {0, 1, 2, 7, 100, 10'000, kMax};
  for (std::uint64_t ewma : ewmas) {
    for (int width : widths) {
      std::uint64_t prev = 0;
      for (std::uint64_t waiting : backlogs) {
        const std::uint64_t hint =
            serve::compute_retry_after_ms(ewma, waiting, width);
        ASSERT_GE(hint, 1u) << ewma << "/" << waiting << "/" << width;
        ASSERT_LE(hint, serve::kMaxRetryAfterMs)
            << ewma << "/" << waiting << "/" << width;
        ASSERT_GE(hint, prev)
            << "hint must not shrink as the backlog grows: ewma=" << ewma
            << " waiting=" << waiting << " width=" << width;
        prev = hint;
      }
    }
    for (int width = 1; width < 64; ++width) {
      ASSERT_LE(serve::compute_retry_after_ms(ewma, 100, width + 1),
                serve::compute_retry_after_ms(ewma, 100, width))
          << "a wider pool must never lengthen the hint: ewma=" << ewma;
    }
  }
  // Sanity anchor: 100 waiting at 5ms each across 2 workers ≈ 250ms.
  EXPECT_EQ(serve::compute_retry_after_ms(5000, 100, 2), 300u);
}

TEST(ServeShed, BoundedRetryDelayHonorsTheHintButNeverExceedsTheCap) {
  using serve::bounded_retry_delay_seconds;
  // No hint: the policy backoff passes through.
  EXPECT_DOUBLE_EQ(bounded_retry_delay_seconds(0.05, 0), 0.05);
  // The server's hint wins when it is longer than the backoff.
  EXPECT_DOUBLE_EQ(bounded_retry_delay_seconds(0.05, 2000), 2.0);
  // ... and loses when the backoff is already longer.
  EXPECT_DOUBLE_EQ(bounded_retry_delay_seconds(5.0, 2000), 5.0);
  // Both sides are capped: a pathological hint or an overflowed policy
  // must not put the client to sleep for minutes.
  EXPECT_DOUBLE_EQ(bounded_retry_delay_seconds(1e9, 0), 30.0);
  EXPECT_DOUBLE_EQ(bounded_retry_delay_seconds(0.0, ~0ull), 30.0);
  EXPECT_DOUBLE_EQ(bounded_retry_delay_seconds(0.0, serve::kMaxRetryAfterMs),
                   30.0);
  // Degenerate policy outputs are sanitized but still honor the hint.
  EXPECT_DOUBLE_EQ(bounded_retry_delay_seconds(std::nan(""), 500), 0.5);
  EXPECT_DOUBLE_EQ(bounded_retry_delay_seconds(-3.0, 0), 0.0);
}

// --- Single-flight exception propagation (regression) -----------------------

TEST(ServeFlight, LeaderAllocFailureBecomesTypedInternalForEveryCaller) {
  // Regression: an allocation failure while the leader publishes a result
  // used to escape handle_estimate and kill the connection thread. Inline
  // mode so the thread-local fi arming reaches the leader body.
  ServiceOptions opts;
  opts.workers = 0;
  Service service(opts);
  const std::string line =
      estimate_request("adder:6", jobs::JobKind::Symbolic).serialize();

  constexpr int kThreads = 4;
  std::vector<std::string> responses(kThreads);
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      fi::arm_alloc_failure(0);  // fires on whichever thread leads
      responses[i] = service.handle_line(line);
      fi::disarm();
    });
  }
  for (auto& th : threads) th.join();
  for (int i = 0; i < kThreads; ++i) {
    ResponseView v;
    ASSERT_TRUE(serve::parse_response(responses[i], v)) << responses[i];
    EXPECT_FALSE(v.ok) << "caller " << i;
    EXPECT_EQ(v.error, "internal") << "caller " << i;
  }
  // The flight retired cleanly: the service still answers.
  ResponseView ok;
  ASSERT_TRUE(serve::parse_response(service.handle_line(line), ok));
  EXPECT_TRUE(ok.ok);
}

TEST(ServeFlight, WorkerCrashIsTypedAndDoesNotKillTheService) {
  ServiceOptions opts;
  opts.workers = 2;
  Service service(opts);
  const std::string line =
      estimate_request("adder:6", jobs::JobKind::Symbolic).serialize();

  fi::arm_serve_fault(fi::ServeFault::WorkerThrow, 0);
  ResponseView v;
  ASSERT_TRUE(serve::parse_response(service.handle_line(line), v));
  EXPECT_FALSE(v.ok);
  EXPECT_EQ(v.error, "internal");
  EXPECT_NE(v.detail.find("worker crash"), std::string::npos);
  fi::disarm_serve_faults();

  ResponseView ok;
  ASSERT_TRUE(serve::parse_response(service.handle_line(line), ok));
  EXPECT_TRUE(ok.ok) << "one worker crash must not poison the pool";

  fi::arm_serve_fault(fi::ServeFault::WorkerAlloc, 0);
  Request rq = estimate_request("mult:4", jobs::JobKind::Symbolic);
  ResponseView a;
  ASSERT_TRUE(serve::parse_response(service.handle_line(rq.serialize()), a));
  EXPECT_FALSE(a.ok);
  EXPECT_EQ(a.error, "internal");
  EXPECT_NE(a.detail.find("allocation"), std::string::npos);
  fi::disarm_serve_faults();
}

// --- Bounded drain ----------------------------------------------------------

TEST(ServeDrain, BoundedDrainCancelsCooperativeKernels) {
  serve::ServerOptions sopts;
  sopts.drain_deadline_seconds = 3.0;
  sopts.service.workers = 2;
  sopts.service.executor = stuck_until_cancelled;
  serve::Server server(sopts);
  server.start();

  LineClient client;
  ASSERT_TRUE(client.connect_to(server.port()));
  ASSERT_TRUE(client.send_line(estimate_request("adder:8").serialize()));
  ASSERT_TRUE(
      wait_until([&] { return server.service().metrics().inflight == 1; }));

  const auto t0 = std::chrono::steady_clock::now();
  server.shutdown();
  const double took =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_LT(took, 2.5) << "cooperative cancel must beat the grace period";

  std::string resp;
  ASSERT_TRUE(client.recv_line(resp))
      << "the abandoned request still gets its response line";
  ResponseView v;
  ASSERT_TRUE(serve::parse_response(resp, v));
  EXPECT_FALSE(v.ok);
  EXPECT_EQ(v.error, "cancelled");
}

TEST(ServeDrain, DrainDeadlineBoundsShutdownOnCancelIgnoringKernel) {
  std::atomic<bool> release{false};
  serve::ServerOptions sopts;
  sopts.drain_deadline_seconds = 0.3;
  sopts.service.workers = 1;
  sopts.service.executor = [&](const jobs::KernelRequest&,
                               const exec::Budget&) {
    // Pathological kernel: ignores its CancelToken entirely.
    wait_until([&] { return release.load(); }, 30.0);
    jobs::AttemptOutcome ao;
    ao.ok = false;
    ao.stop = exec::StopReason::Cancelled;
    ao.detail = "late";
    return ao;
  };
  serve::Server server(sopts);
  server.start();

  LineClient client;
  ASSERT_TRUE(client.connect_to(server.port()));
  ASSERT_TRUE(client.send_line(estimate_request("adder:8").serialize()));
  ASSERT_TRUE(
      wait_until([&] { return server.service().metrics().inflight == 1; }));

  const auto t0 = std::chrono::steady_clock::now();
  server.shutdown();
  const double took =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_LT(took, 2.0)
      << "shutdown must be bounded even when the kernel ignores cancel";
  release.store(true);  // let the orphaned worker finish before destruction
}

// --- Protocol edge cases over TCP -------------------------------------------

TEST(ServeProtocolEdge, OversizedLineWithNewlineAnswersMalformedAndKeepsConnection) {
  serve::ServerOptions sopts;
  serve::Server server(sopts);
  server.start();
  LineClient client;
  ASSERT_TRUE(client.connect_to(server.port()));
  // Over the frame limit but with a newline: the boundary is known, so the
  // request is answered and the connection survives.
  std::string big = "{\"op\":\"estimate\",\"design\":\"";
  big.append(serve::kMaxLineBytes, 'a');
  big += "\"}";
  ASSERT_TRUE(client.send_line(big));
  std::string resp;
  ASSERT_TRUE(client.recv_line(resp));
  ResponseView v;
  ASSERT_TRUE(serve::parse_response(resp, v));
  EXPECT_EQ(v.error, "malformed");
  ASSERT_TRUE(client.send_line("{\"op\":\"ping\"}"));
  ASSERT_TRUE(client.recv_line(resp));
  EXPECT_EQ(resp, serve::make_ping_response());
  server.shutdown();
}

TEST(ServeProtocolEdge, MidLineEofIsDroppedAndTheServerSurvives) {
  serve::ServerOptions sopts;
  serve::Server server(sopts);
  server.start();
  {
    LineClient abrupt;
    ASSERT_TRUE(abrupt.connect_to(server.port()));
    // Half a request, no newline, then the destructor closes the socket.
    ASSERT_TRUE(abrupt.send_raw("{\"op\":\"estim"));
  }
  LineClient next;
  ASSERT_TRUE(next.connect_to(server.port()));
  ASSERT_TRUE(next.send_line("{\"op\":\"ping\"}"));
  std::string resp;
  ASSERT_TRUE(next.recv_line(resp));
  EXPECT_EQ(resp, serve::make_ping_response());
  EXPECT_EQ(server.service().metrics().requests, 1u)
      << "the truncated line must not be interpreted as a request";
  server.shutdown();
}

TEST(ServeProtocolEdge, NonUtf8BytesInDetailAndIdRoundTripExactly) {
  // The protocol is byte-transparent above 0x1f: invalid UTF-8 sequences
  // pass through unescaped and unmangled in both directions.
  const std::string raw = "g\xC3\x28\xFF\xFEuge";
  ResponseView v;
  ASSERT_TRUE(serve::parse_response(
      serve::make_error_response(raw, "internal", raw), v));
  EXPECT_EQ(v.id, raw);
  EXPECT_EQ(v.detail, raw);

  // Control characters are escaped on the way out and decoded on the way
  // back — no truncation at the first odd byte.
  const std::string ctl = std::string("a\x01b\t") + "\xC3\x28";
  ResponseView c;
  ASSERT_TRUE(serve::parse_response(
      serve::make_value_response({}, 1.0, ctl, false), c));
  EXPECT_EQ(c.detail, ctl);

  // End to end: a request id carrying raw bytes is echoed bit-exactly.
  ServiceOptions opts;
  opts.executor = [](const jobs::KernelRequest&, const exec::Budget&) {
    jobs::AttemptOutcome ao;
    ao.ok = true;
    ao.out.value = 2.0;
    ao.out.detail = "fake";
    return ao;
  };
  Service service(opts);
  Request rq = estimate_request("adder:4");
  rq.id = raw;
  ResponseView echoed;
  ASSERT_TRUE(serve::parse_response(service.handle_line(rq.serialize()),
                                    echoed));
  EXPECT_TRUE(echoed.ok);
  EXPECT_EQ(echoed.id, raw);
}

TEST(ServeProtocolEdge, FuzzCorpusRegressions) {
  const char* bad[] = {
      "{\"op\":\"estimate\",\"design\":\"adder:4\",\"seed\":-1}",
      "{\"op\":\"estimate\",\"design\":\"adder:4\",\"epsilon\":1e999}",
      "{\"op\":\"estimate\",\"design\":\"adder:4\",\"epsilon\":\"x\"}",
      "{\"op\":\"estimate\",\"design\":\"adder:4\"} trailing",
      "{\"op\":\"estimate\",\"design\":\"adder:4\",\"deadline\":nan}",
  };
  for (const char* line : bad) {
    Request rq;
    std::string error;
    EXPECT_FALSE(Request::parse(line, rq, error)) << line;
  }
}

TEST(ServeTcp, UnframableOversizedLineAnswersOnceAndCloses) {
  serve::ServerOptions sopts;
  serve::Server server(sopts);
  server.start();
  LineClient client;
  ASSERT_TRUE(client.connect_to(server.port()));
  // > kMaxLineBytes without a newline: no record boundary exists.
  ASSERT_TRUE(client.send_raw(std::string(serve::kMaxLineBytes + 4096, 'x')));
  std::string resp;
  ASSERT_TRUE(client.recv_line(resp));
  ResponseView v;
  ASSERT_TRUE(serve::parse_response(resp, v));
  EXPECT_EQ(v.error, "malformed");
  EXPECT_FALSE(client.recv_line(resp)) << "connection must be closed";
  server.shutdown();
}

}  // namespace
