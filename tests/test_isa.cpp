#include <gtest/gtest.h>

#include "isa/isa.hpp"
#include "isa/programs.hpp"

namespace {

using namespace hlp::isa;

TEST(Machine, ArithmeticAndHalt) {
  Program p;
  p.code = {
      make_i(Opcode::Li, 1, 0, 7),
      make_i(Opcode::Li, 2, 0, 5),
      make_r(Opcode::Add, 3, 1, 2),
      make_r(Opcode::Mul, 4, 1, 2),
      make_r(Opcode::Sub, 5, 1, 2),
      make_r(Opcode::Halt, 0, 0, 0),
  };
  Machine m;
  auto st = m.run(p, 100);
  EXPECT_EQ(m.reg(3), 12);
  EXPECT_EQ(m.reg(4), 35);
  EXPECT_EQ(m.reg(5), 2);
  EXPECT_EQ(st.instructions, 6u);
}

TEST(Machine, LoadStoreRoundTrip) {
  Program p;
  p.code = {
      make_i(Opcode::Li, 1, 0, 100),   // addr
      make_i(Opcode::Li, 2, 0, 42),    // value
      make_r(Opcode::St, 0, 1, 2),     // mem[100] = 42
      make_i(Opcode::Ld, 3, 1, 0),     // r3 = mem[100]
      make_r(Opcode::Halt, 0, 0, 0),
  };
  Machine m;
  m.run(p, 100);
  EXPECT_EQ(m.reg(3), 42);
  EXPECT_EQ(m.mem(100), 42);
}

TEST(Machine, BranchLoopCountsCorrectly) {
  // Sum 1..10 in r5.
  Program p;
  p.code = {
      make_i(Opcode::Li, 1, 0, 0),   // i
      make_i(Opcode::Li, 2, 0, 10),  // limit
      make_i(Opcode::Li, 5, 0, 0),   // acc
      make_i(Opcode::Addi, 1, 1, 1),
      make_r(Opcode::Add, 5, 5, 1),
      make_b(Opcode::Bne, 1, 2, -2),
      make_r(Opcode::Halt, 0, 0, 0),
  };
  Machine m;
  auto st = m.run(p, 1000);
  EXPECT_EQ(m.reg(5), 55);
  EXPECT_EQ(st.taken_branches, 9u);
  EXPECT_EQ(st.branch_instructions, 10u);
}

TEST(Machine, CacheMissesOnColdAndStride) {
  MachineConfig cfg;
  cfg.dcache_lines = 8;
  cfg.dcache_line_words = 4;
  Program seq = array_sum(1, 64);
  Machine m(cfg);
  auto st = m.run(seq, 100000);
  // Sequential: one miss per 4 loads.
  double miss_rate = static_cast<double>(st.dcache_misses) /
                     static_cast<double>(st.mem_reads);
  EXPECT_NEAR(miss_rate, 0.25, 0.05);
}

TEST(Machine, RandomLoadsMissMore) {
  MachineConfig cfg;
  cfg.dcache_lines = 8;
  Program rnd = random_loads(4096, 500, 3);
  Program seq = array_sum(1, 500);
  Machine m1(cfg), m2(cfg);
  auto st_rnd = m1.run(rnd, 100000);
  auto st_seq = m2.run(seq, 100000);
  double mr_rnd = static_cast<double>(st_rnd.dcache_misses) /
                  static_cast<double>(st_rnd.mem_reads);
  double mr_seq = static_cast<double>(st_seq.dcache_misses) /
                  static_cast<double>(st_seq.mem_reads);
  EXPECT_GT(mr_rnd, mr_seq * 2);
}

TEST(Machine, PairCountsSumCorrectly) {
  Program p = random_arith(20, 5, 0.3, 7);
  Machine m;
  auto st = m.run(p, 100000, true);
  std::uint64_t pair_total = 0;
  for (auto& row : st.pair)
    for (auto v : row) pair_total += v;
  EXPECT_EQ(pair_total, st.instructions - 1);
  EXPECT_EQ(st.trace.size(), st.instructions);
}

TEST(Machine, CyclesIncludePenalties) {
  MachineConfig cfg;
  Program p = array_sum(1, 100);
  Machine m(cfg);
  auto st = m.run(p, 100000);
  EXPECT_GT(st.cycles, st.instructions);  // misses + taken branches stall
}

TEST(Programs, Fig2MemoryAccessCounts) {
  int n = 50;
  Machine m1, m2;
  auto st_mem = m1.run(fig2_with_memory_temp(n), 1000000);
  auto st_reg = m2.run(fig2_register_temp(n), 1000000);
  // The transformed version eliminates 2n accesses for the temp array.
  std::uint64_t acc_mem = st_mem.mem_reads + st_mem.mem_writes;
  std::uint64_t acc_reg = st_reg.mem_reads + st_reg.mem_writes;
  EXPECT_EQ(acc_mem - acc_reg, static_cast<std::uint64_t>(2 * n));
  // And both compute the same result c[i] = a[i]*3 + 3.
  for (int i = 0; i < n; ++i)
    EXPECT_EQ(m1.mem(static_cast<std::size_t>(2 * n + i)),
              m2.mem(static_cast<std::size_t>(2 * n + i)));
}

TEST(Programs, DspKernelComputesFir) {
  int taps = 4, iters = 8;
  Machine m;
  // Preload samples and coefficients.
  for (int i = 0; i < 32; ++i) m.set_mem(static_cast<std::size_t>(i), i + 1);
  for (int t = 0; t < taps; ++t)
    m.set_mem(static_cast<std::size_t>(4096 + t), t + 1);
  auto st = m.run(dsp_kernel(taps, iters), 1000000);
  EXPECT_GT(st.per_opcode[static_cast<std::size_t>(Opcode::Mul)],
            static_cast<std::uint64_t>(taps * iters - 1));
  // y[0] = sum_t x[0+t]*c[t] = 1*1+2*2+3*3+4*4 = 30 (stored over x[0]).
  EXPECT_EQ(m.mem(0), 30);
}

TEST(Programs, HaltLimitsRespected) {
  Program p = random_arith(10, 1000000, 0.2, 1);
  Machine m;
  auto st = m.run(p, 5000);
  EXPECT_EQ(st.instructions, 5000u);  // capped
}

}  // namespace
