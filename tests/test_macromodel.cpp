#include <gtest/gtest.h>

#include "core/macromodel.hpp"
#include "sim/streams.hpp"

namespace {

using namespace hlp;
using namespace hlp::core;

ModuleCharacterization characterize_adder(int width, double p1,
                                          std::size_t cycles,
                                          std::uint64_t seed) {
  auto mod = netlist::adder_module(width);
  stats::Rng rng(seed);
  auto in = sim::random_stream(2 * width, cycles, p1, rng);
  return characterize(mod, in);
}

TEST(Characterize, RecordsConsistentData) {
  auto chr = characterize_adder(6, 0.5, 300, 1);
  EXPECT_EQ(chr.transitions(), 299u);
  EXPECT_EQ(chr.n_in, 12);
  EXPECT_GT(chr.mean_energy(), 0.0);
  for (std::size_t t = 0; t < chr.transitions(); ++t) {
    EXPECT_GE(chr.energy[t], 0.0);
    EXPECT_GE(chr.in_activity[t], 0.0);
    EXPECT_LE(chr.in_activity[t], 1.0);
  }
}

TEST(Characterize, FrozenInputsGiveZeroEnergy) {
  auto mod = netlist::adder_module(4);
  stats::VectorStream in;
  in.width = 8;
  in.words.assign(50, 0xA5);  // constant input
  auto chr = characterize(mod, in);
  for (double e : chr.energy) EXPECT_EQ(e, 0.0);
}

TEST(PfaModel, PredictsMeanEnergy) {
  auto chr = characterize_adder(8, 0.5, 500, 2);
  PfaModel pfa;
  pfa.fit(chr);
  EXPECT_NEAR(pfa.predict(), chr.mean_energy(), 1e-9);
}

TEST(PfaModel, MissesDataDependency) {
  // PFA trained on random data badly mispredicts a low-activity stream —
  // the weakness the paper points out.
  auto chr_train = characterize_adder(8, 0.5, 800, 3);
  PfaModel pfa;
  pfa.fit(chr_train);
  auto mod = netlist::adder_module(8);
  stats::Rng rng(4);
  auto quiet = sim::correlated_stream(16, 800, 0.95, rng);
  auto chr_quiet = characterize(mod, quiet);
  EXPECT_GT(pfa.predict(), 2.0 * chr_quiet.mean_energy());
}

TEST(BitwiseModel, TracksPerPinActivity) {
  auto chr = characterize_adder(8, 0.5, 1500, 5);
  BitwiseModel bw;
  bw.fit(chr);
  std::vector<double> pred;
  for (std::size_t t = 0; t < chr.transitions(); ++t)
    pred.push_back(bw.predict_cycle(chr.pin_toggle[t]));
  auto err = evaluate_predictions(pred, chr.energy);
  EXPECT_LT(err.avg_power_error, 0.02);
  EXPECT_LT(err.cycle_mean_abs_error, 0.5);
}

TEST(InputOutputModel, BetterThanPfaOnCycles) {
  auto chr = characterize_adder(8, 0.5, 1500, 6);
  InputOutputModel io;
  io.fit(chr);
  PfaModel pfa;
  pfa.fit(chr);
  std::vector<double> pred_io, pred_pfa;
  for (std::size_t t = 0; t < chr.transitions(); ++t) {
    pred_io.push_back(io.predict_cycle(chr.in_activity[t],
                                       chr.out_activity[t]));
    pred_pfa.push_back(pfa.predict());
  }
  auto e_io = evaluate_predictions(pred_io, chr.energy);
  auto e_pfa = evaluate_predictions(pred_pfa, chr.energy);
  EXPECT_LT(e_io.cycle_rms_error, e_pfa.cycle_rms_error);
}

TEST(DualBitModel, DetectsSignRegionOnWalkData) {
  auto mod = netlist::adder_module(8);
  stats::Rng rng(7);
  auto a = sim::gaussian_walk_stream(8, 2500, 0.98, 0.25, rng);
  auto b = sim::gaussian_walk_stream(8, 2500, 0.98, 0.25, rng);
  auto in = sim::zip_streams(a, b);
  auto chr = characterize(mod, in);
  DualBitModel db;
  int widths[2] = {8, 8};
  db.fit(chr, widths);
  EXPECT_GE(db.sign_bits(), 2);  // correlated walks have a wide sign region
  std::vector<double> pred;
  for (std::size_t t = 0; t < chr.transitions(); ++t)
    pred.push_back(db.predict_cycle(chr.prev_word[t], chr.cur_word[t]));
  auto err = evaluate_predictions(pred, chr.energy);
  EXPECT_LT(err.avg_power_error, 0.05);
}

TEST(Table3dModel, LookupReproducesTraining) {
  auto chr = characterize_adder(8, 0.5, 3000, 8);
  Table3dModel tbl(5);
  tbl.fit(chr);
  std::vector<double> pred;
  for (std::size_t t = 0; t < chr.transitions(); ++t)
    pred.push_back(tbl.predict_cycle(chr.in_prob[t], chr.in_activity[t],
                                     chr.out_activity[t]));
  auto err = evaluate_predictions(pred, chr.energy);
  EXPECT_LT(err.avg_power_error, 0.02);
}

TEST(SelectedModel, PicksFewVariablesAndPredictsWell) {
  auto chr = characterize_adder(8, 0.5, 2000, 9);
  SelectedModel sel;
  sel.fit(chr, 8);
  EXPECT_LE(sel.num_selected(), 8u);
  EXPECT_GE(sel.num_selected(), 1u);
  std::vector<double> pred;
  for (std::size_t t = 0; t < chr.transitions(); ++t)
    pred.push_back(sel.predict_cycle(chr, t));
  auto err = evaluate_predictions(pred, chr.energy);
  // Paper claim for 8-variable models: 5-10% average, 10-20% cycle error.
  EXPECT_LT(err.avg_power_error, 0.10);
  EXPECT_LT(err.cycle_mean_abs_error, 0.35);
}

class MacroModuleKind : public ::testing::TestWithParam<int> {};

TEST_P(MacroModuleKind, InputOutputModelGeneralizesAcrossActivity) {
  // Train at p=0.5, evaluate at p=0.3: the activity-sensitive model should
  // keep average error moderate.
  int kind = GetParam();
  netlist::Module mod = kind == 0   ? netlist::adder_module(8)
                        : kind == 1 ? netlist::multiplier_module(4)
                                    : netlist::parity_module(12);
  stats::Rng rng(11);
  int n_in = mod.total_input_bits();
  auto train = sim::random_stream(n_in, 1500, 0.5, rng);
  auto eval = sim::random_stream(n_in, 1500, 0.3, rng);
  auto chr_train = characterize(mod, train);
  auto chr_eval = characterize(mod, eval);
  InputOutputModel io;
  io.fit(chr_train);
  std::vector<double> pred;
  for (std::size_t t = 0; t < chr_eval.transitions(); ++t)
    pred.push_back(io.predict_cycle(chr_eval.in_activity[t],
                                    chr_eval.out_activity[t]));
  auto err = evaluate_predictions(pred, chr_eval.energy);
  // Multiplier power is superlinear in input activity, so the linear
  // input-output model extrapolates worse there (the paper recommends
  // output-activity terms for "components with deep logic nesting, such as
  // multipliers" for exactly this reason).
  double bound = kind == 1 ? 0.40 : 0.25;
  EXPECT_LT(err.avg_power_error, bound) << "module kind " << kind;
}

INSTANTIATE_TEST_SUITE_P(Modules, MacroModuleKind, ::testing::Values(0, 1, 2));

}  // namespace
