#include <gtest/gtest.h>

#include "core/bus_codec.hpp"
#include "core/bus_encoding.hpp"

namespace {

using namespace hlp;
using namespace hlp::core;

TEST(BusCodec, DecodesExactlyOneCycleLate) {
  auto codec = build_bus_invert_codec(8);
  stats::Rng rng(3);
  auto words = random_data_stream(500, 8, rng);
  auto ev = evaluate_bus_invert_codec(codec, words);
  EXPECT_TRUE(ev.functionally_correct);
}

TEST(BusCodec, MatchesBehavioralEncoderTransitionCount) {
  const int w = 8;
  auto codec = build_bus_invert_codec(w);
  stats::Rng rng(5);
  auto words = random_data_stream(2000, w, rng);
  auto ev = evaluate_bus_invert_codec(codec, words);
  auto behavioral = bus_invert_encoder(w);
  auto r = run_encoder(*behavioral, words, w);
  EXPECT_NEAR(ev.bus_transitions_bi, r.per_word, 0.05);
}

TEST(BusCodec, SavesBusTransitionsOnRandomData) {
  auto codec = build_bus_invert_codec(16);
  stats::Rng rng(7);
  auto words = random_data_stream(3000, 16, rng);
  auto ev = evaluate_bus_invert_codec(codec, words);
  EXPECT_LT(ev.bus_transitions_bi, ev.bus_transitions_binary);
}

TEST(BusCodec, BreakevenCapacitanceIsFinitePositive) {
  auto codec = build_bus_invert_codec(16);
  stats::Rng rng(9);
  auto words = random_data_stream(3000, 16, rng);
  auto ev = evaluate_bus_invert_codec(codec, words);
  double be = ev.breakeven_cbus();
  ASSERT_TRUE(std::isfinite(be));
  EXPECT_GT(be, 0.0);
  // Below break-even, plain binary wins; above, bus-invert wins.
  EXPECT_LT(ev.total_binary(be * 0.5), ev.total_bi(be * 0.5));
  EXPECT_GT(ev.total_binary(be * 2.0), ev.total_bi(be * 2.0));
}

TEST(BusCodec, NoAdvantageOnConstantStream) {
  auto codec = build_bus_invert_codec(8);
  std::vector<std::uint64_t> words(200, 0x5A);
  auto ev = evaluate_bus_invert_codec(codec, words);
  EXPECT_EQ(ev.bus_transitions_binary, 0.0);
  EXPECT_EQ(ev.bus_transitions_bi, 0.0);
  EXPECT_TRUE(std::isinf(ev.breakeven_cbus()));
}

class CodecWidth : public ::testing::TestWithParam<int> {};

TEST_P(CodecWidth, RoundTripAcrossWidths) {
  int w = GetParam();
  auto codec = build_bus_invert_codec(w);
  stats::Rng rng(11);
  auto words = random_data_stream(300, w, rng);
  auto ev = evaluate_bus_invert_codec(codec, words);
  EXPECT_TRUE(ev.functionally_correct) << "width " << w;
}

INSTANTIATE_TEST_SUITE_P(Widths, CodecWidth, ::testing::Values(4, 8, 12, 16,
                                                               24, 32));

}  // namespace
