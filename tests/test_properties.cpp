// Cross-module property tests: invariants that must hold over whole
// families of circuits, machines, and seeds (TEST_P sweeps).

#include <gtest/gtest.h>

#include <cmath>

#include "bdd/netlist_bdd.hpp"
#include "cdfg/generators.hpp"
#include "core/bus_encoding.hpp"
#include "core/multivoltage.hpp"
#include "core/retiming_power.hpp"
#include "core/shutdown.hpp"
#include "fsm/encoding.hpp"
#include "fsm/minimize.hpp"
#include "sim/glitch_sim.hpp"
#include "sim/simulator.hpp"
#include "sim/streams.hpp"

namespace {

using namespace hlp;

// --- Random-logic equivalence: BDD vs simulator over seeds ---------------

class RandomLogicSeed : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomLogicSeed, BddAgreesWithSimulatorEverywhere) {
  auto mod = netlist::random_logic_module(10, 60, 5, GetParam());
  bdd::Manager mgr;
  auto bdds = bdd::build_bdds(mgr, mod.netlist);
  sim::Simulator s(mod.netlist);
  for (std::uint64_t in = 0; in < 1024; ++in) {
    s.set_all_inputs(in);
    s.eval();
    for (std::size_t o = 0; o < mod.netlist.outputs().size(); ++o)
      ASSERT_EQ(mgr.eval(bdds.output(mod.netlist, o), in),
                s.value(mod.netlist.outputs()[o]))
          << "seed " << GetParam() << " input " << in;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomLogicSeed,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// --- Glitch simulation invariants over module families -------------------

class GlitchFamily : public ::testing::TestWithParam<int> {};

TEST_P(GlitchFamily, TotalActivityDominatesFunctional) {
  netlist::Module mod;
  switch (GetParam()) {
    case 0: mod = netlist::adder_module(8); break;
    case 1: mod = netlist::multiplier_module(4); break;
    case 2: mod = netlist::alu_module(5); break;
    case 3: mod = netlist::parity_module(10); break;
    case 4: mod = netlist::comparator_module(8); break;
    default: mod = netlist::multiply_reduce_module(4, 3); break;
  }
  stats::Rng rng(5);
  auto in = sim::random_stream(mod.total_input_bits(), 400, 0.5, rng);
  auto gl = sim::simulate_glitches(mod.netlist, in);
  auto zero = sim::simulate_activities(mod.netlist, in);
  double glitch_total = 0.0;
  for (netlist::GateId g = 0; g < mod.netlist.gate_count(); ++g) {
    ASSERT_GE(gl.total_activity[g] + 1e-12, gl.functional_activity[g]);
    ASSERT_NEAR(gl.functional_activity[g], zero[g], 1e-9);
    glitch_total += gl.total_activity[g] - gl.functional_activity[g];
  }
  // Reconvergent structures must show some glitching; fanout-free trees
  // (parity) may legitimately show none.
  if (GetParam() == 1 || GetParam() == 5) {
    EXPECT_GT(glitch_total, 0.1);
  }
}

INSTANTIATE_TEST_SUITE_P(Families, GlitchFamily,
                         ::testing::Values(0, 1, 2, 3, 4, 5));

// --- Bus encoders: redundancy and bound properties ------------------------

class BusStreamSeed : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BusStreamSeed, BusInvertNeverWorseThanBinaryPlusInvLine) {
  const int w = 12;
  stats::Rng rng(GetParam());
  auto stream = core::address_stream(3000, 0.5, w, rng);
  auto bin = core::binary_encoder(w);
  auto bi = core::bus_invert_encoder(w);
  auto rb = core::run_encoder(*bin, stream, w);
  auto ri = core::run_encoder(*bi, stream, w);
  // Bus-invert flips only when it strictly reduces data transitions, and
  // pays at most 1 INV transition when it does; per word it can never
  // exceed binary by more than... in fact its data+INV total is <= binary's
  // transitions + 0 (the flip case strictly improves by >= 1 and costs 1).
  EXPECT_LE(ri.per_word, rb.per_word + 1e-9);
}

TEST_P(BusStreamSeed, T0NeverWorseThanBinaryOnAddressStreams) {
  const int w = 12;
  stats::Rng rng(GetParam() + 100);
  auto stream = core::address_stream(3000, 0.7, w, rng);
  auto bin = core::binary_encoder(w);
  auto t0 = core::t0_encoder(w);
  auto rb = core::run_encoder(*bin, stream, w);
  auto rt = core::run_encoder(*t0, stream, w);
  // In-sequence words are free; out-of-sequence words cost the same data
  // transitions plus at most one INC-line transition.
  EXPECT_LE(rt.per_word, rb.per_word + 1.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BusStreamSeed,
                         ::testing::Values(1, 7, 42, 99, 1234));

// --- Scheduling: structural bounds over random graphs --------------------

class CdfgSeed : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CdfgSeed, ListScheduleNeverBeatsAsap) {
  auto g = cdfg::random_expr_tree(12, 0.4, GetParam());
  auto a = cdfg::asap(g);
  std::map<cdfg::OpKind, int> limits{{cdfg::OpKind::Mul, 1},
                                     {cdfg::OpKind::Add, 1}};
  auto l = cdfg::list_schedule(g, limits);
  EXPECT_GE(l.length, a.length);
  // And with no limits it matches ASAP exactly.
  auto free_sched = cdfg::list_schedule(g, {});
  EXPECT_EQ(free_sched.length, a.length);
}

TEST_P(CdfgSeed, AlapNeverEarlierThanAsap) {
  auto g = cdfg::branching_cdfg(3, 3, GetParam());
  auto a = cdfg::asap(g);
  auto l = cdfg::alap(g, a.length + 4);
  for (cdfg::OpId id = 0; id < g.size(); ++id)
    EXPECT_GE(l.start[id], a.start[id]) << "op " << id;
}

TEST_P(CdfgSeed, MultiVoltageEnergyMonotoneInSlack) {
  auto g = cdfg::random_expr_tree(10, 0.5, GetParam());
  core::VoltageLibrary lib;
  lib.voltages = {5.0, 3.3, 2.4};
  auto base = core::single_voltage_baseline(g, lib);
  double prev = 1e300;
  for (int slack : {0, 2, 5, 10}) {
    auto mv = core::schedule_multivoltage(g, lib, base.latency + slack);
    ASSERT_TRUE(mv.feasible);
    EXPECT_LE(mv.energy, prev + 1e-9);
    EXPECT_LE(mv.energy, base.energy + 1e-9);
    prev = mv.energy;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CdfgSeed,
                         ::testing::Values(3, 11, 29, 47, 83));

// --- FSM: encoding/minimization invariants over machines ------------------

class FsmSeed : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FsmSeed, MinimizationNeverGrowsAndPreservesIO) {
  auto stg = fsm::random_fsm(14, 2, 2, GetParam());
  auto min = fsm::minimize(stg);
  EXPECT_LE(min.num_states(), stg.num_states());
  stats::Rng rng(GetParam() + 1);
  fsm::StateId s1 = 0, s2 = 0;
  for (int c = 0; c < 500; ++c) {
    std::uint64_t a = rng.uniform_bits(2);
    ASSERT_EQ(stg.output(s1, a), min.output(s2, a));
    s1 = stg.next(s1, a);
    s2 = min.next(s2, a);
  }
}

TEST_P(FsmSeed, LowPowerEncodingNeverWorseThanItsBinaryStart) {
  auto stg = fsm::random_fsm(12, 2, 2, GetParam());
  auto ma = fsm::analyze_markov(stg);
  auto bin = fsm::encode_states(stg, fsm::EncodingStyle::Binary, &ma);
  auto lp = fsm::encode_states(stg, fsm::EncodingStyle::LowPower, &ma,
                               GetParam());
  EXPECT_LE(fsm::expected_code_switching(ma, lp),
            fsm::expected_code_switching(ma, bin) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FsmSeed,
                         ::testing::Values(5, 17, 23, 61, 101));

// --- Shutdown: ski-rental style bound --------------------------------------

TEST(ShutdownProperty, BreakevenTimeoutIsTwoCompetitive) {
  // The classic result: a static timeout equal to the break-even time is
  // 2-competitive against the clairvoyant policy on the *idle-interval*
  // cost. Verify on many random workloads (small tolerance for the
  // restart-delay accounting).
  core::DeviceParams dev;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    stats::Rng rng(seed);
    auto w = core::session_workload(2000, rng);
    auto oracle = core::oracle_policy(w, dev);
    auto stat = core::static_timeout_policy(core::breakeven_idle(dev));
    auto r_oracle = core::simulate_policy(w, dev, *oracle);
    auto r_stat = core::simulate_policy(w, dev, *stat);
    // Compare idle-phase energies: subtract the busy energy common to both.
    double busy = 0.0;
    for (auto& e : w) busy += e.active * dev.p_active;
    double idle_oracle = r_oracle.energy - busy;
    double idle_stat = r_stat.energy - busy;
    EXPECT_LE(idle_stat, 2.0 * idle_oracle * 1.05 + 1e-6) << "seed " << seed;
  }
}

// --- Retiming: every cut of every family stays functionally correct ------

class RetimingFamilySeed : public ::testing::TestWithParam<int> {};

TEST_P(RetimingFamilySeed, AllCutsCorrectEverywhere) {
  netlist::Module mod = GetParam() % 2 == 0
                            ? netlist::multiply_reduce_module(4, 3)
                            : netlist::alu_module(4);
  stats::Rng rng(7);
  auto in = sim::random_stream(mod.total_input_bits(), 200, 0.5, rng);
  int depth = mod.netlist.depth();
  for (int cut = 0; cut < depth; cut += 1 + depth / 6) {
    auto rc = core::place_registers_at_cut(mod, cut);
    auto ev = core::evaluate_retimed(rc, mod, in);
    ASSERT_TRUE(ev.functionally_correct)
        << "family " << GetParam() << " cut " << cut;
  }
}

INSTANTIATE_TEST_SUITE_P(Families, RetimingFamilySeed, ::testing::Values(0, 1));

}  // namespace
