#include <gtest/gtest.h>

#include "core/guarded_eval.hpp"
#include "netlist/words.hpp"
#include "sim/streams.hpp"

namespace {

using namespace hlp;
using namespace hlp::core;
using netlist::GateKind;

/// Shared-ALU style module: out = sel ? (a+b) : (a&b reduced cone).
netlist::Module alu_select_module(int n) {
  netlist::Module m;
  m.name = "alusel";
  auto& nl = m.netlist;
  auto a = netlist::make_input_word(nl, n, "a");
  auto b = netlist::make_input_word(nl, n, "b");
  auto sel = nl.add_input("sel");
  auto sum = netlist::ripple_adder(nl, a, b);
  auto mult = netlist::array_multiplier(nl, a, b);
  mult.resize(sum.size(), mult.empty() ? 0 : mult.back());
  auto out = netlist::mux_word(nl, sel, sum, mult);
  netlist::mark_output_word(nl, out, "y");
  m.input_words = {a, b, {sel}};
  m.output_words = {out};
  return m;
}

TEST(GuardedEval, FindsCandidatesInMuxedDesign) {
  auto mod = alu_select_module(4);
  auto guards = find_guards(mod);
  EXPECT_FALSE(guards.empty());
  for (auto& g : guards) {
    EXPECT_TRUE(g.odc_verified);
    EXPECT_GE(g.cone.size(), 2u);
  }
}

TEST(GuardedEval, TransformPreservesFunction) {
  auto mod = alu_select_module(4);
  auto guards = find_guards(mod);
  ASSERT_FALSE(guards.empty());
  auto gc = apply_guards(mod, guards);
  stats::Rng rng(3);
  auto in = sim::random_stream(9, 2000, 0.5, rng);
  auto res = evaluate_guarded(mod, gc, in);
  EXPECT_TRUE(res.functionally_correct);
}

TEST(GuardedEval, SavesPowerWhenOneSideDominates) {
  auto mod = alu_select_module(6);
  auto guards = find_guards(mod);
  ASSERT_FALSE(guards.empty());
  auto gc = apply_guards(mod, guards);
  // sel mostly selects the adder; the multiplier cone is usually blocked.
  stats::Rng rng(5);
  auto data = sim::random_stream(12, 4000, 0.5, rng);
  auto selbit = sim::random_stream(1, 4000, 0.05, rng);  // sel=0 mostly
  auto in = sim::zip_streams(data, selbit);
  auto res = evaluate_guarded(mod, gc, in);
  ASSERT_TRUE(res.functionally_correct);
  EXPECT_LT(res.guarded_power, res.base_power);
}

TEST(GuardedEval, LatchCountMatchesBoundary) {
  auto mod = alu_select_module(4);
  auto guards = find_guards(mod);
  ASSERT_FALSE(guards.empty());
  auto gc = apply_guards(mod, guards);
  EXPECT_GT(gc.latches, 0u);
  EXPECT_EQ(gc.netlist.dffs().size(), gc.latches);
}

TEST(GuardedEval, NoCandidatesInMuxFreeLogic) {
  auto mod = netlist::adder_module(6);
  auto guards = find_guards(mod);
  EXPECT_TRUE(guards.empty());
}

}  // namespace
