#include <gtest/gtest.h>

#include "core/shutdown.hpp"

namespace {

using namespace hlp;
using namespace hlp::core;

std::vector<WorkloadEvent> make_workload(std::uint64_t seed,
                                         std::size_t n = 3000) {
  stats::Rng rng(seed);
  return session_workload(n, rng);
}

TEST(Workload, HasHeavyIdleTail) {
  auto w = make_workload(1);
  double max_idle = 0.0, total_idle = 0.0, total_active = 0.0;
  for (auto& e : w) {
    max_idle = std::max(max_idle, e.idle);
    total_idle += e.idle;
    total_active += e.active;
  }
  EXPECT_GT(max_idle, 1000.0);
  EXPECT_GT(total_idle, total_active);  // mostly idle, like an X server
}

TEST(Breakeven, MatchesEnergyAlgebra) {
  DeviceParams dev;
  double t = breakeven_idle(dev);
  // At exactly t, sleeping and staying idle cost the same.
  EXPECT_NEAR(dev.p_idle * t, dev.p_sleep * t + dev.e_restart, 1e-9);
}

TEST(Policies, AlwaysOnHasNoDelayAndFullPower) {
  auto w = make_workload(2);
  DeviceParams dev;
  auto p = always_on_policy();
  auto r = simulate_policy(w, dev, *p);
  EXPECT_EQ(r.delay_penalty, 0.0);
  EXPECT_EQ(r.shutdowns, 0u);
  EXPECT_NEAR(r.avg_power(), dev.p_active, 0.3);  // p_idle ~ p_active here
}

TEST(Policies, OracleBeatsEveryone) {
  auto w = make_workload(3);
  DeviceParams dev;
  auto oracle = oracle_policy(w, dev);
  auto r_oracle = simulate_policy(w, dev, *oracle);
  for (auto& mk : {static_timeout_policy(2 * breakeven_idle(dev)),
                   regression_policy(dev), threshold_policy(dev),
                   hwang_wu_policy(dev)}) {
    auto r = simulate_policy(w, dev, *mk);
    EXPECT_LE(r_oracle.energy, r.energy * 1.001) << mk->name();
  }
  // The oracle never pays visible wake-up delay (perfect prewakeup).
  EXPECT_NEAR(r_oracle.delay_penalty, 0.0, 1e-9);
}

TEST(Policies, PredictiveBeatsStaticTimeout) {
  auto w = make_workload(4);
  DeviceParams dev;
  auto stat = static_timeout_policy(2.0 * breakeven_idle(dev));
  auto hw = hwang_wu_policy(dev);
  auto r_stat = simulate_policy(w, dev, *stat);
  auto r_hw = simulate_policy(w, dev, *hw);
  EXPECT_LT(r_hw.avg_power(), r_stat.avg_power());
}

TEST(Policies, ShutdownGivesLargeImprovement) {
  // The paper reports up to 38x power improvement from predictive shutdown
  // on event-driven workloads; our heavy-tail workload should show >5x.
  auto w = make_workload(5);
  DeviceParams dev;
  auto on = always_on_policy();
  auto hw = hwang_wu_policy(dev);
  auto r_on = simulate_policy(w, dev, *on);
  auto r_hw = simulate_policy(w, dev, *hw);
  EXPECT_GT(r_on.avg_power() / r_hw.avg_power(), 5.0);
}

TEST(Policies, PerformanceLossIsBounded) {
  auto w = make_workload(6);
  DeviceParams dev;
  double busy = 0.0;
  for (auto& e : w) busy += e.active;
  auto hw = hwang_wu_policy(dev);
  auto r = simulate_policy(w, dev, *hw);
  // Paper: ~3% performance loss for predictive shutdown.
  EXPECT_LT(r.perf_loss(busy), 0.15);
}

TEST(Policies, StaticTimeoutTradeoff) {
  // Smaller T sleeps more (less energy, more delay); larger T the reverse.
  auto w = make_workload(7);
  DeviceParams dev;
  auto small = static_timeout_policy(0.5 * breakeven_idle(dev));
  auto large = static_timeout_policy(20.0 * breakeven_idle(dev));
  auto r_small = simulate_policy(w, dev, *small);
  auto r_large = simulate_policy(w, dev, *large);
  EXPECT_LT(r_small.energy, r_large.energy);
  EXPECT_GE(r_small.shutdowns, r_large.shutdowns);
}

TEST(MaxImprovement, MatchesFormula) {
  std::vector<WorkloadEvent> w{{10.0, 90.0}, {10.0, 90.0}};
  EXPECT_NEAR(max_power_improvement(w), 10.0, 1e-12);
}

TEST(Simulate, EnergyConservation) {
  // All policies on the same workload keep elapsed >= busy+idle time.
  auto w = make_workload(8, 500);
  DeviceParams dev;
  double base_time = 0.0;
  for (auto& e : w) base_time += e.active + e.idle;
  for (auto& mk : {always_on_policy(), static_timeout_policy(5.0),
                   hwang_wu_policy(dev)}) {
    auto r = simulate_policy(w, dev, *mk);
    EXPECT_GE(r.elapsed + 1e-9, base_time) << mk->name();
    EXPECT_GT(r.energy, 0.0);
  }
}

}  // namespace
