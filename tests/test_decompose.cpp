#include <gtest/gtest.h>

#include "fsm/decompose.hpp"

namespace {

using namespace hlp::fsm;

TEST(Decompose, PartitionIsBalancedAndComplete) {
  auto stg = random_fsm(16, 2, 2, 7);
  auto ma = analyze_markov(stg);
  auto part = partition_min_crossing(stg, ma);
  ASSERT_EQ(part.size(), 16u);
  int ones = 0;
  for (int b : part) {
    EXPECT_TRUE(b == 0 || b == 1);
    ones += b;
  }
  EXPECT_GE(ones, 4);
  EXPECT_LE(ones, 12);
}

TEST(Decompose, OptimizedPartitionBeatsNaiveSplit) {
  auto stg = protocol_fsm(7);
  auto ma = analyze_markov(stg);
  auto opt = partition_min_crossing(stg, ma);
  Partition naive(stg.num_states(), 0);
  for (std::size_t s = 0; s < stg.num_states(); s += 2) naive[s] = 1;
  EXPECT_LE(crossing_probability(stg, ma, opt),
            crossing_probability(stg, ma, naive));
}

TEST(Decompose, SubmachinesPartitionTheStates) {
  auto stg = random_fsm(12, 1, 2, 9);
  auto ma = analyze_markov(stg);
  auto part = partition_min_crossing(stg, ma);
  auto subs = build_submachines(stg, part);
  ASSERT_EQ(subs.size(), 2u);
  EXPECT_EQ(subs[0].members.size() + subs[1].members.size(),
            stg.num_states());
  // Each submachine = members + one wait state.
  EXPECT_EQ(subs[0].stg.num_states(), subs[0].members.size() + 1);
  EXPECT_EQ(subs[1].stg.num_states(), subs[1].members.size() + 1);
}

TEST(Decompose, InternalTransitionsPreserved) {
  auto stg = random_fsm(10, 1, 3, 21);
  auto ma = analyze_markov(stg);
  auto part = partition_min_crossing(stg, ma);
  auto subs = build_submachines(stg, part);
  for (const auto& sm : subs) {
    for (std::size_t i = 0; i < sm.members.size(); ++i) {
      StateId orig = sm.members[i];
      for (std::uint64_t a = 0; a < stg.n_symbols(); ++a) {
        EXPECT_EQ(sm.stg.output(static_cast<StateId>(i), a),
                  stg.output(orig, a));
      }
    }
    // Wait self-loops.
    for (std::uint64_t a = 0; a < sm.stg.n_symbols(); ++a)
      EXPECT_EQ(sm.stg.next(sm.wait, a), sm.wait);
  }
}

TEST(Decompose, EvaluationTracksMonolithicOutputs) {
  auto stg = protocol_fsm(6);
  auto ma = analyze_markov(stg);
  auto part = partition_min_crossing(stg, ma);
  auto ev = evaluate_decomposition(stg, part, 3000, 5);
  EXPECT_TRUE(ev.functionally_correct);
  EXPECT_GT(ev.mono_power, 0.0);
  EXPECT_GT(ev.decomposed_power, 0.0);
  // Exactly one machine is active per cycle, plus one extra clocked cycle
  // per crossing for the wake handshake.
  EXPECT_NEAR(ev.active_fraction[0] + ev.active_fraction[1],
              1.0 + ev.crossing_rate, 0.05);
}

TEST(Decompose, SavesPowerOnLopsidedActivity) {
  // Protocol FSM with rare requests: the burst block is almost always
  // waiting, so shutting it down pays.
  auto stg = protocol_fsm(10);
  std::vector<double> probs{0.92, 0.04, 0.0, 0.04};
  auto ma = analyze_markov(stg, probs);
  auto part = partition_min_crossing(stg, ma);
  auto ev = evaluate_decomposition(stg, part, 6000, 7, probs);
  EXPECT_TRUE(ev.functionally_correct);
  EXPECT_LT(ev.decomposed_power, ev.mono_power);
}

}  // namespace
