#include <gtest/gtest.h>

#include "core/clock_gating.hpp"
#include "fsm/encoding.hpp"

namespace {

using namespace hlp;
using namespace hlp::core;

fsm::SynthesizedFsm synth(const fsm::Stg& stg) {
  auto ma = fsm::analyze_markov(stg);
  auto codes = fsm::encode_states(stg, fsm::EncodingStyle::Binary, &ma);
  return fsm::synthesize_fsm(
      stg, codes, fsm::encoding_bits(fsm::EncodingStyle::Binary,
                                     stg.num_states()));
}

TEST(ClockGating, ReactiveFsmMostlyIdle) {
  auto stg = fsm::protocol_fsm(3);
  auto sf = synth(stg);
  stats::Rng rng(3);
  // Requests are rare: idle self-loop dominates.
  std::vector<double> probs{0.9, 0.033, 0.034, 0.033};
  auto res = evaluate_clock_gating(stg, sf, 5000, rng, probs);
  EXPECT_GT(res.idle_fraction, 0.5);
  EXPECT_LT(res.gated_power, res.base_power);
  EXPECT_GT(res.saving(), 0.05);
}

TEST(ClockGating, BusyFsmGainsLittle) {
  auto stg = fsm::counter_fsm(3);
  auto sf = synth(stg);
  stats::Rng rng(5);
  // Counter always enabled: never self-loops.
  std::vector<double> probs{0.0, 1.0};
  auto res = evaluate_clock_gating(stg, sf, 3000, rng, probs);
  EXPECT_NEAR(res.idle_fraction, 0.0, 1e-9);
  // Gating only adds the F_a overhead.
  EXPECT_GE(res.gated_power, res.base_power);
}

TEST(ClockGating, SavingGrowsWithIdleness) {
  auto stg = fsm::protocol_fsm(4);
  auto sf = synth(stg);
  double prev_saving = -1.0;
  int i = 0;
  for (double req_prob : {0.5, 0.2, 0.05}) {
    stats::Rng rng(7 + static_cast<std::uint64_t>(i++));
    std::vector<double> probs{(1 - req_prob), req_prob / 2, 0.0,
                              req_prob / 2};
    auto res = evaluate_clock_gating(stg, sf, 6000, rng, probs);
    EXPECT_GE(res.saving(), prev_saving - 0.05);
    prev_saving = res.saving();
  }
  EXPECT_GT(prev_saving, 0.1);
}

TEST(ClockGating, ActivationLogicCounted) {
  auto stg = fsm::protocol_fsm(2);
  auto sf = synth(stg);
  stats::Rng rng(9);
  auto res = evaluate_clock_gating(stg, sf, 1000, rng);
  EXPECT_GT(res.fa_gates, 0u);
}

}  // namespace
