#include <gtest/gtest.h>

#include <set>

#include "fsm/benchmarks.hpp"
#include "fsm/encoding.hpp"
#include "fsm/symbolic.hpp"

namespace {

using namespace hlp;
using namespace hlp::fsm;

SynthesizedFsm synth_binary(const Stg& stg) {
  auto ma = analyze_markov(stg);
  auto codes = encode_states(stg, EncodingStyle::Binary, &ma);
  return synthesize_fsm(
      stg, codes, encoding_bits(EncodingStyle::Binary, stg.num_states()));
}

/// Explicit reachable-state set for cross-checking.
std::set<StateId> explicit_reachable(const Stg& stg) {
  std::set<StateId> seen{0};
  std::vector<StateId> stack{0};
  while (!stack.empty()) {
    StateId s = stack.back();
    stack.pop_back();
    for (std::uint64_t a = 0; a < stg.n_symbols(); ++a) {
      StateId t = stg.next(s, a);
      if (seen.insert(t).second) stack.push_back(t);
    }
  }
  return seen;
}

TEST(Symbolic, CounterReachesAllCodes) {
  auto stg = counter_fsm(4);
  auto sf = synth_binary(stg);
  bdd::Manager mgr;
  auto sym = build_symbolic(mgr, sf);
  auto res = symbolic_reachability(sym);
  EXPECT_EQ(res.reached, bdd::kTrue);  // every 4-bit code is a state
  EXPECT_NEAR(res.count, 16.0, 1e-9);
  // Sequential depth of a 16-cycle counter: 16 image steps to close.
  EXPECT_GE(res.iterations, 16);
}

TEST(Symbolic, MatchesExplicitReachability) {
  for (std::uint64_t seed : {3u, 7u, 21u}) {
    auto stg = random_fsm(11, 2, 2, seed);  // 11 states in 4 bits
    auto sf = synth_binary(stg);
    bdd::Manager mgr;
    auto sym = build_symbolic(mgr, sf);
    auto res = symbolic_reachability(sym);
    auto expl = explicit_reachable(stg);
    EXPECT_NEAR(res.count, static_cast<double>(expl.size()), 1e-9)
        << "seed " << seed;
    for (std::size_t s = 0; s < stg.num_states(); ++s) {
      bool expect = expl.count(static_cast<StateId>(s)) > 0;
      EXPECT_EQ(code_reachable(sym, res.reached, sf.codes[s]), expect)
          << "seed " << seed << " state " << s;
    }
    // Codes outside the state set must be unreachable.
    for (std::uint64_t c = stg.num_states(); c < 16; ++c)
      EXPECT_FALSE(code_reachable(sym, res.reached, c)) << "code " << c;
  }
}

TEST(Symbolic, ControllersUseOnlyTheirCodes) {
  for (auto& [name, stg] : controller_benchmarks()) {
    auto sf = synth_binary(stg);
    bdd::Manager mgr;
    auto sym = build_symbolic(mgr, sf);
    auto res = symbolic_reachability(sym);
    EXPECT_NEAR(res.count, static_cast<double>(explicit_reachable(stg).size()),
                1e-9)
        << name;
  }
}

TEST(Symbolic, IterationCountIsSequentialDepthPlusClosure) {
  // protocol_fsm(6): idle -> b0..b5; the frontier grows one state per
  // image (sequential depth 6), and the 7th image detects closure.
  auto stg = protocol_fsm(6);
  auto sf = synth_binary(stg);
  bdd::Manager mgr;
  auto sym = build_symbolic(mgr, sf);
  auto res = symbolic_reachability(sym);
  EXPECT_EQ(res.iterations, 7);
}

}  // namespace
