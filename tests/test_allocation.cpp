#include <gtest/gtest.h>

#include "cdfg/generators.hpp"
#include "core/allocation.hpp"
#include "stats/rng.hpp"

namespace {

using namespace hlp;
using namespace hlp::core;
using cdfg::Cdfg;
using cdfg::OpId;
using cdfg::OpKind;

struct AllocSetup {
  Cdfg g;
  cdfg::Schedule s;
  cdfg::DataTrace tr;

  explicit AllocSetup(int taps, std::uint64_t seed) {
    g = cdfg::fir_cdfg(taps);
    std::map<OpKind, int> limits{{OpKind::Mul, 2}, {OpKind::Add, 2}};
    s = cdfg::list_schedule(g, limits);
    // Correlated input data so switching-aware pairing matters.
    stats::Rng rng(seed);
    std::vector<std::vector<std::int64_t>> inputs;
    int n_inputs = 0;
    for (OpId i = 0; i < g.size(); ++i)
      if (g.op(i).kind == OpKind::Input) ++n_inputs;
    for (int i = 0; i < n_inputs; ++i) {
      std::vector<std::int64_t> vs;
      std::int64_t v = rng.uniform_int(0, 255);
      for (int t = 0; t < 300; ++t) {
        v = (v + rng.uniform_int(-2, 2)) & 0xFF;
        vs.push_back(v);
      }
      inputs.push_back(vs);
    }
    tr = cdfg::simulate_cdfg(g, inputs);
  }
};

TEST(RegisterBinding, AssignsCompatibleLifetimes) {
  AllocSetup su(6, 3);
  auto res = bind_registers(su.g, su.s, su.tr, true);
  EXPECT_GT(res.resources, 0);
  // No two variables in the same register may have overlapping lifetimes.
  auto lt = cdfg::lifetimes(su.g, su.s);
  for (OpId a = 0; a < su.g.size(); ++a)
    for (OpId b = a + 1; b < su.g.size(); ++b) {
      if (res.assignment[a] < 0 || res.assignment[a] != res.assignment[b])
        continue;
      bool disjoint =
          lt.last_use[a] <= lt.def[b] || lt.last_use[b] <= lt.def[a];
      EXPECT_TRUE(disjoint) << "ops " << a << "," << b;
    }
}

TEST(RegisterBinding, PowerAwareNotWorseThanBlind) {
  double aware_total = 0.0, blind_total = 0.0;
  for (std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    AllocSetup su(8, seed);
    auto aware = bind_registers(su.g, su.s, su.tr, true);
    auto blind = bind_registers(su.g, su.s, su.tr, false);
    aware_total += aware.switching;
    blind_total += blind.switching;
  }
  EXPECT_LT(aware_total, blind_total);
  // Paper: savings of 5-33%.
  double saving = 1.0 - aware_total / blind_total;
  EXPECT_GT(saving, 0.03);
}

TEST(FuBinding, SameKindOnly) {
  AllocSetup su(6, 7);
  auto res = bind_functional_units(su.g, su.s, su.tr, true);
  std::map<int, OpKind> kind_of_unit;
  for (OpId id = 0; id < su.g.size(); ++id) {
    if (res.assignment[id] < 0) continue;
    auto it = kind_of_unit.find(res.assignment[id]);
    if (it == kind_of_unit.end())
      kind_of_unit[res.assignment[id]] = su.g.op(id).kind;
    else
      EXPECT_EQ(it->second, su.g.op(id).kind);
  }
}

TEST(FuBinding, NoTemporalOverlapOnUnit) {
  AllocSetup su(8, 9);
  auto res = bind_functional_units(su.g, su.s, su.tr, true);
  cdfg::OpDelays d;
  for (OpId a = 0; a < su.g.size(); ++a)
    for (OpId b = a + 1; b < su.g.size(); ++b) {
      if (res.assignment[a] < 0 || res.assignment[a] != res.assignment[b])
        continue;
      int fa = su.s.start[a] + d.of(su.g.op(a).kind);
      int fb = su.s.start[b] + d.of(su.g.op(b).kind);
      bool disjoint = fa <= su.s.start[b] || fb <= su.s.start[a];
      EXPECT_TRUE(disjoint);
    }
}

TEST(FuBinding, PowerAwareReducesOperandSwitching) {
  double aware_total = 0.0, blind_total = 0.0;
  for (std::uint64_t seed : {11u, 12u, 13u, 14u, 15u}) {
    AllocSetup su(8, seed);
    auto aware = bind_functional_units(su.g, su.s, su.tr, true);
    auto blind = bind_functional_units(su.g, su.s, su.tr, false);
    aware_total += aware.switching;
    blind_total += blind.switching;
  }
  EXPECT_LE(aware_total, blind_total * 1.02);
}

TEST(RegisterSwitching, ZeroForSingleVariableRegisters) {
  // With one variable per register and only one iteration of data, wrap
  // switching dominates; with constant data streams it must be 0.
  Cdfg g;
  auto a = g.add_input("a");
  auto x = g.add_binary(OpKind::Mul, a, a);
  auto y = g.add_binary(OpKind::Add, x, a);
  g.mark_output(y);
  auto s = cdfg::asap(g);
  std::vector<std::vector<std::int64_t>> in{{5, 5, 5, 5}};
  auto tr = cdfg::simulate_cdfg(g, in);
  auto res = bind_registers(g, s, tr, true);
  EXPECT_EQ(res.switching, 0.0);
}

}  // namespace
