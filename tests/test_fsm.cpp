#include <gtest/gtest.h>

#include <bit>
#include <set>

#include "fsm/encoding.hpp"
#include "fsm/markov.hpp"
#include "fsm/minimize.hpp"
#include "fsm/stg.hpp"
#include "fsm/synth.hpp"
#include "sim/simulator.hpp"
#include "stats/rng.hpp"

namespace {

using namespace hlp::fsm;

TEST(Stg, CounterCounts) {
  auto stg = counter_fsm(3);
  EXPECT_EQ(stg.num_states(), 8u);
  StateId s = 0;
  for (int i = 0; i < 20; ++i) {
    StateId expect = static_cast<StateId>((i) % 8);
    EXPECT_EQ(s, expect);
    s = stg.next(s, 1);
  }
  // Hold input keeps the state.
  EXPECT_EQ(stg.next(5, 0), 5u);
}

TEST(Stg, SequenceDetectorFindsPattern) {
  // Pattern 1011 (LSB-first: bits 1,1,0,1 read b0..b3).
  auto stg = sequence_detector_fsm(0b1101, 4);
  auto run = [&](std::vector<int> bits) {
    StateId s = 0;
    std::vector<int> outs;
    for (int b : bits) {
      outs.push_back(static_cast<int>(stg.output(s, b)));
      s = stg.next(s, b);
    }
    return outs;
  };
  // Feed 1,0,1,1 -> matches pattern (pattern read LSB-first: 1,0,1,1).
  auto outs = run({1, 0, 1, 1, 0});
  // Output raised on the transition entering the match state, visible on
  // the next symbol's output evaluation; just check a match occurred.
  StateId s = 0;
  bool matched = false;
  for (int b : {1, 0, 1, 1}) {
    s = stg.next(s, b);
  }
  matched = (s == 4);
  EXPECT_TRUE(matched);
  (void)outs;
}

TEST(Stg, ProtocolFsmIdlesAndBursts) {
  auto stg = protocol_fsm(3);
  EXPECT_EQ(stg.num_states(), 4u);
  // Stay idle without request.
  EXPECT_EQ(stg.next(0, 0), 0u);
  EXPECT_EQ(stg.next(0, 2), 0u);
  // Request starts the burst and returns to idle after 3 states.
  StateId s = stg.next(0, 1);
  EXPECT_EQ(s, 1u);
  s = stg.next(s, 0);
  s = stg.next(s, 0);
  s = stg.next(s, 0);
  EXPECT_EQ(s, 0u);
}

TEST(Markov, SteadyStateSumsToOne) {
  auto stg = random_fsm(12, 2, 3, 5);
  auto ma = analyze_markov(stg);
  double sum = 0.0;
  for (double p : ma.state_prob) sum += p;
  EXPECT_NEAR(sum, 1.0, 1e-9);
  for (double p : ma.state_prob) EXPECT_GE(p, 0.0);
}

TEST(Markov, CounterUniformSteadyState) {
  auto stg = counter_fsm(3);
  // Always-enabled input distribution: symbol 1 w.p. 1.
  std::vector<double> probs{0.0, 1.0};
  auto ma = analyze_markov(stg, probs);
  for (double p : ma.state_prob) EXPECT_NEAR(p, 1.0 / 8.0, 1e-6);
}

TEST(Markov, SimulationMatchesAnalysis) {
  auto stg = random_fsm(8, 1, 2, 9);
  auto ma = analyze_markov(stg);
  hlp::stats::Rng rng(4);
  auto seq = simulate_states(stg, 200000, rng);
  std::vector<double> freq(stg.num_states(), 0.0);
  for (StateId s : seq) freq[s] += 1.0;
  for (auto& f : freq) f /= static_cast<double>(seq.size());
  for (std::size_t s = 0; s < stg.num_states(); ++s)
    EXPECT_NEAR(freq[s], ma.state_prob[s], 0.01);
}

TEST(Encoding, StylesProduceUniqueCodes) {
  auto stg = random_fsm(10, 2, 2, 3);
  auto ma = analyze_markov(stg);
  for (auto style : {EncodingStyle::Binary, EncodingStyle::Gray,
                     EncodingStyle::OneHot, EncodingStyle::Random,
                     EncodingStyle::LowPower}) {
    auto codes = encode_states(stg, style, &ma, 7);
    std::set<std::uint64_t> uniq(codes.begin(), codes.end());
    EXPECT_EQ(uniq.size(), stg.num_states())
        << "style " << static_cast<int>(style);
  }
}

TEST(Encoding, GrayAdjacentCodesDifferByOneBit) {
  auto stg = counter_fsm(4);
  auto codes = encode_states(stg, EncodingStyle::Gray);
  for (std::size_t i = 1; i < codes.size(); ++i)
    EXPECT_EQ(std::popcount(codes[i] ^ codes[i - 1]), 1);
}

TEST(Encoding, LowPowerBeatsRandomOnWeightedHamming) {
  auto stg = random_fsm(16, 2, 2, 21);
  auto ma = analyze_markov(stg);
  auto lp = encode_states(stg, EncodingStyle::LowPower, &ma, 1);
  auto rnd = encode_states(stg, EncodingStyle::Random, &ma, 1);
  EXPECT_LE(expected_code_switching(ma, lp),
            expected_code_switching(ma, rnd) + 1e-9);
}

TEST(Encoding, GrayOptimalForPureCounter) {
  auto stg = counter_fsm(3);
  std::vector<double> probs{0.0, 1.0};
  auto ma = analyze_markov(stg, probs);
  auto gray = encode_states(stg, EncodingStyle::Gray);
  // Gray on a pure cycle achieves exactly 1 bit/transition.
  EXPECT_NEAR(expected_code_switching(ma, gray), 1.0, 1e-6);
  auto bin = encode_states(stg, EncodingStyle::Binary);
  EXPECT_GT(expected_code_switching(ma, bin), 1.5);
}

TEST(Minimize, CollapsesEquivalentStates) {
  // Build a machine with duplicated states: two copies of a 2-state toggler.
  Stg stg(1, 1);
  auto a = stg.add_state(), b = stg.add_state(), a2 = stg.add_state(),
       b2 = stg.add_state();
  for (std::uint64_t in = 0; in <= 1; ++in) {
    stg.set_transition(a, in, in ? b : a, in);
    stg.set_transition(b, in, in ? a2 : b, 1 - in);
    stg.set_transition(a2, in, in ? b2 : a2, in);
    stg.set_transition(b2, in, in ? a : b2, 1 - in);
  }
  auto cls = equivalence_classes(stg);
  EXPECT_EQ(cls[a], cls[a2]);
  EXPECT_EQ(cls[b], cls[b2]);
  EXPECT_NE(cls[a], cls[b]);
  auto min = minimize(stg);
  EXPECT_EQ(min.num_states(), 2u);
}

TEST(Minimize, PreservesBehavior) {
  auto stg = random_fsm(12, 1, 2, 33);
  auto min = minimize(stg);
  ASSERT_LE(min.num_states(), stg.num_states());
  // Run both machines on the same input sequence; outputs must agree.
  hlp::stats::Rng rng(2);
  StateId s1 = 0, s2 = 0;
  for (int i = 0; i < 1000; ++i) {
    std::uint64_t in = rng.uniform_bits(1);
    EXPECT_EQ(stg.output(s1, in), min.output(s2, in));
    s1 = stg.next(s1, in);
    s2 = min.next(s2, in);
  }
}

TEST(Synth, NetlistMatchesStg) {
  auto stg = random_fsm(6, 2, 3, 44);
  auto ma = analyze_markov(stg);
  auto codes = encode_states(stg, EncodingStyle::Binary, &ma);
  auto sf = synthesize_fsm(stg, codes, encoding_bits(EncodingStyle::Binary,
                                                     stg.num_states()));
  hlp::sim::Simulator sim(sf.netlist);
  hlp::stats::Rng rng(6);
  StateId s = 0;
  for (int c = 0; c < 500; ++c) {
    std::uint64_t in = rng.uniform_bits(2);
    sim.set_word(sf.inputs, in);
    sim.eval();
    // State register should hold code of s; outputs should match STG.
    EXPECT_EQ(sim.word_value(sf.state), codes[s]);
    EXPECT_EQ(sim.word_value(sf.outputs), stg.output(s, in));
    sim.tick();
    s = stg.next(s, in);
  }
}

class SynthEncodingStyle
    : public ::testing::TestWithParam<EncodingStyle> {};

TEST_P(SynthEncodingStyle, AllEncodingsAreFunctionallyCorrect) {
  auto stg = protocol_fsm(4);
  auto ma = analyze_markov(stg);
  auto codes = encode_states(stg, GetParam(), &ma, 3);
  int bits = encoding_bits(GetParam(), stg.num_states());
  auto sf = synthesize_fsm(stg, codes, bits);
  hlp::sim::Simulator sim(sf.netlist);
  hlp::stats::Rng rng(6);
  StateId s = 0;
  for (int c = 0; c < 300; ++c) {
    std::uint64_t in = rng.uniform_bits(2);
    sim.set_word(sf.inputs, in);
    sim.eval();
    EXPECT_EQ(sim.word_value(sf.outputs), stg.output(s, in));
    sim.tick();
    s = stg.next(s, in);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Styles, SynthEncodingStyle,
    ::testing::Values(EncodingStyle::Binary, EncodingStyle::Gray,
                      EncodingStyle::OneHot, EncodingStyle::Random,
                      EncodingStyle::LowPower));

}  // namespace
