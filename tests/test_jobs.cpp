#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/sampling_power.hpp"
#include "exec/exec.hpp"
#include "fsm/benchmarks.hpp"
#include "jobs/jobs.hpp"
#include "jobs/kernels.hpp"
#include "jobs/ledger.hpp"
#include "jobs/spec.hpp"
#include "stats/descriptive.hpp"

namespace {

using namespace hlp;
using jobs::ErrorClass;
using jobs::Job;
using jobs::JobKind;
using jobs::JobStatus;
using jobs::LedgerRecord;
using jobs::RecordKind;
using jobs::Runner;
using jobs::RunnerOptions;

std::string tmp_path(const std::string& name) {
  return testing::TempDir() + "hlp_jobs_" + name;
}

// --- Ledger record round-trips ---------------------------------------------

LedgerRecord sample_record(RecordKind k) {
  LedgerRecord r;
  r.kind = k;
  r.seq = 42;
  r.job = "mult8";
  switch (k) {
    case RecordKind::Enqueued:
      r.job_kind = "symbolic";
      r.design = "mult:8";
      break;
    case RecordKind::Started:
      r.attempt = 2;
      break;
    case RecordKind::AttemptFailed:
      r.attempt = 2;
      r.error = "budget-exhausted";
      r.detail = "budget exceeded (node-cap): 2001 live nodes > cap 2000";
      break;
    case RecordKind::Retried:
      r.attempt = 3;
      r.delay_seconds = 0.07512345678901234;
      break;
    case RecordKind::Degraded:
      r.attempt = 3;
      r.from = "bdd-sat-fraction";
      r.to = "monte-carlo";
      break;
    case RecordKind::Checkpoint:
      r.attempt = 2;
      r.checkpoint = "520 55.08846153846152 1234.5678901234567";
      break;
    case RecordKind::Completed:
      r.attempts = 3;
      r.degraded = true;
      r.value = 184.9897435897433;
      r.detail = "monte-carlo 780 pairs, converged";
      break;
  }
  return r;
}

TEST(Ledger, EveryRecordKindRoundTripsByteIdentically) {
  for (RecordKind k :
       {RecordKind::Enqueued, RecordKind::Started, RecordKind::AttemptFailed,
        RecordKind::Retried, RecordKind::Degraded, RecordKind::Checkpoint,
        RecordKind::Completed}) {
    LedgerRecord r = sample_record(k);
    std::string line = r.serialize();
    LedgerRecord back;
    ASSERT_TRUE(LedgerRecord::parse(line, back)) << line;
    EXPECT_EQ(back, r) << line;
    // serialize(parse(serialize(r))) must be byte-identical: doubles use
    // shortest-round-trip formatting and the field order is canonical.
    EXPECT_EQ(back.serialize(), line);
  }
}

TEST(Ledger, StringFieldsEscapeAndRoundTrip) {
  LedgerRecord r = sample_record(RecordKind::AttemptFailed);
  r.detail = "quote \" backslash \\ tab \t newline \n bell \x07 utf8 \xc3\xa9";
  std::string line = r.serialize();
  LedgerRecord back;
  ASSERT_TRUE(LedgerRecord::parse(line, back));
  EXPECT_EQ(back.detail, r.detail);
  EXPECT_EQ(back.serialize(), line);
}

TEST(Ledger, ParseRejectsMalformedLines) {
  LedgerRecord out;
  out.job = "sentinel";
  const char* bad[] = {
      "",
      "{",
      "not json at all",
      "{\"rec\":\"started\",\"seq\":7}",                 // missing job
      "{\"seq\":7,\"job\":\"a\"}",                       // missing rec
      "{\"rec\":\"nope\",\"seq\":7,\"job\":\"a\"}",      // unknown kind
      "{\"rec\":\"started\",\"seq\":7,\"job\":\"a\"",    // truncated
      "{\"rec\":\"started\",\"seq\":7,\"job\":\"a\",\"bogus\":1}",
      "{\"rec\":\"started\",\"seq\":7,\"job\":\"a\",\"seq\":8}",  // dup key
      "{\"rec\":\"started\",\"seq\":-1,\"job\":\"a\"}",
      "{\"rec\":\"started\",\"seq\":7,\"job\":\"a\"} trailing",
      "{\"rec\":\"started\",\"seq\":7,\"job\":\"\\ud800\"}",  // lone surrogate
  };
  for (const char* line : bad) {
    EXPECT_FALSE(LedgerRecord::parse(line, out)) << line;
    EXPECT_EQ(out.job, "sentinel") << "out mutated by: " << line;
  }
}

TEST(Ledger, ScanSkipsGarbageAndTruncatedFinalLine) {
  std::string text = sample_record(RecordKind::Enqueued).serialize() + "\n" +
                     "garbage line\n" +
                     sample_record(RecordKind::Started).serialize() + "\n" +
                     "{\"rec\":\"completed\",\"seq\":9,\"job\":\"m";  // cut
  jobs::LedgerScan scan = jobs::scan_ledger_text(text);
  ASSERT_EQ(scan.records.size(), 2u);
  EXPECT_EQ(scan.records[0].kind, RecordKind::Enqueued);
  EXPECT_EQ(scan.records[1].kind, RecordKind::Started);
  EXPECT_EQ(scan.malformed_lines, 2u);
  ASSERT_EQ(scan.warnings.size(), 2u);
  EXPECT_NE(scan.warnings[1].find("truncated final line"), std::string::npos);
  EXPECT_EQ(scan.max_seq(), 42u);
}

TEST(Ledger, MissingFileScansEmpty) {
  jobs::LedgerScan scan = jobs::read_ledger(tmp_path("does_not_exist.ledger"));
  EXPECT_TRUE(scan.records.empty());
  EXPECT_EQ(scan.malformed_lines, 0u);
}

TEST(Ledger, WriterAppendsDurableRecordsReadBackEqual) {
  const std::string path = tmp_path("writer.ledger");
  std::vector<LedgerRecord> recs;
  for (RecordKind k : {RecordKind::Enqueued, RecordKind::Started,
                       RecordKind::Completed})
    recs.push_back(sample_record(k));
  {
    jobs::LedgerWriter w(path, /*truncate=*/true);
    ASSERT_TRUE(w.open());
    for (const LedgerRecord& r : recs) w.append(r);
  }
  jobs::LedgerScan scan = jobs::read_ledger(path);
  EXPECT_EQ(scan.malformed_lines, 0u);
  ASSERT_EQ(scan.records.size(), recs.size());
  for (std::size_t i = 0; i < recs.size(); ++i)
    EXPECT_EQ(scan.records[i], recs[i]);
  std::remove(path.c_str());
}

TEST(Ledger, AppendBatchCommitsAllRecordsWithOneFlush) {
  const std::string path = tmp_path("batch.ledger");
  std::vector<LedgerRecord> recs;
  for (std::uint64_t i = 0; i < 32; ++i) {
    LedgerRecord r = sample_record(RecordKind::Enqueued);
    r.seq = i + 1;
    r.job = "job-" + std::to_string(i);
    recs.push_back(std::move(r));
  }
  {
    jobs::LedgerWriter w(path, /*truncate=*/true);
    w.append_batch(recs);
    EXPECT_EQ(w.records_committed(), 32u);
    EXPECT_EQ(w.flush_batches(), 1u);  // the burst costs exactly one fsync
    w.append_batch({});                // empty batch is a no-op
    EXPECT_EQ(w.flush_batches(), 1u);
  }
  jobs::LedgerScan scan = jobs::read_ledger(path);
  EXPECT_EQ(scan.malformed_lines, 0u);
  ASSERT_EQ(scan.records.size(), recs.size());
  for (std::size_t i = 0; i < recs.size(); ++i)
    EXPECT_EQ(scan.records[i], recs[i]);
  std::remove(path.c_str());
}

TEST(Ledger, ConcurrentAppendsGroupCommitLoseNothing) {
  const std::string path = tmp_path("group.ledger");
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 50;
  {
    jobs::LedgerWriter w(path, /*truncate=*/true);
    std::atomic<std::uint64_t> next_seq{0};
    std::vector<std::thread> pool;
    for (int t = 0; t < kThreads; ++t) {
      pool.emplace_back([&w, &next_seq, t] {
        for (std::uint64_t i = 0; i < kPerThread; ++i) {
          LedgerRecord r = sample_record(RecordKind::Started);
          r.seq = next_seq.fetch_add(1, std::memory_order_relaxed) + 1;
          r.job = "t" + std::to_string(t) + "-" + std::to_string(i);
          r.attempt = static_cast<int>(i) + 1;
          w.append(r);  // durable when this returns
        }
      });
    }
    for (auto& th : pool) th.join();
    EXPECT_EQ(w.records_committed(), kThreads * kPerThread);
    // Group commit is opportunistic: the fsync count can be anywhere from
    // 1 to one-per-record, but never more than the records retired.
    EXPECT_GE(w.flush_batches(), 1u);
    EXPECT_LE(w.flush_batches(), w.records_committed());
  }
  jobs::LedgerScan scan = jobs::read_ledger(path);
  EXPECT_EQ(scan.malformed_lines, 0u);
  ASSERT_EQ(scan.records.size(),
            static_cast<std::size_t>(kThreads) * kPerThread);
  // Every record survives exactly once, regardless of interleaving.
  std::vector<std::string> jobs_seen;
  for (const auto& r : scan.records) {
    EXPECT_EQ(r.kind, RecordKind::Started);
    jobs_seen.push_back(r.job);
  }
  std::sort(jobs_seen.begin(), jobs_seen.end());
  EXPECT_EQ(std::unique(jobs_seen.begin(), jobs_seen.end()),
            jobs_seen.end());
  // Sequence numbers are a permutation of 1..N even though file order may
  // interleave (seq is campaign-monotone, not file-order-monotone).
  EXPECT_EQ(scan.max_seq(), kThreads * kPerThread);
  std::remove(path.c_str());
}

// --- Monte Carlo checkpoint serialization ----------------------------------

TEST(Checkpoint, SerializeParseIsBitExact) {
  core::MonteCarloCheckpoint c;
  c.count = 12345;
  c.mean = 55.088461538461519;
  c.m2 = 0.1234567890123456789;
  std::string text = c.serialize();
  core::MonteCarloCheckpoint back;
  ASSERT_TRUE(core::MonteCarloCheckpoint::parse(text, back));
  EXPECT_EQ(back.count, c.count);
  // Bit-exact, not approximately equal: resume must not drift.
  EXPECT_EQ(back.mean, c.mean);
  EXPECT_EQ(back.m2, c.m2);
  EXPECT_EQ(back.serialize(), text);
}

TEST(Checkpoint, ParseRejectsMalformedText) {
  core::MonteCarloCheckpoint out;
  out.count = 7;
  for (const char* bad : {"", "1 2", "1 2 3 4", "x 2 3", "1 x 3", "1 2 x",
                          "1  2 3", "1 2 3 ", "-1 2 3"}) {
    EXPECT_FALSE(core::MonteCarloCheckpoint::parse(bad, out)) << bad;
    EXPECT_EQ(out.count, 7u);
  }
}

// --- Seeds and backoff ------------------------------------------------------

TEST(JobSeed, DependsOnlyOnId) {
  EXPECT_EQ(jobs::job_seed("mult8"), jobs::job_seed("mult8"));
  EXPECT_NE(jobs::job_seed("mult8"), jobs::job_seed("mult9"));
  EXPECT_NE(jobs::job_seed("a"), jobs::job_seed("b"));
}

TEST(RetryPolicy, BackoffIsDeterministicBoundedAndClamped) {
  jobs::RetryPolicy p;
  p.base_delay_seconds = 0.05;
  p.multiplier = 2.0;
  p.max_delay_seconds = 0.2;
  p.jitter_frac = 0.25;
  double prev_base = 0.0;
  for (int failed = 1; failed <= 6; ++failed) {
    double d1 = p.delay_seconds("jobA", failed);
    double d2 = p.delay_seconds("jobA", failed);
    EXPECT_EQ(d1, d2) << "delay must be a pure function of (id, attempt)";
    double base = std::min(0.05 * std::pow(2.0, failed - 1), 0.2);
    EXPECT_GE(d1, base * (1.0 - p.jitter_frac));
    EXPECT_LE(d1, base * (1.0 + p.jitter_frac));
    EXPECT_GE(base, prev_base);
    prev_base = base;
  }
  // Different jobs get different jitter (spreads simultaneous retries).
  EXPECT_NE(p.delay_seconds("jobA", 1), p.delay_seconds("jobB", 1));
  p.jitter_frac = 0.0;
  EXPECT_EQ(p.delay_seconds("jobA", 1), 0.05);
  EXPECT_EQ(p.delay_seconds("jobA", 2), 0.1);
  EXPECT_EQ(p.delay_seconds("jobA", 5), 0.2);  // clamped at max
}

// --- Design-spec factories --------------------------------------------------

TEST(DesignSpec, NetlistFactoriesParse) {
  EXPECT_GT(jobs::make_module("adder:8").netlist.gate_count(), 0u);
  EXPECT_GT(jobs::make_module("c17").netlist.gate_count(), 0u);
  EXPECT_GT(jobs::make_module("random:8:40:4:7").netlist.gate_count(), 0u);
  for (const char* bad :
       {"", "adder", "adder:x", "adder:0", "adder:99", "nosuch:3",
        "adder:8:9", "random:8:40:4", "mult:17"}) {
    EXPECT_THROW(jobs::make_module(bad), std::invalid_argument) << bad;
  }
}

TEST(DesignSpec, CdfgFactoriesParse) {
  EXPECT_GT(jobs::make_cdfg("fir:8").size(), 0u);
  EXPECT_GT(jobs::make_cdfg("horner:4").size(), 0u);
  for (const char* bad : {"", "fir", "fir:x", "fir:0", "nosuch:1", "poly"})
    EXPECT_THROW(jobs::make_cdfg(bad), std::invalid_argument) << bad;
}

TEST(DesignSpec, ControllerByNameCoversBenchmarksAndThrows) {
  for (const char* name : {"traffic", "uart-rx", "dma", "elevator"})
    EXPECT_GT(fsm::controller_by_name(name).num_states(), 0u) << name;
  EXPECT_THROW(fsm::controller_by_name("nosuch"), std::invalid_argument);
}

// --- Kernel determinism -----------------------------------------------------

TEST(Kernels, SameRequestIsBitIdenticalAcrossCalls) {
  jobs::KernelRequest rq;
  rq.kind = JobKind::MonteCarlo;
  rq.design = "adder:8";
  rq.seed = jobs::job_seed("det");
  rq.epsilon = 0.05;
  exec::Budget unlimited;
  jobs::AttemptOutcome a = jobs::run_kernel(rq, unlimited);
  jobs::AttemptOutcome b = jobs::run_kernel(rq, unlimited);
  ASSERT_TRUE(a.ok);
  ASSERT_TRUE(b.ok);
  EXPECT_EQ(a.out.value, b.out.value);
  EXPECT_EQ(a.detail, b.detail);
}

// --- Runner: basic campaigns ------------------------------------------------

Job mc_job(const std::string& id, const std::string& design,
           double epsilon = 0.05) {
  Job j;
  j.id = id;
  j.kind = JobKind::MonteCarlo;
  j.design = design;
  j.epsilon = epsilon;
  return j;
}

TEST(Runner, RunsEveryKernelKindAndAggregatesInSubmissionOrder) {
  std::vector<Job> campaign;
  {
    Job j;
    j.id = "sym";
    j.kind = JobKind::Symbolic;
    j.design = "adder:6";
    campaign.push_back(j);
  }
  campaign.push_back(mc_job("mc", "parity:10"));
  {
    Job j;
    j.id = "mkv";
    j.kind = JobKind::Markov;
    j.design = "dma";
    campaign.push_back(j);
  }
  {
    Job j;
    j.id = "sched";
    j.kind = JobKind::Schedule;
    j.design = "fir:8";
    campaign.push_back(j);
  }
  RunnerOptions opts;
  opts.workers = 2;
  jobs::CampaignResult cr = Runner(opts).run(campaign);
  ASSERT_EQ(cr.results.size(), 4u);
  EXPECT_TRUE(cr.all_completed());
  EXPECT_EQ(cr.completed, 4u);
  EXPECT_EQ(cr.failed + cr.cancelled + cr.retries, 0u);
  // Results come back in submission order regardless of worker scheduling.
  EXPECT_EQ(cr.results[0].id, "sym");
  EXPECT_EQ(cr.results[1].id, "mc");
  EXPECT_EQ(cr.results[2].id, "mkv");
  EXPECT_EQ(cr.results[3].id, "sched");
  for (const jobs::JobResult& r : cr.results) {
    EXPECT_EQ(r.status, JobStatus::Completed) << r.id;
    EXPECT_EQ(r.attempts, 1) << r.id;
    EXPECT_GT(r.value, 0.0) << r.id;
  }
  EXPECT_EQ(cr.value_stats.count(), 4u);
}

TEST(Runner, InvalidDesignFailsWithoutRetry) {
  RunnerOptions opts;
  opts.retry.max_attempts = 5;
  jobs::CampaignResult cr =
      Runner(opts).run({mc_job("bad", "nosuch:3")});
  ASSERT_EQ(cr.results.size(), 1u);
  EXPECT_EQ(cr.results[0].status, JobStatus::Failed);
  EXPECT_EQ(cr.results[0].error, ErrorClass::InvalidInput);
  EXPECT_EQ(cr.results[0].attempts, 1);  // invalid input is never retried
  EXPECT_EQ(cr.retries, 0u);
}

TEST(Runner, DuplicateJobIdsThrow) {
  EXPECT_THROW(Runner().run({mc_job("x", "adder:4"), mc_job("x", "adder:6")}),
               std::invalid_argument);
  EXPECT_THROW(Runner().run({mc_job("", "adder:4")}), std::invalid_argument);
}

// --- Retry semantics --------------------------------------------------------

TEST(Runner, FlakyJobSucceedsAfterExactlyNAttempts) {
  const int kAttempts = 3;
  auto calls = std::make_shared<std::atomic<int>>(0);
  Job j;
  j.id = "flaky";
  j.kind = JobKind::Custom;
  j.custom = [calls](const exec::Budget&, bool,
                     const core::MonteCarloCheckpoint*) -> jobs::AttemptOutcome {
    if (calls->fetch_add(1) + 1 < kAttempts)
      throw std::runtime_error("transient fault");
    jobs::AttemptOutcome ao;
    ao.ok = true;
    ao.out.value = 7.25;
    ao.detail = ao.out.detail = "finally";
    return ao;
  };
  RunnerOptions opts;
  opts.retry.max_attempts = kAttempts;
  opts.retry.downgrade_on_budget = false;
  std::vector<double> slept;
  opts.sleep_fn = [&slept](double s) { slept.push_back(s); };  // fake clock
  jobs::CampaignResult cr = Runner(opts).run({j});
  ASSERT_EQ(cr.results.size(), 1u);
  EXPECT_EQ(cr.results[0].status, JobStatus::Completed);
  EXPECT_EQ(cr.results[0].attempts, kAttempts);
  EXPECT_EQ(cr.results[0].value, 7.25);
  EXPECT_EQ(cr.retries, 2u);
  EXPECT_EQ(calls->load(), kAttempts);
  // The fake clock saw exactly the deterministic policy backoffs.
  ASSERT_EQ(slept.size(), 2u);
  EXPECT_EQ(slept[0], opts.retry.delay_seconds("flaky", 1));
  EXPECT_EQ(slept[1], opts.retry.delay_seconds("flaky", 2));
}

TEST(Runner, PersistentFailureExhaustsAttempts) {
  auto calls = std::make_shared<std::atomic<int>>(0);
  Job j;
  j.id = "doomed";
  j.kind = JobKind::Custom;
  j.custom = [calls](const exec::Budget&, bool,
                     const core::MonteCarloCheckpoint*) -> jobs::AttemptOutcome {
    calls->fetch_add(1);
    throw std::runtime_error("always");
  };
  RunnerOptions opts;
  opts.retry.max_attempts = 4;
  opts.retry.base_delay_seconds = 0.0;  // no real sleeping in tests
  jobs::CampaignResult cr = Runner(opts).run({j});
  EXPECT_EQ(cr.results[0].status, JobStatus::Failed);
  EXPECT_EQ(cr.results[0].error, ErrorClass::Internal);
  EXPECT_EQ(cr.results[0].attempts, 4);
  EXPECT_EQ(calls->load(), 4);
  EXPECT_EQ(cr.retries, 3u);
}

TEST(Runner, BudgetExhaustedCustomJobDowngradesOnRetry) {
  const std::string path = tmp_path("downgrade_custom.ledger");
  Job j;
  j.id = "fallbacker";
  j.kind = JobKind::Custom;
  j.custom = [](const exec::Budget&, bool degraded,
                const core::MonteCarloCheckpoint*) -> jobs::AttemptOutcome {
    if (!degraded)
      throw exec::BudgetExceeded(exec::StopReason::StepQuota,
                                 "primary path too expensive");
    jobs::AttemptOutcome ao;
    ao.ok = true;
    ao.out.value = 3.5;
    ao.out.degraded = true;
    ao.out.degraded_from = "primary";
    ao.out.degraded_to = "fallback";
    return ao;
  };
  RunnerOptions opts;
  opts.retry.base_delay_seconds = 0.0;
  opts.ledger_path = path;
  jobs::CampaignResult cr = Runner(opts).run({j});
  ASSERT_EQ(cr.results.size(), 1u);
  EXPECT_EQ(cr.results[0].status, JobStatus::Completed);
  EXPECT_TRUE(cr.results[0].degraded);
  EXPECT_EQ(cr.results[0].attempts, 2);
  EXPECT_EQ(cr.degraded, 1u);

  jobs::LedgerScan scan = jobs::read_ledger(path);
  bool saw_degraded = false, saw_completed = false;
  for (const LedgerRecord& r : scan.records) {
    if (r.kind == RecordKind::Degraded) {
      saw_degraded = true;
      EXPECT_EQ(r.from, "primary");
      EXPECT_EQ(r.to, "fallback");
    }
    if (r.kind == RecordKind::Completed) {
      saw_completed = true;
      EXPECT_TRUE(r.degraded);
    }
  }
  EXPECT_TRUE(saw_degraded);
  EXPECT_TRUE(saw_completed);
  std::remove(path.c_str());
}

TEST(Runner, DowngradedSymbolicMatchesDirectSampledEstimate) {
  // A symbolic job whose BDD blows its node cap downgrades to the sampled
  // kernel. Because the fallback derives its seed from the job id exactly
  // like a direct MonteCarlo job, the degraded answer must be bit-identical
  // to running the sampled estimator in the first place.
  Job sym;
  sym.id = "same-id";
  sym.kind = JobKind::Symbolic;
  sym.design = "mult:6";
  sym.budget = exec::Budget::with_node_cap(500);
  sym.epsilon = 0.05;
  RunnerOptions opts;
  opts.retry.base_delay_seconds = 0.0;
  jobs::CampaignResult degraded_run = Runner(opts).run({sym});
  ASSERT_EQ(degraded_run.results.size(), 1u);
  ASSERT_EQ(degraded_run.results[0].status, JobStatus::Completed);
  ASSERT_TRUE(degraded_run.results[0].degraded);
  EXPECT_EQ(degraded_run.results[0].attempts, 2);

  Job mc = mc_job("same-id", "mult:6");
  jobs::CampaignResult direct_run = Runner(opts).run({mc});
  ASSERT_EQ(direct_run.results[0].status, JobStatus::Completed);
  EXPECT_FALSE(direct_run.results[0].degraded);
  EXPECT_EQ(degraded_run.results[0].value, direct_run.results[0].value);
}

// --- Determinism across worker counts ---------------------------------------

TEST(Runner, ParallelRunIsBitIdenticalToSerialRun) {
  std::vector<Job> campaign = {
      mc_job("a", "adder:8"),    mc_job("b", "mult:5"),
      mc_job("c", "parity:12"),  mc_job("d", "alu:8"),
      mc_job("e", "comparator:8"), mc_job("f", "max:6"),
  };
  RunnerOptions serial;
  serial.workers = 1;
  jobs::CampaignResult s = Runner(serial).run(campaign);
  RunnerOptions par;
  par.workers = 4;
  jobs::CampaignResult p = Runner(par).run(campaign);
  ASSERT_TRUE(s.all_completed());
  ASSERT_TRUE(p.all_completed());
  ASSERT_EQ(s.results.size(), p.results.size());
  for (std::size_t i = 0; i < s.results.size(); ++i) {
    EXPECT_EQ(s.results[i].id, p.results[i].id);
    EXPECT_EQ(s.results[i].value, p.results[i].value) << s.results[i].id;
  }
  // Submission-order merging makes even the aggregate moments bit-equal.
  EXPECT_EQ(s.value_stats.mean(), p.value_stats.mean());
  EXPECT_EQ(s.value_stats.variance(), p.value_stats.variance());
}

// --- Checkpointed Monte Carlo across attempts -------------------------------

TEST(Runner, MonteCarloResumesFromCheckpointAcrossAttempts) {
  // A per-attempt step quota far below the pairs needed forces several
  // budget-exhausted attempts; each failure checkpoints the Welford state
  // and the retry resumes it. The final estimate must be bit-identical to
  // one uninterrupted run with the same seed.
  Job j = mc_job("ckpt", "adder:8", 0.02);
  j.budget = exec::Budget::with_step_quota(150);
  RunnerOptions opts;
  opts.retry.max_attempts = 10;
  opts.retry.base_delay_seconds = 0.0;
  const std::string path = tmp_path("mc_ckpt.ledger");
  opts.ledger_path = path;
  jobs::CampaignResult cr = Runner(opts).run({j});
  ASSERT_EQ(cr.results.size(), 1u);
  ASSERT_EQ(cr.results[0].status, JobStatus::Completed);
  EXPECT_GT(cr.results[0].attempts, 1);
  EXPECT_FALSE(cr.results[0].degraded);  // resumed, not downgraded

  jobs::KernelRequest rq;
  rq.kind = JobKind::MonteCarlo;
  rq.design = "adder:8";
  rq.seed = jobs::job_seed("ckpt");
  rq.epsilon = 0.02;
  exec::Budget unlimited;
  jobs::AttemptOutcome direct = jobs::run_kernel(rq, unlimited);
  ASSERT_TRUE(direct.ok);
  EXPECT_EQ(cr.results[0].value, direct.out.value);

  std::size_t checkpoints = 0;
  for (const LedgerRecord& r : jobs::read_ledger(path).records)
    if (r.kind == RecordKind::Checkpoint) ++checkpoints;
  EXPECT_GE(checkpoints, 1u);
  std::remove(path.c_str());
}

// --- Supervisor wall deadline -----------------------------------------------

TEST(Runner, SupervisorEnforcesWallDeadlineThroughCancelToken) {
  Job j;
  j.id = "stuck";
  j.kind = JobKind::Custom;
  j.attempt_deadline_seconds = 0.05;
  j.custom = [](const exec::Budget& b, bool,
                const core::MonteCarloCheckpoint*) -> jobs::AttemptOutcome {
    // A kernel stuck in a loop, cancellable only through its token.
    while (!b.cancel.cancel_requested())
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    throw exec::BudgetExceeded(exec::StopReason::Cancelled,
                               "cancelled mid-kernel");
  };
  RunnerOptions opts;
  opts.retry.max_attempts = 1;
  opts.supervisor_poll_seconds = 0.002;
  jobs::CampaignResult cr = Runner(opts).run({j});
  ASSERT_EQ(cr.results.size(), 1u);
  EXPECT_EQ(cr.results[0].status, JobStatus::Failed);
  // A supervisor trip is a budget problem (retryable), not a campaign
  // cancellation: the runner disambiguates via the deadline-trip flag.
  EXPECT_EQ(cr.results[0].error, ErrorClass::BudgetExhausted);
  EXPECT_NE(cr.results[0].detail.find("supervisor wall deadline"),
            std::string::npos);
}

TEST(Runner, PreCancelledCampaignStartsNothing) {
  auto calls = std::make_shared<std::atomic<int>>(0);
  Job j;
  j.id = "never";
  j.kind = JobKind::Custom;
  j.custom = [calls](const exec::Budget&, bool,
                     const core::MonteCarloCheckpoint*) -> jobs::AttemptOutcome {
    calls->fetch_add(1);
    jobs::AttemptOutcome ao;
    ao.ok = true;
    return ao;
  };
  RunnerOptions opts;
  opts.campaign_cancel.request_cancel();
  jobs::CampaignResult cr = Runner(opts).run({j, mc_job("n2", "adder:4")});
  EXPECT_EQ(cr.cancelled, 2u);
  EXPECT_EQ(cr.completed, 0u);
  EXPECT_EQ(calls->load(), 0);
}

// --- Kill and resume (the acceptance scenario) ------------------------------

TEST(Runner, KillAndResumeCompletesEachJobOnceBitIdentically) {
  const std::string path = tmp_path("kill_resume.ledger");
  std::remove(path.c_str());
  auto armed = std::make_shared<std::atomic<bool>>(true);
  exec::CancelToken campaign_token;

  auto make_campaign = [&]() {
    std::vector<Job> c;
    c.push_back(mc_job("mc-add", "adder:8"));
    c.push_back(mc_job("mc-mult", "mult:5"));
    Job trip;
    trip.id = "tripwire";
    trip.kind = JobKind::Custom;
    trip.custom = [armed, campaign_token](
                      const exec::Budget&, bool,
                      const core::MonteCarloCheckpoint*) -> jobs::AttemptOutcome {
      if (armed->load()) {
        // Simulate the process being killed mid-campaign: trip the
        // campaign token so in-flight work cancels and the queue drains.
        exec::CancelToken t = campaign_token;
        t.request_cancel();
        throw exec::BudgetExceeded(exec::StopReason::Cancelled, "killed");
      }
      jobs::AttemptOutcome ao;
      ao.ok = true;
      ao.out.value = 42.0;
      ao.detail = ao.out.detail = "tripwire disarmed";
      return ao;
    };
    c.push_back(trip);
    c.push_back(mc_job("mc-alu", "alu:8"));
    c.push_back(mc_job("mc-par", "parity:12"));
    {
      Job m;
      m.id = "mkv-dma";
      m.kind = JobKind::Markov;
      m.design = "dma";
      c.push_back(m);
    }
    return c;
  };

  // Golden: uninterrupted serial run, no ledger.
  std::vector<Job> campaign = make_campaign();
  armed->store(false);
  RunnerOptions golden_opts;
  golden_opts.workers = 1;
  jobs::CampaignResult golden = Runner(golden_opts).run(campaign);
  ASSERT_TRUE(golden.all_completed());

  // Interrupted run: tripwire cancels the campaign partway through.
  armed->store(true);
  RunnerOptions first_opts;
  first_opts.workers = 2;
  first_opts.ledger_path = path;
  first_opts.campaign_cancel = campaign_token;
  jobs::CampaignResult interrupted = Runner(first_opts).run(campaign);
  EXPECT_GT(interrupted.cancelled, 0u);
  EXPECT_LT(interrupted.completed, campaign.size());

  // Resume with a fresh runner (fresh campaign token), tripwire disarmed.
  armed->store(false);
  RunnerOptions resume_opts;
  resume_opts.workers = 2;
  resume_opts.ledger_path = path;
  jobs::CampaignResult resumed = Runner(resume_opts).resume(campaign);
  ASSERT_TRUE(resumed.all_completed())
      << "resume must finish every job exactly once";

  // Merged results are bit-identical to the uninterrupted serial run.
  ASSERT_EQ(resumed.results.size(), golden.results.size());
  std::size_t from_ledger = 0;
  for (std::size_t i = 0; i < golden.results.size(); ++i) {
    EXPECT_EQ(resumed.results[i].id, golden.results[i].id);
    EXPECT_EQ(resumed.results[i].value, golden.results[i].value)
        << resumed.results[i].id;
    from_ledger += resumed.results[i].from_ledger ? 1u : 0u;
  }
  EXPECT_EQ(from_ledger, interrupted.completed)
      << "every job the first run completed is served from the ledger";
  EXPECT_EQ(resumed.value_stats.mean(), golden.value_stats.mean());
  EXPECT_EQ(resumed.value_stats.variance(), golden.value_stats.variance());

  // The ledger shows exactly one completed record per job across both runs.
  jobs::LedgerScan scan = jobs::read_ledger(path);
  EXPECT_EQ(scan.malformed_lines, 0u);
  for (const Job& j : campaign) {
    std::size_t completions = 0;
    for (const LedgerRecord& r : scan.records)
      if (r.kind == RecordKind::Completed && r.job == j.id) ++completions;
    EXPECT_EQ(completions, 1u) << j.id;
  }
  std::remove(path.c_str());
}

TEST(Runner, ResumeOfFinishedCampaignRecomputesNothing) {
  const std::string path = tmp_path("resume_noop.ledger");
  std::remove(path.c_str());
  std::vector<Job> campaign = {mc_job("r1", "adder:6"),
                               mc_job("r2", "parity:8")};
  RunnerOptions opts;
  opts.ledger_path = path;
  jobs::CampaignResult first = Runner(opts).run(campaign);
  ASSERT_TRUE(first.all_completed());
  const std::size_t lines_after_run = jobs::read_ledger(path).records.size();

  jobs::CampaignResult again = Runner(opts).resume(campaign);
  ASSERT_TRUE(again.all_completed());
  for (const jobs::JobResult& r : again.results) EXPECT_TRUE(r.from_ledger);
  EXPECT_EQ(again.results[0].value, first.results[0].value);
  EXPECT_EQ(again.results[1].value, first.results[1].value);
  // Nothing ran, so nothing was appended.
  EXPECT_EQ(jobs::read_ledger(path).records.size(), lines_after_run);
  std::remove(path.c_str());
}

TEST(Runner, ResumeWithoutLedgerFileIsAFreshRun) {
  const std::string path = tmp_path("resume_fresh.ledger");
  std::remove(path.c_str());
  RunnerOptions opts;
  opts.ledger_path = path;
  jobs::CampaignResult cr = Runner(opts).resume({mc_job("f1", "adder:6")});
  EXPECT_TRUE(cr.all_completed());
  EXPECT_FALSE(cr.results[0].from_ledger);
  std::remove(path.c_str());
}

// --- Campaign spec files ----------------------------------------------------

TEST(Spec, ParsesDirectivesAndJobLines) {
  jobs::CampaignSpec spec = jobs::parse_campaign_spec(
      "# comment\n"
      "workers 4\n"
      "max-attempts 5\n"
      "base-delay 0.01\n"
      "\n"
      "job add16   symbolic    adder:16  node-cap=20000\n"
      "job mc-alu  monte-carlo alu:12    epsilon=0.01 max-pairs=5000 "
      "mc-threads=4\n"
      "job dma     markov      dma       max-iters=500\n"
      "job sched   schedule    fir:16    wall-deadline=1.5\n");
  EXPECT_EQ(spec.workers, 4);
  EXPECT_EQ(spec.retry.max_attempts, 5);
  EXPECT_EQ(spec.retry.base_delay_seconds, 0.01);
  ASSERT_EQ(spec.jobs.size(), 4u);
  EXPECT_EQ(spec.jobs[0].kind, JobKind::Symbolic);
  EXPECT_EQ(spec.jobs[0].budget.node_cap, 20000u);
  EXPECT_EQ(spec.jobs[1].epsilon, 0.01);
  EXPECT_EQ(spec.jobs[1].max_pairs, 5000u);
  EXPECT_EQ(spec.jobs[1].mc_threads, 4);
  EXPECT_EQ(spec.jobs[2].max_iters, 500);
  EXPECT_EQ(spec.jobs[3].attempt_deadline_seconds, 1.5);
}

TEST(Spec, RejectsMalformedLinesWithLineNumbers) {
  struct Case {
    const char* text;
    int line;
  };
  const Case cases[] = {
      {"bogus directive\n", 1},
      {"workers 0\n", 1},
      {"\njob a custom x\n", 2},                 // custom not allowed in specs
      {"job a monte-carlo\n", 1},                // missing design
      {"job a nosuchkind adder:4\n", 1},
      {"job a monte-carlo adder:4 bogus=1\n", 1},
      {"job a monte-carlo adder:4 epsilon=zero\n", 1},
      {"job a monte-carlo adder:4 confidence=1.5\n", 1},
      {"job a monte-carlo adder:4 mc-threads=-1\n", 1},
      {"job a monte-carlo adder:4\njob a markov dma\n", 2},  // duplicate id
  };
  for (const Case& c : cases) {
    try {
      jobs::parse_campaign_spec(c.text);
      FAIL() << "accepted: " << c.text;
    } catch (const jobs::SpecError& e) {
      EXPECT_EQ(e.line(), c.line) << c.text;
    }
  }
}

// --- Satellite: CancelToken cross-thread publication ------------------------

TEST(CancelToken, PublishesWritesMadeBeforeCancellation) {
  // The supervisor records *why* it cancelled before tripping the token
  // (release); a worker that observes the trip (acquire) must see that
  // write. This is the exact pattern jobs.cpp uses for its deadline flag —
  // run it under TSan and this test also proves the ordering annotations.
  for (int round = 0; round < 50; ++round) {
    exec::CancelToken token;
    int reason = 0;  // plain non-atomic payload, ordered by the token
    std::thread supervisor([&] {
      reason = 1234;
      token.request_cancel();
    });
    exec::CancelToken copy = token;  // copies alias the same flag
    while (!copy.cancel_requested()) std::this_thread::yield();
    EXPECT_EQ(reason, 1234);
    supervisor.join();
  }
}

// --- Satellite: RunningStats::merge -----------------------------------------

TEST(RunningStats, MergeOfSingletonsIsExactAndReproducible) {
  // The runner aggregates per-job values by merging singleton accumulators
  // in submission order — on every code path, which is what makes parallel
  // aggregate moments bit-equal to serial (identical merge sequence, not
  // merge-vs-add equivalence). Check the merge result is reproducible
  // bit-for-bit and agrees with sequential accumulation to rounding.
  const double xs[] = {3.5, -1.25, 55.0884615384615, 0.0, 1e-9, 184.98974};
  stats::RunningStats added;
  stats::RunningStats merged1, merged2;
  for (double x : xs) {
    added.add(x);
    stats::RunningStats one;
    one.add(x);
    merged1.merge(one);
    stats::RunningStats dup;
    dup.add(x);
    merged2.merge(dup);
  }
  EXPECT_EQ(merged1.count(), merged2.count());
  EXPECT_EQ(merged1.mean(), merged2.mean());
  EXPECT_EQ(merged1.variance(), merged2.variance());
  EXPECT_EQ(added.count(), merged1.count());
  EXPECT_DOUBLE_EQ(added.mean(), merged1.mean());
  EXPECT_DOUBLE_EQ(added.variance(), merged1.variance());
}

TEST(RunningStats, MergeCombinesArbitraryHalves) {
  stats::RunningStats whole, left, right;
  for (int i = 0; i < 100; ++i) {
    double x = std::sin(i * 0.37) * 10.0 + i * 0.01;
    whole.add(x);
    (i < 37 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-10);
  // Merging an empty side is the identity in both directions.
  stats::RunningStats empty;
  stats::RunningStats copy = whole;
  copy.merge(empty);
  EXPECT_EQ(copy.count(), whole.count());
  EXPECT_EQ(copy.mean(), whole.mean());
  stats::RunningStats empty2;
  empty2.merge(whole);
  EXPECT_EQ(empty2.count(), whole.count());
  EXPECT_EQ(empty2.mean(), whole.mean());
}


// --- Satellite: spec read errors carry the path and errno text --------------

TEST(Spec, ReadErrorIncludesPathAndErrnoText) {
  const std::string path = "/nonexistent-dir/campaign.jobs";
  try {
    jobs::read_campaign_spec(path);
    FAIL() << "expected a read failure";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(path), std::string::npos) << what;
    EXPECT_NE(what.find(std::strerror(ENOENT)), std::string::npos) << what;
  }
}

// --- Satellite: runner lifecycle counters -----------------------------------

TEST(Runner, CountersTrackMixedOutcomeCampaign) {
  Runner runner;
  jobs::CampaignResult cr = runner.run(
      {mc_job("good-a", "adder:6"), mc_job("good-b", "parity:8"),
       mc_job("bad", "nosuch:3")});
  EXPECT_EQ(cr.completed, 2u);
  EXPECT_EQ(cr.failed, 1u);
  const jobs::RunnerCounters c = runner.counters();
  EXPECT_EQ(c.enqueued, 3u);
  EXPECT_EQ(c.attempts_started, 3u);
  EXPECT_EQ(c.completed, 2u);
  EXPECT_EQ(c.failed, 1u);
  EXPECT_EQ(c.cancelled, 0u);
  EXPECT_EQ(c.retried, 0u);
  EXPECT_EQ(c.degraded, 0u);
  EXPECT_EQ(c.served_from_ledger, 0u);
}

TEST(Runner, CountersTrackRetriesAndResumeSkips) {
  auto calls = std::make_shared<std::atomic<int>>(0);
  Job flaky;
  flaky.id = "flaky";
  flaky.kind = JobKind::Custom;
  flaky.custom = [calls](const exec::Budget&, bool,
                         const core::MonteCarloCheckpoint*)
      -> jobs::AttemptOutcome {
    if (calls->fetch_add(1) == 0) throw std::runtime_error("transient");
    jobs::AttemptOutcome ao;
    ao.ok = true;
    ao.out.value = 2.5;
    return ao;
  };
  RunnerOptions opts;
  opts.retry.base_delay_seconds = 0.0;
  Runner runner(opts);
  ASSERT_TRUE(runner.run({flaky}).all_completed());
  const jobs::RunnerCounters c = runner.counters();
  EXPECT_EQ(c.attempts_started, 2u);
  EXPECT_EQ(c.retried, 1u);
  EXPECT_EQ(c.completed, 1u);

  // A resumed campaign that finds every job completed in the ledger counts
  // them as served_from_ledger and executes nothing.
  const std::string path = tmp_path("counters_resume.ledger");
  RunnerOptions lopts;
  lopts.ledger_path = path;
  Runner(lopts).run({mc_job("r1", "adder:6"), mc_job("r2", "adder:4")});
  Runner resumed(lopts);
  jobs::CampaignResult cr =
      resumed.resume({mc_job("r1", "adder:6"), mc_job("r2", "adder:4")});
  EXPECT_TRUE(cr.all_completed());
  const jobs::RunnerCounters rc = resumed.counters();
  EXPECT_EQ(rc.served_from_ledger, 2u);
  EXPECT_EQ(rc.attempts_started, 0u);
  std::remove(path.c_str());
}

}  // namespace
