#include <gtest/gtest.h>

#include "core/entropy_model.hpp"
#include "sim/simulator.hpp"
#include "fsm/encoding.hpp"
#include "sim/streams.hpp"

namespace {

using namespace hlp;
using namespace hlp::core;

TEST(EntropyModel, MarculescuDegenerateCases) {
  // Equal in/out entropy -> no decay -> h_avg = h_in.
  EXPECT_NEAR(marculescu_havg(1.0, 1.0, 8, 8), 1.0, 1e-9);
  // Zero entropy anywhere -> average fallback.
  EXPECT_NEAR(marculescu_havg(0.0, 0.5, 8, 8), 0.25, 1e-9);
}

TEST(EntropyModel, MarculescuBetweenInAndOut) {
  double h = marculescu_havg(1.0, 0.2, 16, 4);
  EXPECT_GT(h, 0.0);
  EXPECT_LT(h, 1.0);
}

TEST(EntropyModel, NemaniNajmFormula) {
  // h_avg = 2/(3(n+m)) (H_in + H_out).
  EXPECT_NEAR(nemani_najm_havg(8.0, 4.0, 8, 4), 2.0 / 36.0 * 12.0, 1e-12);
}

TEST(EntropyModel, ChengAgrawalGrowsExponentially) {
  double c8 = cheng_agrawal_ctot(8, 8, 1.0);
  double c16 = cheng_agrawal_ctot(16, 8, 1.0);
  EXPECT_GT(c16 / c8, 100.0);  // pessimistic for large n, as the paper notes
}

TEST(EntropyModel, EvaluateOnAdderTracksSimulatedPower) {
  auto mod = netlist::adder_module(8);
  stats::Rng rng(3);
  auto in = sim::random_stream(16, 2000, 0.5, rng);
  auto est = evaluate_entropy_models(mod, in);
  EXPECT_GT(est.h_in, 0.9);          // random inputs ~1 bit entropy
  EXPECT_GT(est.h_out, 0.5);
  EXPECT_GT(est.power_simulated, 0.0);
  // Entropy estimates should land within a factor ~4 of simulation for
  // random data on a shallow module (coarse model, right magnitude).
  EXPECT_GT(est.power_marculescu, est.power_simulated / 5.0);
  EXPECT_LT(est.power_marculescu, est.power_simulated * 5.0);
  EXPECT_GT(est.power_nemani, est.power_simulated / 5.0);
  EXPECT_LT(est.power_nemani, est.power_simulated * 5.0);
}

TEST(EntropyModel, LowActivityInputsLowerEstimateAndPower) {
  auto mod = netlist::adder_module(8);
  stats::Rng rng(3);
  auto hot = sim::random_stream(16, 1500, 0.5, rng);
  auto cold = sim::correlated_stream(16, 1500, 0.97, rng);
  auto e_hot = evaluate_entropy_models(mod, hot, {}, false);
  auto e_cold = evaluate_entropy_models(mod, cold, {}, false);
  EXPECT_LT(e_cold.power_simulated, e_hot.power_simulated);
  EXPECT_LT(e_cold.power_marculescu, e_hot.power_marculescu);
}

TEST(EntropyModel, FerrandiUsesBddNodes) {
  auto mod = netlist::adder_module(6);
  stats::Rng rng(3);
  auto in = sim::random_stream(12, 500, 0.5, rng);
  auto est = evaluate_entropy_models(mod, in, {}, true);
  EXPECT_GT(est.bdd_nodes, 0u);
  EXPECT_GT(est.ctot_ferrandi, 0.0);
  // Ferrandi estimate is polynomial in size; Cheng-Agrawal exponential.
  EXPECT_LT(est.ctot_ferrandi, est.ctot_cheng);
}

TEST(EntropyModel, TransitionEntropyTracksCorrelation) {
  // The paper's static-entropy estimates are blind to temporal correlation;
  // the transition-entropy extension must fall with the true activity.
  auto mod = netlist::adder_module(8);
  auto run = [&](double hold) {
    stats::Rng rng(7);
    auto in = sim::correlated_stream(16, 2000, hold, rng);
    stats::VectorStream out;
    sim::simulate_activities(mod.netlist, in, &out);
    return transition_entropy_power(in, out,
                                    mod.netlist.total_capacitance(), 16, 9,
                                    {});
  };
  double noisy = run(0.0), mid = run(0.9), quiet = run(0.99);
  EXPECT_GT(noisy, 2.0 * mid);
  EXPECT_GT(mid, 2.0 * quiet);
}

TEST(EntropyModel, TransitionEntropyOfConstantStreamIsZero) {
  stats::VectorStream s;
  s.width = 8;
  s.words.assign(100, 0x3C);
  EXPECT_EQ(avg_transition_entropy(s), 0.0);
}

TEST(EntropyModel, TyagiBoundHoldsForAllEncodings) {
  auto stg = fsm::random_fsm(32, 2, 2, 77);
  auto ma = fsm::analyze_markov(stg);
  double bound = tyagi_switching_bound(ma, stg.num_states());
  for (auto style :
       {fsm::EncodingStyle::Binary, fsm::EncodingStyle::Gray,
        fsm::EncodingStyle::Random, fsm::EncodingStyle::LowPower}) {
    auto codes = fsm::encode_states(stg, style, &ma, 5);
    double measured = fsm::expected_code_switching(ma, codes);
    EXPECT_GE(measured, bound - 1e-9)
        << "violated for style " << static_cast<int>(style);
  }
}

TEST(EntropyModel, TyagiSparsenessDetection) {
  // A counter visits each edge once -> very sparse.
  auto stg = fsm::counter_fsm(5);
  auto ma = fsm::analyze_markov(stg);
  EXPECT_TRUE(tyagi_sparse(ma, stg.num_states()));
}

}  // namespace
