#include <gtest/gtest.h>

#include "core/complexity_model.hpp"
#include "netlist/generators.hpp"

namespace {

using namespace hlp::core;

TEST(CesModel, PowerScalesWithGateCount) {
  CesParams ces;
  hlp::sim::PowerParams p;
  double p1 = ces_power(100, ces, p);
  double p2 = ces_power(200, ces, p);
  EXPECT_NEAR(p2 / p1, 2.0, 1e-12);
  EXPECT_GT(p1, 0.0);
}

TEST(GateEquivalents, LargerModuleHasMore) {
  auto small = hlp::netlist::adder_module(4);
  auto big = hlp::netlist::adder_module(16);
  EXPECT_GT(gate_equivalents(big.netlist), gate_equivalents(small.netlist));
  auto mul = hlp::netlist::multiplier_module(8);
  EXPECT_GT(gate_equivalents(mul.netlist), gate_equivalents(big.netlist));
}

TEST(AreaComplexity, AndGateIsSimple) {
  // f = x0 & x1 & x2: on-set has one essential prime of 3 literals covering
  // probability 1/8; off-set is simple too.
  auto tt = table_from(3, [](std::uint32_t m) { return m == 7; });
  auto ac = area_complexity(tt, 3);
  EXPECT_NEAR(ac.output_prob, 1.0 / 8.0, 1e-12);
  EXPECT_NEAR(ac.c_on, 3.0 / 8.0, 1e-12);  // 3 literals * 1/8 mass
  EXPECT_GT(ac.c, 0.0);
}

TEST(AreaComplexity, ParityIsComplex) {
  // Parity has no merging: every minterm needs a full-literal prime; its
  // linear measure is maximal (n per covered minterm).
  auto par = table_from(4, [](std::uint32_t m) {
    return __builtin_popcount(m) % 2 == 1;
  });
  auto simple = table_from(4, [](std::uint32_t m) { return m >= 8; });
  auto ac_par = area_complexity(par, 4);
  auto ac_simple = area_complexity(simple, 4);
  EXPECT_GT(ac_par.c, ac_simple.c * 2.0);
}

TEST(AreaComplexity, ConstantFunctions) {
  auto zero = table_from(3, [](std::uint32_t) { return false; });
  auto ac = area_complexity(zero, 3);
  EXPECT_EQ(ac.output_prob, 0.0);
  EXPECT_EQ(ac.c_on, 0.0);  // empty on-set
}

TEST(LandmanRabaey, ScalesWithMintermsAndActivity) {
  ControllerModelParams cm;
  hlp::sim::PowerParams p;
  double base = landman_rabaey_power(8, 0.3, 4, 0.2, 10, cm, p);
  EXPECT_GT(base, 0.0);
  EXPECT_NEAR(landman_rabaey_power(8, 0.3, 4, 0.2, 20, cm, p) / base, 2.0,
              1e-12);
  EXPECT_GT(landman_rabaey_power(8, 0.6, 4, 0.2, 10, cm, p), base);
}

}  // namespace
