#include <gtest/gtest.h>

#include <cmath>

#include "core/compaction.hpp"
#include "core/macromodel.hpp"
#include "core/sampling_power.hpp"
#include "sim/simulator.hpp"
#include "sim/streams.hpp"

namespace {

using namespace hlp;
using namespace hlp::core;

TEST(MonteCarlo, ConvergesToCensusMean) {
  auto mod = netlist::adder_module(8);
  stats::Rng rng(3);
  // Reference: census over a long random stream.
  auto stream = sim::random_stream(16, 8000, 0.5, rng);
  auto chr = characterize(mod, stream);
  double ref = chr.mean_energy();

  stats::Rng vg_rng(7);
  auto res = monte_carlo_power(
      mod, [&] { return vg_rng.uniform_bits(16); }, 0.03);
  EXPECT_TRUE(res.converged);
  EXPECT_LT(std::abs(res.mean_energy - ref) / ref, 0.08);
  // Convergence needs far fewer pairs than the census length.
  EXPECT_LT(res.pairs, 4000u);
}

TEST(MonteCarlo, TighterEpsilonNeedsMorePairs) {
  auto mod = netlist::multiplier_module(4);
  stats::Rng r1(5), r2(5);
  auto loose = monte_carlo_power(
      mod, [&] { return r1.uniform_bits(8); }, 0.10);
  auto tight = monte_carlo_power(
      mod, [&] { return r2.uniform_bits(8); }, 0.02);
  EXPECT_TRUE(loose.converged);
  EXPECT_TRUE(tight.converged);
  EXPECT_GT(tight.pairs, loose.pairs);
}

TEST(MonteCarlo, ReportsNonConvergenceAtCap) {
  auto mod = netlist::adder_module(6);
  stats::Rng rng(9);
  auto res = monte_carlo_power(
      mod, [&] { return rng.uniform_bits(12); }, 1e-6, 0.95, 30, 200);
  EXPECT_FALSE(res.converged);
  EXPECT_EQ(res.pairs, 200u);
}

TEST(MonteCarlo, StopReasonDisambiguatesExhaustionFromConvergence) {
  auto mod = netlist::adder_module(6);
  // Unreachable epsilon, small cap: every pair is spent without converging,
  // and the result must say so explicitly (regression: converged=false used
  // to conflate pair exhaustion with budget trips).
  stats::Rng r1(9);
  auto capped = monte_carlo_power(
      mod, [&] { return r1.uniform_bits(12); }, 1e-6, 0.95, 30, 200);
  EXPECT_EQ(capped.stop_reason,
            MonteCarloResult::StopReason::MaxPairsExhausted);
  EXPECT_FALSE(capped.converged);
  EXPECT_GT(capped.ci_halfwidth, 0.0);  // CI of the partial estimate
  EXPECT_EQ(capped.checkpoint.count, 200u);

  stats::Rng r2(9);
  auto converged = monte_carlo_power(
      mod, [&] { return r2.uniform_bits(12); }, 0.10);
  EXPECT_EQ(converged.stop_reason, MonteCarloResult::StopReason::Converged);
  EXPECT_TRUE(converged.converged);
}

TEST(Stratified, BeatsSimpleRandomOnDriftingTrace) {
  // Phased workload: quiet first half, noisy second half. Stratification
  // guarantees coverage of both phases.
  auto mod = netlist::adder_module(8);
  stats::Rng rng(3);
  auto quiet = sim::correlated_stream(16, 3000, 0.95, rng);
  auto noisy = sim::random_stream(16, 3000, 0.5, rng);
  auto chr = characterize(mod, sim::concat_streams({quiet, noisy}));
  InputOutputModel io;
  io.fit(chr);
  MacroFn fn = [&](const ModuleCharacterization& c, std::size_t t) {
    return io.predict_cycle(c.in_activity[t], c.out_activity[t]);
  };
  auto census = census_estimate(chr, fn);
  double err_srs = 0.0, err_str = 0.0;
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    stats::Rng r1(seed), r2(seed + 500);
    auto srs = sampler_estimate(chr, fn, 60, 1, r1);
    auto str = stratified_estimate(chr, fn, 12, 5, r2);
    err_srs += std::abs(srs.mean_energy - census.mean_energy);
    err_str += std::abs(str.mean_energy - census.mean_energy);
  }
  EXPECT_LT(err_str, err_srs);
}

TEST(AnalyticModel, BuildsWithoutSimulationAndPredicts) {
  auto mod = netlist::adder_module(8);
  AnalyticBitwiseModel am;
  am.build(mod);
  for (std::size_t i = 0; i < 16; ++i) EXPECT_GT(am.coefficient(i), 0.0);
  stats::Rng rng(3);
  auto stream = sim::random_stream(16, 3000, 0.5, rng);
  auto chr = characterize(mod, stream);
  std::vector<double> pred;
  for (std::size_t t = 0; t < chr.transitions(); ++t)
    pred.push_back(am.predict_cycle(chr.pin_toggle[t]));
  auto err = evaluate_predictions(pred, chr.energy);
  // Characterization-free: coarser than the fitted model, but in range.
  EXPECT_LT(err.avg_power_error, 0.5);
  // And strictly worse than (or equal to) the *fitted* bitwise model.
  BitwiseModel fitted;
  fitted.fit(chr);
  std::vector<double> pred_fit;
  for (std::size_t t = 0; t < chr.transitions(); ++t)
    pred_fit.push_back(fitted.predict_cycle(chr.pin_toggle[t]));
  auto err_fit = evaluate_predictions(pred_fit, chr.energy);
  EXPECT_LE(err_fit.avg_power_error, err.avg_power_error + 0.02);
}

TEST(Compaction, MarkovPathPreservesFirstOrderStats) {
  stats::Rng rng(5);
  auto original = sim::correlated_stream(8, 20000, 0.9, rng);
  auto compacted = compact_stream(original, 2000, 7);
  ASSERT_EQ(compacted.words.size(), 2000u);
  auto f = compaction_fidelity(original, compacted);
  EXPECT_LT(f.signal_prob_error, 0.05);
  EXPECT_LT(f.activity_error, 0.03);
}

TEST(Compaction, BitwisePathHandlesWideStreams) {
  stats::Rng rng(7);
  // 32-bit random words: alphabet far exceeds the dictionary cap.
  auto original = sim::random_stream(32, 20000, 0.3, rng);
  auto compacted = compact_stream(original, 1500, 9, 256);
  ASSERT_EQ(compacted.words.size(), 1500u);
  auto f = compaction_fidelity(original, compacted);
  EXPECT_LT(f.signal_prob_error, 0.08);
  EXPECT_LT(f.activity_error, 0.08);
}

TEST(Compaction, PowerOnCompactedStreamMatches) {
  auto mod = netlist::alu_module(6);
  stats::Rng rng(9);
  auto original = sim::correlated_stream(mod.total_input_bits(), 20000,
                                         0.85, rng);
  auto compacted = compact_stream(original, 2000, 11);
  auto chr_full = characterize(mod, original);
  auto chr_cmp = characterize(mod, compacted);
  double err = std::abs(chr_cmp.mean_energy() - chr_full.mean_energy()) /
               chr_full.mean_energy();
  EXPECT_LT(err, 0.10);  // 10x compaction, <10% error
}

}  // namespace
