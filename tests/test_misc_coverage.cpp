// Additional coverage: cross-cutting checks that tie modules together and
// pin down smaller API contracts not exercised elsewhere.

#include <gtest/gtest.h>

#include "hlp.hpp"

namespace {

using namespace hlp;

TEST(Umbrella, SingleHeaderExposesEverything) {
  // Compile-time check mostly; touch a few symbols across modules.
  stats::Rng rng(1);
  auto mod = netlist::adder_module(4);
  EXPECT_GT(mod.netlist.gate_count(), 0u);
  auto stg = fsm::traffic_light_fsm();
  EXPECT_GT(stg.num_states(), 0u);
  core::CesParams ces;
  EXPECT_GT(core::ces_power(10, ces, {}), 0.0);
}

TEST(Kiss, ControllersRoundTripThroughKiss2) {
  for (auto& [name, stg] : fsm::controller_benchmarks()) {
    auto back = fsm::parse_kiss2(fsm::to_kiss2(stg));
    ASSERT_EQ(back.num_states(), stg.num_states()) << name;
    stats::Rng rng(3);
    fsm::StateId s1 = 0, s2 = 0;
    for (int c = 0; c < 1000; ++c) {
      std::uint64_t a = rng.uniform_bits(stg.n_inputs());
      ASSERT_EQ(stg.output(s1, a), back.output(s2, a)) << name;
      s1 = stg.next(s1, a);
      s2 = back.next(s2, a);
    }
  }
}

TEST(Verilog, MacDatapathExportsCleanly) {
  std::vector<int> coeffs{3, 5, 7};
  auto mac = core::build_fir_mac_datapath(coeffs, 4);
  auto v = netlist::to_verilog(mac.netlist, "fir_mac");
  EXPECT_NE(v.find("always @(posedge clk)"), std::string::npos);
  // Every DFF must be assigned in the clocked block.
  std::size_t assigns = 0, pos = 0;
  while ((pos = v.find("<=", pos)) != std::string::npos) {
    ++assigns;
    pos += 2;
  }
  EXPECT_EQ(assigns, mac.netlist.dffs().size());
}

TEST(Decompose, ControllersEvaluateCorrectly) {
  for (auto& [name, stg] : fsm::controller_benchmarks()) {
    if (stg.num_states() < 6) continue;
    auto ma = fsm::analyze_markov(stg);
    auto part = fsm::partition_min_crossing(stg, ma);
    auto ev = fsm::evaluate_decomposition(stg, part, 2000, 5);
    EXPECT_TRUE(ev.functionally_correct) << name;
  }
}

TEST(ClockGating, ControllersWithSkewedInputsSave) {
  // UART mostly idle (line high, ticks rare).
  auto stg = fsm::uart_rx_fsm();
  auto ma = fsm::analyze_markov(stg);
  auto codes = fsm::encode_states(stg, fsm::EncodingStyle::Binary, &ma);
  auto sf = fsm::synthesize_fsm(
      stg, codes,
      fsm::encoding_bits(fsm::EncodingStyle::Binary, stg.num_states()));
  stats::Rng rng(3);
  // Symbols over (rx, tick): rx=1 mostly, tick rare.
  std::vector<double> probs{0.05, 0.75, 0.05, 0.15};  // {00,01(rx),10,11}
  auto res = core::evaluate_clock_gating(stg, sf, 5000, rng, probs);
  EXPECT_GT(res.idle_fraction, 0.3);
  EXPECT_LT(res.gated_power, res.base_power);
}

TEST(Retiming, WorksOnCsaMultiplierFamily) {
  netlist::Module mod;
  mod.name = "csa";
  auto a = netlist::make_input_word(mod.netlist, 5, "a");
  auto b = netlist::make_input_word(mod.netlist, 5, "b");
  auto p = netlist::csa_multiplier(mod.netlist, a, b);
  netlist::mark_output_word(mod.netlist, p, "p");
  mod.input_words = {a, b};
  mod.output_words = {p};
  stats::Rng rng(7);
  auto in = sim::random_stream(10, 200, 0.5, rng);
  int depth = mod.netlist.depth();
  for (int cut : {0, depth / 2, depth - 1}) {
    auto rc = core::place_registers_at_cut(mod, cut);
    auto ev = core::evaluate_retimed(rc, mod, in);
    EXPECT_TRUE(ev.functionally_correct) << "cut " << cut;
  }
}

TEST(MemoryModel, PowerScalesWithAccessRate) {
  core::MemoryParams p;
  double p1 = core::memory_power(p, 0.1);
  double p2 = core::memory_power(p, 0.2);
  EXPECT_NEAR(p2 / p1, 2.0, 1e-12);
}

TEST(Stats, CiHalfwidthShrinksWithSamples) {
  stats::Rng rng(3);
  stats::RunningStats small, big;
  for (int i = 0; i < 30; ++i) small.add(rng.normal(10, 2));
  for (int i = 0; i < 3000; ++i) big.add(rng.normal(10, 2));
  EXPECT_LT(stats::ci_halfwidth(big), stats::ci_halfwidth(small));
  EXPECT_GT(stats::ci_halfwidth(small, 0.99),
            stats::ci_halfwidth(small, 0.90));
}

TEST(Shutdown, OracleDelayIsAlwaysZero) {
  for (std::uint64_t seed : {1u, 5u, 9u}) {
    stats::Rng rng(seed);
    auto w = core::session_workload(1000, rng);
    core::DeviceParams dev;
    auto oracle = core::oracle_policy(w, dev);
    auto r = core::simulate_policy(w, dev, *oracle);
    EXPECT_NEAR(r.delay_penalty, 0.0, 1e-9);
  }
}

TEST(BusCodec, GateLevelMatchesBehavioralBitForBit) {
  // Stronger than transition counts: the physical bus states must agree
  // cycle by cycle with the behavioral encoder (modulo its one-cycle
  // register delay).
  const int w = 8;
  auto codec = core::build_bus_invert_codec(w);
  auto behavioral = core::bus_invert_encoder(w);
  behavioral->reset();
  stats::Rng rng(11);
  sim::Simulator s(codec.netlist);
  std::uint64_t expect_prev = 0;
  bool have = false;
  for (int c = 0; c < 400; ++c) {
    std::uint64_t word = rng.uniform_bits(w);
    std::uint64_t phys = behavioral->encode(word);
    behavioral->decode(phys);
    s.set_word(codec.data_in, word);
    s.eval();
    std::uint64_t bus_now =
        s.word_value(codec.bus) |
        (static_cast<std::uint64_t>(s.value(codec.inv)) << w);
    if (have) {
      EXPECT_EQ(bus_now, expect_prev) << "cycle " << c;
    }
    expect_prev = phys;
    have = true;
    s.tick();
  }
}

TEST(Compaction, DegenerateInputs) {
  stats::VectorStream empty;
  empty.width = 4;
  auto out = core::compact_stream(empty, 100, 1);
  EXPECT_TRUE(out.words.empty());
  stats::Rng rng(1);
  auto s = sim::random_stream(4, 50, 0.5, rng);
  // Target longer than the input is clamped.
  auto c = core::compact_stream(s, 500, 1);
  EXPECT_LE(c.words.size(), 50u);
}

}  // namespace
