#include <gtest/gtest.h>

#include "netlist/copy.hpp"
#include "netlist/generators.hpp"
#include "netlist/netlist.hpp"
#include "netlist/words.hpp"
#include "sim/simulator.hpp"
#include "stats/rng.hpp"

namespace {

using namespace hlp::netlist;
using hlp::sim::Simulator;

TEST(Netlist, GateEvaluation) {
  std::uint8_t v01[] = {0, 1};
  std::uint8_t v11[] = {1, 1};
  std::uint8_t v00[] = {0, 0};
  EXPECT_FALSE(eval_gate(GateKind::And, v01));
  EXPECT_TRUE(eval_gate(GateKind::And, v11));
  EXPECT_TRUE(eval_gate(GateKind::Or, v01));
  EXPECT_FALSE(eval_gate(GateKind::Or, v00));
  EXPECT_TRUE(eval_gate(GateKind::Nand, v01));
  EXPECT_FALSE(eval_gate(GateKind::Nand, v11));
  EXPECT_TRUE(eval_gate(GateKind::Xor, v01));
  EXPECT_FALSE(eval_gate(GateKind::Xor, v11));
  EXPECT_TRUE(eval_gate(GateKind::Xnor, v11));
  std::uint8_t mux_sel0[] = {0, 1, 0};  // sel=0 -> d0=1
  std::uint8_t mux_sel1[] = {1, 1, 0};  // sel=1 -> d1=0
  EXPECT_TRUE(eval_gate(GateKind::Mux, mux_sel0));
  EXPECT_FALSE(eval_gate(GateKind::Mux, mux_sel1));
}

TEST(Netlist, TopoOrderRespectsDependencies) {
  Netlist nl;
  auto a = nl.add_input("a");
  auto b = nl.add_input("b");
  auto c = nl.add_binary(GateKind::And, a, b);
  auto d = nl.add_binary(GateKind::Or, c, a);
  auto& topo = nl.topo_order();
  ASSERT_EQ(topo.size(), 4u);
  auto pos = [&](GateId g) {
    return std::find(topo.begin(), topo.end(), g) - topo.begin();
  };
  EXPECT_LT(pos(a), pos(c));
  EXPECT_LT(pos(b), pos(c));
  EXPECT_LT(pos(c), pos(d));
}

TEST(Netlist, MutationInvalidatesTopoCache) {
  Netlist nl;
  auto a = nl.add_input("a");
  auto b = nl.add_input("b");
  auto c = nl.add_input("c");
  auto x = nl.add_binary(GateKind::And, a, b);
  auto y = nl.add_binary(GateKind::Or, x, c);
  nl.mark_output(y);

  auto pos_in = [](const std::vector<GateId>& topo, GateId g) {
    return std::find(topo.begin(), topo.end(), g) - topo.begin();
  };
  // Populate the cache.
  {
    const auto& topo = nl.topo_order();
    EXPECT_LT(pos_in(topo, x), pos_in(topo, y));
  }

  // Rewire y's first fanin from x to a: x no longer precedes y by
  // necessity, and the new order must still be a valid topological order
  // of the *edited* graph (stale-cache bug would keep the old vector).
  nl.set_fanin(y, 0, a);
  EXPECT_EQ(nl.gate(y).fanins[0], a);
  {
    const auto& topo = nl.topo_order();
    ASSERT_EQ(topo.size(), nl.gate_count());
    EXPECT_LT(pos_in(topo, a), pos_in(topo, y));
  }

  // Rewire through gate_mut(): make y depend on x again, then make x
  // depend on y — a combinational cycle the refreshed cache must detect.
  nl.gate_mut(y).fanins[0] = x;
  (void)nl.topo_order();
  nl.set_fanin(x, 0, y);
  EXPECT_THROW(nl.topo_order(), std::logic_error);

  // Undo; add_extra_cap must not perturb topology but must show up in
  // loads().
  nl.set_fanin(x, 0, a);
  EXPECT_NO_THROW(nl.topo_order());
  auto before = nl.loads();
  nl.add_extra_cap(x, 2.5);
  auto after = nl.loads();
  EXPECT_DOUBLE_EQ(after[x], before[x] + 2.5);
}

TEST(Netlist, GateAccessorsAreConstByDefault) {
  // gate() on a non-const Netlist must bind to the const (non-invalidating)
  // accessor; only gate_mut() hands out a mutable reference. This is the
  // contract that keeps read-heavy passes from discarding the topo cache.
  Netlist nl;
  (void)nl.add_input();
  static_assert(std::is_same_v<decltype(nl.gate(GateId{0})), const Gate&>);
  static_assert(std::is_same_v<decltype(nl.gate_mut(GateId{0})), Gate&>);
}

TEST(Words, WidthMismatchThrowsTypedError) {
  Netlist nl;
  Word a = make_input_word(nl, 4, "a");
  Word b = make_input_word(nl, 3, "b");
  try {
    (void)ripple_adder(nl, a, b);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("ripple_adder"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("4"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("3"), std::string::npos);
  }
  EXPECT_THROW((void)subtractor(nl, a, b), std::invalid_argument);
  EXPECT_THROW((void)xor_word(nl, a, b), std::invalid_argument);
  EXPECT_THROW((void)mux_word(nl, a[0], a, b), std::invalid_argument);
  EXPECT_THROW((void)equals(nl, a, b), std::invalid_argument);
  EXPECT_THROW((void)parity(nl, Word{}), std::invalid_argument);
  EXPECT_THROW((void)carry_select_adder(nl, a, a, 0), std::invalid_argument);
}

TEST(Netlist, DffBreaksCycles) {
  Netlist nl;
  auto q = nl.add_dff();
  auto nq = nl.add_unary(GateKind::Not, q);
  nl.set_dff_input(q, nq);  // toggle flip-flop
  EXPECT_NO_THROW(nl.topo_order());
  Simulator s(nl);
  s.eval();
  EXPECT_FALSE(s.value(q));
  s.tick();
  s.eval();
  EXPECT_TRUE(s.value(q));
  s.tick();
  s.eval();
  EXPECT_FALSE(s.value(q));
}

TEST(Netlist, LoadsAccountForFanout) {
  Netlist nl;
  auto a = nl.add_input();
  auto b = nl.add_unary(GateKind::Not, a);
  auto c = nl.add_unary(GateKind::Not, a);
  (void)b;
  (void)c;
  CapacitanceModel cap;
  auto loads = nl.loads(cap);
  // a drives two gate pins plus self cap plus wire.
  EXPECT_NEAR(loads[a],
              2 * cap.input_pin_cap + cap.output_self_cap +
                  2 * cap.wire_cap_per_fanout,
              1e-12);
}

TEST(Netlist, DepthOfChain) {
  Netlist nl;
  auto a = nl.add_input();
  GateId g = a;
  for (int i = 0; i < 5; ++i) g = nl.add_unary(GateKind::Not, g);
  EXPECT_EQ(nl.depth(), 5);
}

class AdderWidth : public ::testing::TestWithParam<int> {};

TEST_P(AdderWidth, RippleAdderIsCorrect) {
  int n = GetParam();
  auto mod = adder_module(n);
  Simulator s(mod.netlist);
  hlp::stats::Rng rng(99 + n);
  std::uint64_t mask = (n >= 64) ? ~0ull : ((1ull << n) - 1);
  for (int rep = 0; rep < 50; ++rep) {
    std::uint64_t a = rng.uniform_bits(n), b = rng.uniform_bits(n);
    s.set_word(mod.input_words[0], a);
    s.set_word(mod.input_words[1], b);
    s.eval();
    EXPECT_EQ(s.word_value(mod.output_words[0]), (a & mask) + (b & mask));
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, AdderWidth, ::testing::Values(1, 2, 4, 8, 16));

class MultiplierWidth : public ::testing::TestWithParam<int> {};

TEST_P(MultiplierWidth, ArrayMultiplierIsCorrect) {
  int n = GetParam();
  auto mod = multiplier_module(n);
  Simulator s(mod.netlist);
  hlp::stats::Rng rng(7 + n);
  for (int rep = 0; rep < 50; ++rep) {
    std::uint64_t a = rng.uniform_bits(n), b = rng.uniform_bits(n);
    s.set_word(mod.input_words[0], a);
    s.set_word(mod.input_words[1], b);
    s.eval();
    EXPECT_EQ(s.word_value(mod.output_words[0]), a * b)
        << "a=" << a << " b=" << b;
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, MultiplierWidth,
                         ::testing::Values(2, 3, 4, 6, 8));

TEST(Words, SubtractorTwosComplement) {
  Netlist nl;
  auto a = make_input_word(nl, 8, "a");
  auto b = make_input_word(nl, 8, "b");
  auto d = subtractor(nl, a, b);
  Simulator s(nl);
  hlp::stats::Rng rng(3);
  for (int rep = 0; rep < 100; ++rep) {
    std::uint64_t x = rng.uniform_bits(8), y = rng.uniform_bits(8);
    s.set_word(a, x);
    s.set_word(b, y);
    s.eval();
    EXPECT_EQ(s.word_value(d), (x - y) & 0xFF);
  }
}

class CarrySelectParam
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(CarrySelectParam, MatchesRippleEverywhere) {
  auto [n, block] = GetParam();
  Netlist nl;
  auto a = make_input_word(nl, n, "a");
  auto b = make_input_word(nl, n, "b");
  GateId cout = kNullGate;
  auto s = carry_select_adder(nl, a, b, block, &cout);
  Simulator sim(nl);
  hlp::stats::Rng rng(5);
  std::uint64_t mask = (n >= 64) ? ~0ull : ((1ull << n) - 1);
  for (int rep = 0; rep < 100; ++rep) {
    std::uint64_t x = rng.uniform_bits(n), y = rng.uniform_bits(n);
    sim.set_word(a, x);
    sim.set_word(b, y);
    sim.eval();
    std::uint64_t full = x + y;
    EXPECT_EQ(sim.word_value(s), full & mask);
    EXPECT_EQ(sim.value(cout), ((full >> n) & 1) != 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Cases, CarrySelectParam,
                         ::testing::Values(std::pair{8, 2}, std::pair{8, 4},
                                           std::pair{12, 3},
                                           std::pair{16, 4},
                                           std::pair{7, 3}));

TEST(Words, CarrySelectIsShallowerThanRipple) {
  Netlist r, c;
  auto ra = make_input_word(r, 16, "a"), rb = make_input_word(r, 16, "b");
  ripple_adder(r, ra, rb);
  auto ca = make_input_word(c, 16, "a"), cb = make_input_word(c, 16, "b");
  carry_select_adder(c, ca, cb, 4);
  EXPECT_LT(c.depth(), r.depth());
}

class CsaMultParam : public ::testing::TestWithParam<int> {};

TEST_P(CsaMultParam, MatchesArrayMultiplier) {
  int n = GetParam();
  Netlist nl;
  auto a = make_input_word(nl, n, "a");
  auto b = make_input_word(nl, n, "b");
  auto p = csa_multiplier(nl, a, b);
  Simulator sim(nl);
  hlp::stats::Rng rng(9);
  for (int rep = 0; rep < 100; ++rep) {
    std::uint64_t x = rng.uniform_bits(n), y = rng.uniform_bits(n);
    sim.set_word(a, x);
    sim.set_word(b, y);
    sim.eval();
    EXPECT_EQ(sim.word_value(p), x * y) << x << "*" << y;
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, CsaMultParam, ::testing::Values(2, 3, 4, 6,
                                                                 8));

TEST(Words, CsaMultiplierIsShallowerThanArray) {
  Netlist arr, csa;
  auto aa = make_input_word(arr, 8, "a"), ab = make_input_word(arr, 8, "b");
  array_multiplier(arr, aa, ab);
  auto ca = make_input_word(csa, 8, "a"), cb = make_input_word(csa, 8, "b");
  csa_multiplier(csa, ca, cb);
  EXPECT_LT(csa.depth(), arr.depth());
}

TEST(Words, ComparatorAndEquality) {
  auto mod = comparator_module(6);
  Simulator s(mod.netlist);
  hlp::stats::Rng rng(21);
  for (int rep = 0; rep < 200; ++rep) {
    std::uint64_t x = rng.uniform_bits(6), y = rng.uniform_bits(6);
    s.set_word(mod.input_words[0], x);
    s.set_word(mod.input_words[1], y);
    s.eval();
    bool lt = s.value(mod.output_words[0][0]);
    bool eq = s.value(mod.output_words[0][1]);
    EXPECT_EQ(lt, x < y);
    EXPECT_EQ(eq, x == y);
  }
}

TEST(Words, ParityTree) {
  auto mod = parity_module(9);
  Simulator s(mod.netlist);
  for (std::uint64_t v : {0ull, 1ull, 0b101ull, 0x1FFull, 0b110110101ull}) {
    s.set_word(mod.input_words[0], v);
    s.eval();
    EXPECT_EQ(s.value(mod.output_words[0][0]),
              (__builtin_popcountll(v) % 2) == 1);
  }
}

TEST(Words, MaxModule) {
  auto mod = hlp::netlist::max_module(5);
  Simulator s(mod.netlist);
  hlp::stats::Rng rng(8);
  for (int rep = 0; rep < 100; ++rep) {
    std::uint64_t x = rng.uniform_bits(5), y = rng.uniform_bits(5);
    s.set_word(mod.input_words[0], x);
    s.set_word(mod.input_words[1], y);
    s.eval();
    EXPECT_EQ(s.word_value(mod.output_words[0]), std::max(x, y));
  }
}

TEST(Generators, C17MatchesTruthTable) {
  auto mod = c17_module();
  Simulator s(mod.netlist);
  for (std::uint64_t in = 0; in < 32; ++in) {
    s.set_all_inputs(in);
    s.eval();
    bool g1 = in & 1, g2 = (in >> 1) & 1, g3 = (in >> 2) & 1,
         g6 = (in >> 3) & 1, g7 = (in >> 4) & 1;
    bool n10 = !(g1 && g3), n11 = !(g3 && g6);
    bool n16 = !(g2 && n11), n19 = !(n11 && g7);
    bool o22 = !(n10 && n16), o23 = !(n16 && n19);
    EXPECT_EQ(s.value(mod.output_words[0][0]), o22);
    EXPECT_EQ(s.value(mod.output_words[0][1]), o23);
  }
}

TEST(Generators, MuxTreeSelects) {
  auto mod = mux_tree_module(3);
  Simulator s(mod.netlist);
  hlp::stats::Rng rng(4);
  for (int rep = 0; rep < 100; ++rep) {
    std::uint64_t sel = rng.uniform_bits(3);
    std::uint64_t data = rng.uniform_bits(8);
    s.set_word(mod.input_words[0], sel);
    s.set_word(mod.input_words[1], data);
    s.eval();
    EXPECT_EQ(s.value(mod.output_words[0][0]),
              static_cast<bool>((data >> sel) & 1));
  }
}

TEST(Generators, RandomLogicDeterministicInSeed) {
  auto m1 = random_logic_module(8, 50, 4, 77);
  auto m2 = random_logic_module(8, 50, 4, 77);
  ASSERT_EQ(m1.netlist.gate_count(), m2.netlist.gate_count());
  Simulator s1(m1.netlist), s2(m2.netlist);
  for (std::uint64_t in = 0; in < 64; ++in) {
    s1.set_all_inputs(in);
    s2.set_all_inputs(in);
    s1.eval();
    s2.eval();
    EXPECT_EQ(s1.output_bits(), s2.output_bits());
  }
}

TEST(Copy, CopyPreservesFunction) {
  auto mod = adder_module(4);
  Netlist dst;
  std::vector<GateId> ins;
  for (int i = 0; i < 8; ++i) ins.push_back(dst.add_input());
  auto xlat = copy_combinational(mod.netlist, dst, ins);
  for (auto o : mod.netlist.outputs()) dst.mark_output(xlat[o]);
  Simulator s_src(mod.netlist), s_dst(dst);
  hlp::stats::Rng rng(12);
  for (int rep = 0; rep < 100; ++rep) {
    std::uint64_t in = rng.uniform_bits(8);
    s_src.set_all_inputs(in);
    s_dst.set_all_inputs(in);
    s_src.eval();
    s_dst.eval();
    EXPECT_EQ(s_src.output_bits(), s_dst.output_bits());
  }
}

TEST(Copy, RejectsSequentialSource) {
  Netlist src;
  src.add_dff();
  Netlist dst;
  EXPECT_THROW(copy_combinational(src, dst, {}), std::invalid_argument);
}

}  // namespace
