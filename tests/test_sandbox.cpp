// Process-isolated kernel sandbox (DESIGN.md §11): the fork/rlimit/pipe
// execution path, the typed crash taxonomy, the frame codec, and the
// poison-request quarantine circuit breaker.
//
// Naming note: these suites (Sandbox.*, Quarantine.*) are deliberately
// outside the TSan CI allowlist — TSan cannot follow a fork from a
// multithreaded process. The ASan job runs them in full (children die by
// design; the parent is what the leak check covers).

#include <gtest/gtest.h>

#include <signal.h>

#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "exec/exec.hpp"
#include "exec/fi.hpp"
#include "jobs/jobs.hpp"
#include "jobs/kernels.hpp"
#include "sandbox/quarantine.hpp"
#include "sandbox/sandbox.hpp"

// Real-rlimit tests are meaningless under ASan: the shadow mappings alone
// exceed any RLIMIT_AS a test would set.
#if defined(__SANITIZE_ADDRESS__)
#define HLP_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define HLP_ASAN 1
#endif
#endif

namespace {

using namespace hlp;
using sandbox::CrashKind;
using sandbox::CrashReport;
using sandbox::Limits;
using sandbox::Quarantine;
using sandbox::RunResult;

jobs::KernelRequest fake_request() {
  jobs::KernelRequest rq;
  rq.kind = jobs::JobKind::Custom;  // never elaborated by a fake kernel
  rq.design = "fake";
  rq.seed = 7;
  return rq;
}

sandbox::KernelFn value_kernel(double value) {
  return [value](const jobs::KernelRequest&, const exec::Budget&) {
    jobs::AttemptOutcome ao;
    ao.ok = true;
    ao.out.value = value;
    ao.out.detail = "fake-kernel";
    return ao;
  };
}

// --- Frame codec ------------------------------------------------------------

TEST(Sandbox, FrameCodecRoundTripsEveryField) {
  jobs::AttemptOutcome out;
  out.ok = false;
  out.stop = exec::StopReason::StepQuota;
  out.detail = "quota \"tripped\"\nmid-run";  // exercise string escaping
  out.out.value = 0.123456789012345;
  out.out.detail = "method summary";
  out.out.degraded = true;
  out.out.degraded_from = "bdd-sat-fraction";
  out.out.degraded_to = "monte-carlo";
  out.out.has_checkpoint = true;
  out.out.checkpoint.count = 4096;
  out.out.checkpoint.mean = 3.25;
  out.out.checkpoint.m2 = 17.0 / 3.0;

  const std::string payload = sandbox::encode_outcome(
      out, jobs::ErrorClass::Internal, "worker exploded");

  jobs::AttemptOutcome back;
  jobs::ErrorClass caught = jobs::ErrorClass::None;
  std::string caught_detail;
  ASSERT_TRUE(sandbox::decode_outcome(payload, back, caught, caught_detail))
      << payload;
  EXPECT_EQ(back.ok, out.ok);
  EXPECT_EQ(back.stop, out.stop);
  EXPECT_EQ(back.detail, out.detail);
  EXPECT_EQ(back.out.value, out.out.value);
  EXPECT_EQ(back.out.detail, out.out.detail);
  EXPECT_EQ(back.out.degraded, out.out.degraded);
  EXPECT_EQ(back.out.degraded_from, out.out.degraded_from);
  EXPECT_EQ(back.out.degraded_to, out.out.degraded_to);
  ASSERT_TRUE(back.out.has_checkpoint);
  EXPECT_EQ(back.out.checkpoint.count, out.out.checkpoint.count);
  EXPECT_EQ(back.out.checkpoint.mean, out.out.checkpoint.mean);
  EXPECT_EQ(back.out.checkpoint.m2, out.out.checkpoint.m2);
  EXPECT_EQ(caught, jobs::ErrorClass::Internal);
  EXPECT_EQ(caught_detail, "worker exploded");

  // encode(decode(x)) is a fixed point — the ledger/wire discipline.
  EXPECT_EQ(sandbox::encode_outcome(back, caught, caught_detail), payload);
}

TEST(Sandbox, FrameCodecIsClosedAndStrict) {
  jobs::AttemptOutcome out;
  jobs::ErrorClass caught;
  std::string detail;
  const char* bad[] = {
      "",
      "not json",
      "{}",                                  // missing ok
      "{\"ok\":true",                        // unterminated
      "{\"ok\":true}x",                      // trailing garbage
      "{\"ok\":\"yes\"}",                    // wrong type
      "{\"ok\":true,\"zz\":1}",              // unknown key: codec is closed
      "{\"ok\":true,\"stop\":\"nosuch\"}",   // unknown stop reason
      "{\"ok\":true,\"ckpt\":\"garbage\"}",  // unparsable checkpoint
      "{\"ok\":true,\"caught\":\"nosuch\"}",
  };
  for (const char* p : bad) {
    EXPECT_FALSE(sandbox::decode_outcome(p, out, caught, detail)) << p;
  }
}

// --- run_isolated: delivery paths -------------------------------------------

TEST(Sandbox, DeliversAFakeKernelsOutcomeAcrossTheFork) {
  exec::Budget budget;
  const RunResult r =
      sandbox::run_isolated(fake_request(), budget, {}, value_kernel(42.5));
  ASSERT_TRUE(r.delivered) << r.crash.detail;
  EXPECT_EQ(r.crash.kind, CrashKind::None);
  EXPECT_EQ(r.caught, jobs::ErrorClass::None);
  EXPECT_TRUE(r.outcome.ok);
  EXPECT_EQ(r.outcome.out.value, 42.5);
  EXPECT_EQ(r.outcome.out.detail, "fake-kernel");
}

TEST(Sandbox, RealKernelMatchesInProcessExecutionBitForBit) {
  jobs::KernelRequest rq;
  rq.kind = jobs::JobKind::MonteCarlo;
  rq.design = "adder:4";
  rq.seed = 1234;
  rq.epsilon = 0.1;
  rq.max_pairs = 200;
  exec::Budget budget;
  const jobs::AttemptOutcome local = jobs::run_kernel(rq, budget);
  ASSERT_TRUE(local.ok);

  const RunResult r = sandbox::run_isolated(rq, budget, {});
  ASSERT_TRUE(r.delivered) << r.crash.detail;
  ASSERT_TRUE(r.outcome.ok);
  EXPECT_EQ(r.outcome.out.value, local.out.value)
      << "isolation must not change the estimate by a single bit";
  EXPECT_EQ(r.outcome.out.detail, local.out.detail);
}

TEST(Sandbox, ChildCaughtExceptionsComeBackTyped) {
  exec::Budget budget;
  const sandbox::KernelFn invalid = [](const jobs::KernelRequest&,
                                       const exec::Budget&) {
    throw std::invalid_argument("bad design: nope");
    return jobs::AttemptOutcome{};
  };
  RunResult r = sandbox::run_isolated(fake_request(), budget, {}, invalid);
  ASSERT_TRUE(r.delivered);
  EXPECT_EQ(r.caught, jobs::ErrorClass::InvalidInput);
  EXPECT_EQ(r.caught_detail, "bad design: nope");

  const sandbox::KernelFn internal = [](const jobs::KernelRequest&,
                                        const exec::Budget&) {
    throw std::runtime_error("kernel bug");
    return jobs::AttemptOutcome{};
  };
  r = sandbox::run_isolated(fake_request(), budget, {}, internal);
  ASSERT_TRUE(r.delivered);
  EXPECT_EQ(r.caught, jobs::ErrorClass::Internal);
  EXPECT_EQ(r.caught_detail, "kernel bug");
}

TEST(Sandbox, CheckpointSurvivesTheCrossingBothWays) {
  // A budget-stopped kernel's resumable checkpoint must transport back to
  // the parent intact — the property hlp_run --isolate --resume rides on.
  exec::Budget budget;
  const sandbox::KernelFn stopped = [](const jobs::KernelRequest&,
                                       const exec::Budget&) {
    jobs::AttemptOutcome ao;
    ao.ok = false;
    ao.stop = exec::StopReason::StepQuota;
    ao.out.has_checkpoint = true;
    ao.out.checkpoint.count = 999;
    ao.out.checkpoint.mean = 1.5;
    ao.out.checkpoint.m2 = 0.25;
    return ao;
  };
  const RunResult r =
      sandbox::run_isolated(fake_request(), budget, {}, stopped);
  ASSERT_TRUE(r.delivered);
  EXPECT_FALSE(r.outcome.ok);
  EXPECT_EQ(r.outcome.stop, exec::StopReason::StepQuota);
  ASSERT_TRUE(r.outcome.out.has_checkpoint);
  EXPECT_EQ(r.outcome.out.checkpoint.count, 999u);
  EXPECT_EQ(r.outcome.out.checkpoint.mean, 1.5);
  EXPECT_EQ(r.outcome.out.checkpoint.m2, 0.25);
}

// --- run_isolated: crash paths ----------------------------------------------

TEST(Sandbox, InjectedSegvIsATypedSignalCrashAndOneShot) {
  fi::disarm_serve_faults();
  fi::arm_serve_fault(fi::ServeFault::ChildSegv, 0);
  exec::Budget budget;
  const RunResult r =
      sandbox::run_isolated(fake_request(), budget, {}, value_kernel(1.0));
  EXPECT_FALSE(r.delivered);
  EXPECT_EQ(r.crash.kind, CrashKind::Signal) << r.crash.detail;
  EXPECT_EQ(r.crash.signal, SIGSEGV);
  EXPECT_EQ(sandbox::error_class_for(r.crash), jobs::ErrorClass::Internal);

  // The fault is a one-shot claimed by the parent before fork: the very
  // next attempt is clean.
  const RunResult again =
      sandbox::run_isolated(fake_request(), budget, {}, value_kernel(1.0));
  EXPECT_TRUE(again.delivered) << again.crash.detail;
  fi::disarm_serve_faults();
}

TEST(Sandbox, InjectedOomKillIsTypedAndRetryable) {
  fi::disarm_serve_faults();
  fi::arm_serve_fault(fi::ServeFault::ChildOom, 0);
  exec::Budget budget;
  const RunResult r =
      sandbox::run_isolated(fake_request(), budget, {}, value_kernel(1.0));
  EXPECT_FALSE(r.delivered);
  EXPECT_EQ(r.crash.kind, CrashKind::OomKill) << r.crash.detail;
  EXPECT_EQ(sandbox::error_class_for(r.crash),
            jobs::ErrorClass::BudgetExhausted)
      << "an OOM kill must be retryable-with-downgrade";
  fi::disarm_serve_faults();
}

TEST(Sandbox, WedgedChildIsKilledAtTheWallDeadline) {
  fi::disarm_serve_faults();
  fi::arm_serve_fault(fi::ServeFault::ChildWedge, 0);
  Limits lim;
  lim.wall_deadline_seconds = 0.3;
  exec::Budget budget;
  const auto t0 = std::chrono::steady_clock::now();
  const RunResult r =
      sandbox::run_isolated(fake_request(), budget, lim, value_kernel(1.0));
  const double waited =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_FALSE(r.delivered);
  EXPECT_EQ(r.crash.kind, CrashKind::WallTimeout) << r.crash.detail;
  EXPECT_EQ(sandbox::error_class_for(r.crash),
            jobs::ErrorClass::BudgetExhausted);
  EXPECT_GE(waited, 0.29) << "must actually wait out the wall deadline";
  EXPECT_LT(waited, 10.0) << "a wedged child must not wedge the parent";
  fi::disarm_serve_faults();
}

TEST(Sandbox, CancellationKillsTheChildPromptly) {
  const sandbox::KernelFn sleepy = [](const jobs::KernelRequest&,
                                      const exec::Budget&) {
    std::this_thread::sleep_for(std::chrono::seconds(30));
    return jobs::AttemptOutcome{};
  };
  exec::CancelToken cancel;
  cancel.request_cancel();  // pre-tripped: the wait must notice immediately
  exec::Budget budget;
  const auto t0 = std::chrono::steady_clock::now();
  const RunResult r =
      sandbox::run_isolated(fake_request(), budget, {}, sleepy, &cancel);
  const double waited =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_FALSE(r.delivered);
  EXPECT_EQ(r.crash.kind, CrashKind::Cancelled) << r.crash.detail;
  EXPECT_EQ(sandbox::error_class_for(r.crash), jobs::ErrorClass::Cancelled);
  EXPECT_LT(waited, 5.0);
}

TEST(Sandbox, ChildExitWithoutAFrameIsExitNonzero) {
  const sandbox::KernelFn exiting = [](const jobs::KernelRequest&,
                                       const exec::Budget&) {
    _exit(7);  // models a library calling exit() behind the kernel's back
    return jobs::AttemptOutcome{};
  };
  exec::Budget budget;
  const RunResult r =
      sandbox::run_isolated(fake_request(), budget, {}, exiting);
  EXPECT_FALSE(r.delivered);
  EXPECT_EQ(r.crash.kind, CrashKind::ExitNonzero) << r.crash.detail;
  EXPECT_EQ(r.crash.exit_code, 7);
  EXPECT_EQ(sandbox::error_class_for(r.crash), jobs::ErrorClass::Internal);
}

TEST(Sandbox, RlimitAsTurnsAnAllocationStormIntoAllocFailure) {
#ifdef HLP_ASAN
  GTEST_SKIP() << "RLIMIT_AS is meaningless under ASan's shadow mappings";
#endif
  Limits lim;
  lim.rlimit_as_bytes = 256u << 20;
  lim.wall_deadline_seconds = 20.0;  // backstop only
  const sandbox::KernelFn storm = [](const jobs::KernelRequest&,
                                     const exec::Budget&) {
    // Allocate far past the cap, touching pages so the reservation is real.
    std::vector<std::vector<char>> hoard;
    for (;;) {
      hoard.emplace_back(16u << 20);
      for (std::size_t i = 0; i < hoard.back().size(); i += 4096)
        hoard.back()[i] = 1;
    }
    return jobs::AttemptOutcome{};
  };
  exec::Budget budget;
  const RunResult r = sandbox::run_isolated(fake_request(), budget, lim, storm);
  // A throwing allocation is caught in the child and delivered as a typed
  // AllocFailure outcome; a noexcept-context failure dies as a crash. Both
  // are contained — the parent must never be the process that dies.
  if (r.delivered) {
    EXPECT_FALSE(r.outcome.ok);
    EXPECT_EQ(r.outcome.stop, exec::StopReason::AllocFailure);
  } else {
    EXPECT_NE(r.crash.kind, CrashKind::None);
    EXPECT_NE(r.crash.kind, CrashKind::WallTimeout) << r.crash.detail;
  }
}

TEST(Sandbox, RlimitCpuKillsABusyLoopAsCpuLimit) {
#ifdef HLP_ASAN
  GTEST_SKIP() << "rlimit timing under ASan instrumentation is unreliable";
#endif
  Limits lim;
  lim.rlimit_cpu_seconds = 1.0;
  lim.wall_deadline_seconds = 30.0;  // backstop: the test must not hang
  const sandbox::KernelFn burner = [](const jobs::KernelRequest&,
                                      const exec::Budget&) {
    for (volatile std::uint64_t spin = 0;;) spin = spin + 1;
    return jobs::AttemptOutcome{};
  };
  exec::Budget budget;
  const RunResult r =
      sandbox::run_isolated(fake_request(), budget, lim, burner);
  EXPECT_FALSE(r.delivered);
  EXPECT_EQ(r.crash.kind, CrashKind::CpuLimit) << r.crash.detail;
  EXPECT_EQ(sandbox::error_class_for(r.crash),
            jobs::ErrorClass::BudgetExhausted);
}

TEST(Sandbox, ErrorClassTableMatchesTheDesign) {
  const struct {
    CrashKind kind;
    jobs::ErrorClass want;
  } table[] = {
      {CrashKind::None, jobs::ErrorClass::None},
      {CrashKind::Signal, jobs::ErrorClass::Internal},
      {CrashKind::OomKill, jobs::ErrorClass::BudgetExhausted},
      {CrashKind::CpuLimit, jobs::ErrorClass::BudgetExhausted},
      {CrashKind::WallTimeout, jobs::ErrorClass::BudgetExhausted},
      {CrashKind::Cancelled, jobs::ErrorClass::Cancelled},
      {CrashKind::ExitNonzero, jobs::ErrorClass::Internal},
      {CrashKind::PipeError, jobs::ErrorClass::Internal},
  };
  for (const auto& row : table) {
    CrashReport cr;
    cr.kind = row.kind;
    EXPECT_EQ(sandbox::error_class_for(cr), row.want)
        << sandbox::to_string(row.kind);
  }
}

// --- run_kernel_isolated: jobs-layer semantics ------------------------------

TEST(Sandbox, RunKernelIsolatedMapsResourceKillsToRetryableOutcomes) {
  jobs::KernelRequest rq;
  rq.kind = jobs::JobKind::MonteCarlo;
  rq.design = "adder:4";
  rq.epsilon = 0.1;
  rq.max_pairs = 100;

  // A wedge dies at the wall deadline derived from the cooperative budget
  // and surfaces as ok=false/Deadline — the retry-with-downgrade shape.
  fi::disarm_serve_faults();
  fi::arm_serve_fault(fi::ServeFault::ChildWedge, 0);
  exec::Budget budget;
  budget.deadline_seconds = 0.2;
  jobs::AttemptOutcome out = sandbox::run_kernel_isolated(rq, budget, {});
  EXPECT_FALSE(out.ok);
  EXPECT_EQ(out.stop, exec::StopReason::Deadline) << out.detail;

  // An OOM kill surfaces as AllocFailure (same downgrade path as a thrown
  // bad_alloc, even though the kill was uncatchable in the child).
  fi::arm_serve_fault(fi::ServeFault::ChildOom, 0);
  out = sandbox::run_kernel_isolated(rq, budget, {});
  EXPECT_FALSE(out.ok);
  EXPECT_EQ(out.stop, exec::StopReason::AllocFailure) << out.detail;

  // A segfault is an Internal crash: rethrown for the runner's classifier.
  fi::arm_serve_fault(fi::ServeFault::ChildSegv, 0);
  EXPECT_THROW(sandbox::run_kernel_isolated(rq, budget, {}),
               std::runtime_error);
  fi::disarm_serve_faults();

  // Clean run: delivered outcome passes through unchanged.
  out = sandbox::run_kernel_isolated(rq, budget, {});
  EXPECT_TRUE(out.ok) << out.detail;
}

TEST(Sandbox, RunKernelIsolatedRethrowsChildInvalidInput) {
  jobs::KernelRequest rq;
  rq.kind = jobs::JobKind::MonteCarlo;
  rq.design = "nosuch:99";
  exec::Budget budget;
  EXPECT_THROW(sandbox::run_kernel_isolated(rq, budget, {}),
               std::invalid_argument);
}

// --- Quarantine circuit breaker ---------------------------------------------

Quarantine::Clock::time_point at(int seconds) {
  return Quarantine::Clock::time_point{} + std::chrono::seconds(seconds);
}

TEST(Quarantine, TripsAfterExactlyKHardFailures) {
  Quarantine::Options opts;
  opts.threshold = 3;
  opts.base_expiry = std::chrono::seconds(30);
  Quarantine q(opts);
  const std::uint64_t fp = 0xfeed;

  EXPECT_EQ(q.admit(fp, at(0)), Quarantine::Decision::Admit);
  EXPECT_FALSE(q.record_failure(fp, at(1)));
  EXPECT_EQ(q.admit(fp, at(1)), Quarantine::Decision::Admit)
      << "one failure short of K must still admit";
  EXPECT_FALSE(q.record_failure(fp, at(2)));
  EXPECT_EQ(q.admit(fp, at(2)), Quarantine::Decision::Admit);
  EXPECT_TRUE(q.record_failure(fp, at(3))) << "the K-th failure trips";
  EXPECT_EQ(q.admit(fp, at(3)), Quarantine::Decision::Quarantined);
  EXPECT_TRUE(q.is_open(fp, at(3)));
  // 30s expiry not yet reached at t=32; past it the breaker half-opens.
  EXPECT_EQ(q.admit(fp, at(32)), Quarantine::Decision::Quarantined);
  EXPECT_EQ(q.admit(fp, at(34)), Quarantine::Decision::Probe);

  const Quarantine::Counters c = q.counters();
  EXPECT_EQ(c.trips, 1u);
  EXPECT_EQ(c.served_open, 2u);  // the t=3 and t=32 quarantined admits
  EXPECT_EQ(c.open_now, 1u);
}

TEST(Quarantine, DeliveredOutcomeResetsTheFailureCount) {
  Quarantine q({.threshold = 2});
  const std::uint64_t fp = 1;
  q.record_failure(fp, at(0));
  q.record_success(fp);  // delivered outcome: streak broken
  EXPECT_FALSE(q.record_failure(fp, at(1)))
      << "the streak restarted; one failure must not trip a threshold of 2";
  EXPECT_TRUE(q.record_failure(fp, at(2)));
}

TEST(Quarantine, ExpiryAdmitsExactlyOneProbe) {
  Quarantine q({.threshold = 1, .base_expiry = std::chrono::seconds(10)});
  const std::uint64_t fp = 2;
  ASSERT_TRUE(q.record_failure(fp, at(0)));
  EXPECT_EQ(q.admit(fp, at(5)), Quarantine::Decision::Quarantined);

  // Past expiry: the first caller is the probe, every other concurrent
  // request keeps being served degraded until the probe resolves.
  EXPECT_EQ(q.admit(fp, at(11)), Quarantine::Decision::Probe);
  EXPECT_EQ(q.admit(fp, at(11)), Quarantine::Decision::Quarantined);
  EXPECT_EQ(q.admit(fp, at(12)), Quarantine::Decision::Quarantined);
  EXPECT_EQ(q.counters().probes, 1u);
}

TEST(Quarantine, ProbeSuccessRehabilitates) {
  Quarantine q({.threshold = 1, .base_expiry = std::chrono::seconds(10)});
  const std::uint64_t fp = 3;
  q.record_failure(fp, at(0));
  ASSERT_EQ(q.admit(fp, at(11)), Quarantine::Decision::Probe);
  q.record_success(fp);
  EXPECT_EQ(q.admit(fp, at(11)), Quarantine::Decision::Admit)
      << "a rehabilitated fingerprint executes normally again";
  EXPECT_FALSE(q.is_open(fp, at(11)));
  const Quarantine::Counters c = q.counters();
  EXPECT_EQ(c.rehabilitated, 1u);
  EXPECT_EQ(c.open_now, 0u);
  // Fresh start: rehabilitation erased the entry, so the failure streak
  // begins at zero, not at K-1.
  EXPECT_TRUE(q.record_failure(fp, at(12)));  // threshold 1 trips again
  EXPECT_EQ(q.counters().trips, 2u);
}

TEST(Quarantine, ProbeFailureReopensWithDoubledExpiry) {
  Quarantine q({.threshold = 1, .base_expiry = std::chrono::seconds(10)});
  const std::uint64_t fp = 4;
  q.record_failure(fp, at(0));  // open until 10
  ASSERT_EQ(q.admit(fp, at(11)), Quarantine::Decision::Probe);
  EXPECT_TRUE(q.record_failure(fp, at(11)))
      << "a failed probe re-opens the breaker";
  EXPECT_EQ(q.counters().reopens, 1u);
  // Doubled expiry: open from t=11 for 20s.
  EXPECT_EQ(q.admit(fp, at(30)), Quarantine::Decision::Quarantined);
  EXPECT_EQ(q.admit(fp, at(32)), Quarantine::Decision::Probe);
  // A second failed probe doubles again: 40s from t=32.
  EXPECT_TRUE(q.record_failure(fp, at(32)));
  EXPECT_EQ(q.admit(fp, at(70)), Quarantine::Decision::Quarantined);
  EXPECT_EQ(q.admit(fp, at(73)), Quarantine::Decision::Probe);
}

TEST(Quarantine, ExpiryIsCappedAtMax) {
  Quarantine q({.threshold = 1,
                .base_expiry = std::chrono::seconds(10),
                .max_expiry = std::chrono::seconds(35)});
  const std::uint64_t fp = 5;
  int t = 0;
  q.record_failure(fp, at(t));
  // Drive many reopen cycles; expiry must saturate at max_expiry instead
  // of overflowing or growing without bound.
  for (int i = 0; i < 40; ++i) {
    t += 100;  // always past any capped expiry
    ASSERT_EQ(q.admit(fp, at(t)), Quarantine::Decision::Probe) << i;
    q.record_failure(fp, at(t));
  }
  EXPECT_EQ(q.admit(fp, at(t + 34)), Quarantine::Decision::Quarantined);
  EXPECT_EQ(q.admit(fp, at(t + 36)), Quarantine::Decision::Probe)
      << "expiry must be capped at max_expiry";
}

TEST(Quarantine, StragglersWhileOpenDoNotCorruptTheState) {
  Quarantine q({.threshold = 2, .base_expiry = std::chrono::seconds(10)});
  const std::uint64_t fp = 6;
  q.record_failure(fp, at(0));
  ASSERT_TRUE(q.record_failure(fp, at(1)));  // open until 11
  // In-flight attempts admitted before the trip resolve late: neither a
  // straggler failure nor a straggler success may move the state machine.
  EXPECT_FALSE(q.record_failure(fp, at(2)));
  q.record_success(fp);
  EXPECT_TRUE(q.is_open(fp, at(5)));
  EXPECT_EQ(q.counters().trips, 1u);
  EXPECT_EQ(q.counters().rehabilitated, 0u);
}

TEST(Quarantine, FingerprintsAreIndependent) {
  Quarantine q({.threshold = 1});
  q.record_failure(10, at(0));
  EXPECT_EQ(q.admit(10, at(1)), Quarantine::Decision::Quarantined);
  EXPECT_EQ(q.admit(11, at(1)), Quarantine::Decision::Admit)
      << "a poison design must not quarantine its neighbors";
  EXPECT_EQ(q.counters().open_now, 1u);
}

}  // namespace
