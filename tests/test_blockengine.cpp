#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "core/macromodel.hpp"
#include "core/sampling_power.hpp"
#include "jobs/kernels.hpp"
#include "netlist/generators.hpp"
#include "sim/block_simulator.hpp"
#include "sim/simulator.hpp"
#include "sim/streams.hpp"
#include "stats/rng.hpp"

namespace {

using namespace hlp;
using netlist::GateKind;
using netlist::Netlist;

/// Every test leaves the programmatic dispatch cap wide open even on
/// failure (Avx512 = "no cap"; the hardware/env caps still apply).
struct DispatchGuard {
  ~DispatchGuard() { sim::set_dispatch_cap(sim::SimDispatch::Avx512); }
};

// --- width resolution and dispatch plumbing -------------------------------

TEST(BlockDispatch, ResolveBlockWordsClampsAndDefaults) {
  EXPECT_EQ(sim::resolve_block_words(0), sim::default_block_words());
  EXPECT_EQ(sim::resolve_block_words(-5), sim::default_block_words());
  EXPECT_EQ(sim::resolve_block_words(5), 5);
  EXPECT_EQ(sim::resolve_block_words(64), 64);
  EXPECT_EQ(sim::resolve_block_words(1000), 64);
  EXPECT_GE(sim::default_block_words(), 1);
  EXPECT_LE(sim::default_block_words(), 64);
}

TEST(BlockDispatch, CapIsMonotoneAndNamed) {
  DispatchGuard guard;
  EXPECT_STREQ(sim::to_string(sim::SimDispatch::Portable), "portable");
  EXPECT_STREQ(sim::to_string(sim::SimDispatch::Avx2), "avx2");
  EXPECT_STREQ(sim::to_string(sim::SimDispatch::Avx512), "avx512");
  sim::set_dispatch_cap(sim::SimDispatch::Portable);
  EXPECT_EQ(sim::active_dispatch(), sim::SimDispatch::Portable);
  sim::set_dispatch_cap(sim::SimDispatch::Avx512);
  // Whatever the host supports, the cap no longer constrains it.
  const sim::SimDispatch best = sim::active_dispatch();
  sim::set_dispatch_cap(best);
  EXPECT_EQ(sim::active_dispatch(), best);
}

TEST(BlockDispatch, KernelSelectionHonoursWidthDivisibility) {
  DispatchGuard guard;
  auto mod = netlist::adder_module(8);
  // W=1 can never use a 256/512-bit kernel; W=8 uses the best available.
  sim::BlockSimulator narrow(mod.netlist, 1);
  EXPECT_EQ(narrow.dispatch(), sim::SimDispatch::Portable);
  sim::set_dispatch_cap(sim::SimDispatch::Portable);
  sim::BlockSimulator capped(mod.netlist, 8);
  EXPECT_EQ(capped.dispatch(), sim::SimDispatch::Portable);
}

// --- forced-dispatch identity: every kernel computes the same bits --------

TEST(BlockDispatch, PortableAndBestKernelsAreBitIdentical) {
  DispatchGuard guard;
  auto mod = netlist::random_logic_module(16, 120, 8, 3);
  stats::Rng rng(17);
  auto in = sim::random_stream(mod.total_input_bits(), 300, 0.5, rng);

  sim::SimOptions packed{sim::EngineKind::Packed};
  packed.block_words = 8;  // divisible by 4 and 8: widest kernel eligible

  auto best_out = sim::simulate_outputs(mod.netlist, in, packed);
  auto best_act = sim::simulate_activities(mod.netlist, in, nullptr, packed);

  sim::set_dispatch_cap(sim::SimDispatch::Portable);
  auto port_out = sim::simulate_outputs(mod.netlist, in, packed);
  auto port_act = sim::simulate_activities(mod.netlist, in, nullptr, packed);

  EXPECT_EQ(best_out.words, port_out.words);
  ASSERT_EQ(best_act.size(), port_act.size());
  for (std::size_t g = 0; g < best_act.size(); ++g)
    EXPECT_EQ(best_act[g], port_act[g]) << "gate " << g;
}

// --- block width differential: scalar vs packed at W in {1,2,4,8} ---------

void expect_width_equivalence(const Netlist& nl, int n_in, std::size_t cycles,
                              std::uint64_t seed) {
  stats::Rng rng(seed);
  auto in = sim::random_stream(n_in, cycles, 0.5, rng);

  stats::VectorStream out_s;
  auto act_s = sim::simulate_activities(
      nl, in, &out_s, sim::SimOptions{sim::EngineKind::Scalar});

  for (int w : {1, 2, 4, 8}) {
    sim::SimOptions packed{sim::EngineKind::Packed};
    packed.block_words = w;
    stats::VectorStream out_p;
    auto act_p = sim::simulate_activities(nl, in, &out_p, packed);
    ASSERT_EQ(act_s.size(), act_p.size());
    for (std::size_t g = 0; g < act_s.size(); ++g)
      EXPECT_EQ(act_s[g], act_p[g]) << "W=" << w << " gate " << g;
    EXPECT_EQ(out_s.words, out_p.words) << "W=" << w;
    auto po = sim::simulate_outputs(nl, in, packed);
    EXPECT_EQ(out_s.words, po.words) << "W=" << w;
  }
}

TEST(BlockDifferential, RandomDagsAcrossWidths) {
  for (std::uint64_t seed : {1u, 42u}) {
    auto mod = netlist::random_logic_module(16, 120, 8, seed);
    // 700 cycles spans a full 8-word block plus a partial second one.
    expect_width_equivalence(mod.netlist, mod.total_input_bits(), 700,
                             seed + 100);
  }
}

TEST(BlockDifferential, ArithmeticAcrossWidths) {
  auto add = netlist::adder_module(12);
  expect_width_equivalence(add.netlist, add.total_input_bits(), 500, 3);
  auto mul = netlist::multiplier_module(5);
  expect_width_equivalence(mul.netlist, mul.total_input_bits(), 300, 5);
}

TEST(BlockDifferential, PartialBlockBoundaries) {
  auto mod = netlist::alu_module(6);
  // Lengths straddling sub-word and block boundaries of a W=2..8 block.
  for (std::size_t cycles :
       {std::size_t{1}, std::size_t{63}, std::size_t{64}, std::size_t{65},
        std::size_t{128}, std::size_t{129}, std::size_t{512},
        std::size_t{513}}) {
    expect_width_equivalence(mod.netlist, mod.total_input_bits(), cycles, 7);
  }
}

TEST(BlockDifferential, CharacterizeAcrossWidths) {
  auto mod = netlist::multiplier_module(4);
  stats::Rng rng(31);
  auto in = sim::random_stream(mod.total_input_bits(), 520, 0.5, rng);
  auto cs =
      core::characterize(mod, in, {}, sim::SimOptions{sim::EngineKind::Scalar});
  for (int w : {1, 2, 4, 8}) {
    sim::SimOptions packed{sim::EngineKind::Packed};
    packed.block_words = w;
    auto cp = core::characterize(mod, in, {}, packed);
    ASSERT_EQ(cs.transitions(), cp.transitions()) << "W=" << w;
    EXPECT_EQ(cs.total_cap, cp.total_cap);
    for (std::size_t t = 0; t < cs.transitions(); ++t) {
      EXPECT_EQ(cs.energy[t], cp.energy[t]) << "W=" << w << " t=" << t;
      EXPECT_EQ(cs.cur_word[t], cp.cur_word[t]) << "W=" << w << " t=" << t;
      EXPECT_EQ(cs.prev_word[t], cp.prev_word[t]) << "W=" << w << " t=" << t;
      EXPECT_EQ(cs.pin_toggle[t], cp.pin_toggle[t]) << "W=" << w;
    }
  }
}

// --- replica lanes on the block simulator (sequential, W > 1) -------------

TEST(BlockReplicaLanes, SequentialFsmMatches128ScalarRuns) {
  // Serial-in parity accumulator: q' = q xor in; y = q or in.
  Netlist nl;
  auto in = nl.add_input("in");
  auto q = nl.add_dff();
  auto x = nl.add_binary(GateKind::Xor, q, in);
  nl.set_dff_input(q, x);
  auto y = nl.add_binary(GateKind::Or, q, in);
  nl.mark_output(y);

  const int W = 2;  // 128 replica lanes
  const std::size_t cycles = 40;
  stats::Rng rng(77);
  std::vector<std::vector<std::uint64_t>> lane_words(cycles);
  for (auto& w : lane_words) {
    w.resize(W);
    for (auto& word : w) word = rng.uniform_bits(64);
  }

  sim::BlockSimulator bs(nl, W);
  std::vector<std::vector<std::uint64_t>> block_y(cycles);
  for (std::size_t c = 0; c < cycles; ++c) {
    bs.set_input_lanes(in, lane_words[c]);
    bs.eval();
    auto lw = bs.lane_words(y);
    block_y[c].assign(lw.begin(), lw.end());
    bs.tick();
  }

  for (int lane = 0; lane < 64 * W; ++lane) {
    const int w = lane / 64, k = lane % 64;
    sim::Simulator s(nl);
    for (std::size_t c = 0; c < cycles; ++c) {
      s.set_input(in, (lane_words[c][w] >> k) & 1u);
      s.eval();
      EXPECT_EQ(static_cast<std::uint64_t>(s.value(y)),
                (block_y[c][w] >> k) & 1u)
          << "lane " << lane << " cycle " << c;
      s.tick();
    }
  }
}

// --- Monte Carlo: widths bit-identical, quota trips on the same pair ------

TEST(BlockMonteCarlo, WidthsBitIdenticalToScalar) {
  auto mod = netlist::multiplier_module(4);
  const int n_in = mod.total_input_bits();
  stats::Rng rng_s(9);
  auto rs = core::monte_carlo_power(
      mod, [&] { return rng_s.uniform_bits(n_in); }, 0.05, 0.95, 30, 4000, {},
      sim::SimOptions{sim::EngineKind::Scalar});
  for (int w : {1, 2, 4, 8}) {
    stats::Rng rng_p(9);
    sim::SimOptions packed{sim::EngineKind::Packed};
    packed.block_words = w;
    auto rp = core::monte_carlo_power(
        mod, [&] { return rng_p.uniform_bits(n_in); }, 0.05, 0.95, 30, 4000,
        {}, packed);
    EXPECT_EQ(rs.mean_energy, rp.mean_energy) << "W=" << w;
    EXPECT_EQ(rs.pairs, rp.pairs) << "W=" << w;
    EXPECT_EQ(rs.ci_halfwidth, rp.ci_halfwidth) << "W=" << w;
    EXPECT_EQ(rs.converged, rp.converged) << "W=" << w;
  }
}

TEST(BlockMonteCarlo, QuotaTripsOnTheSamePairAcrossWidths) {
  auto mod = netlist::adder_module(6);
  const int n_in = mod.total_input_bits();
  // 97 is mid-block for every width: the final block must be clipped to
  // the remaining quota, never charged past it.
  const std::size_t quota = 97;
  stats::Rng rng_s(4);
  auto bs = exec::Budget::with_step_quota(quota);
  auto out_s = core::monte_carlo_power_budgeted(
      mod, [&] { return rng_s.uniform_bits(n_in); }, bs, 1e-9, 0.95, 30, 4000,
      {}, sim::SimOptions{sim::EngineKind::Scalar});
  EXPECT_EQ(out_s->pairs, quota);
  for (int w : {1, 2, 4, 8}) {
    stats::Rng rng_p(4);
    sim::SimOptions packed{sim::EngineKind::Packed};
    packed.block_words = w;
    auto bp = exec::Budget::with_step_quota(quota);
    auto out_p = core::monte_carlo_power_budgeted(
        mod, [&] { return rng_p.uniform_bits(n_in); }, bp, 1e-9, 0.95, 30,
        4000, {}, packed);
    EXPECT_EQ(out_p->pairs, quota) << "W=" << w;
    EXPECT_EQ(out_p->mean_energy, out_s->mean_energy) << "W=" << w;
    EXPECT_EQ(out_p->checkpoint.count, out_s->checkpoint.count) << "W=" << w;
    EXPECT_EQ(out_p->stop_reason,
              core::MonteCarloResult::StopReason::BudgetExhausted);
  }
}

// --- sharded Monte Carlo: thread counts and resume are bit-identical ------

TEST(ShardedMonteCarlo, ThreadCountsBitIdentical) {
  auto mod = netlist::multiplier_module(4);
  core::ShardedMcOptions opts;
  opts.total_pairs = 2000;
  opts.chunk_pairs = 256;
  opts.epsilon = 0.0;  // exhaustive: every chunk must be simulated
  auto ref = core::monte_carlo_power_sharded(mod, 11, opts);
  EXPECT_EQ(ref->pairs, 2000u);
  for (int threads : {2, 8}) {
    core::ShardedMcOptions o = opts;
    o.threads = threads;
    auto r = core::monte_carlo_power_sharded(mod, 11, o);
    EXPECT_EQ(ref->mean_energy, r->mean_energy) << "threads " << threads;
    EXPECT_EQ(ref->pairs, r->pairs) << "threads " << threads;
    EXPECT_EQ(ref->ci_halfwidth, r->ci_halfwidth) << "threads " << threads;
  }
}

TEST(ShardedMonteCarlo, ConvergenceIndependentOfThreadSchedule) {
  auto mod = netlist::adder_module(10);
  core::ShardedMcOptions opts;
  opts.total_pairs = 50000;
  opts.chunk_pairs = 512;
  opts.epsilon = 0.03;  // realistic CI stop: lands mid-campaign
  auto ref = core::monte_carlo_power_sharded(mod, 5, opts);
  ASSERT_TRUE(ref->converged);
  ASSERT_LT(ref->pairs, opts.total_pairs);
  for (int threads : {2, 8}) {
    core::ShardedMcOptions o = opts;
    o.threads = threads;
    auto r = core::monte_carlo_power_sharded(mod, 5, o);
    EXPECT_TRUE(r->converged) << "threads " << threads;
    EXPECT_EQ(ref->pairs, r->pairs) << "threads " << threads;
    EXPECT_EQ(ref->mean_energy, r->mean_energy) << "threads " << threads;
  }
}

TEST(ShardedMonteCarlo, ScalarEngineShardsIdentically) {
  auto mod = netlist::adder_module(8);
  core::ShardedMcOptions opts;
  opts.total_pairs = 1024;
  opts.chunk_pairs = 128;
  opts.epsilon = 0.0;
  opts.sim.engine = sim::EngineKind::Scalar;
  auto ref = core::monte_carlo_power_sharded(mod, 21, opts);
  opts.threads = 4;
  auto r = core::monte_carlo_power_sharded(mod, 21, opts);
  EXPECT_EQ(ref->mean_energy, r->mean_energy);
  EXPECT_EQ(ref->pairs, r->pairs);
  // Scalar and packed shards draw identical per-chunk streams, so the
  // engines agree bit-for-bit too.
  core::ShardedMcOptions popts = opts;
  popts.sim.engine = sim::EngineKind::Packed;
  auto rp = core::monte_carlo_power_sharded(mod, 21, popts);
  EXPECT_EQ(ref->mean_energy, rp->mean_energy);
  EXPECT_EQ(ref->ci_halfwidth, rp->ci_halfwidth);
}

TEST(ShardedMonteCarlo, ResumeMidCampaignBitIdentical) {
  auto mod = netlist::multiplier_module(4);
  core::ShardedMcOptions opts;
  opts.total_pairs = 2048;
  opts.chunk_pairs = 256;
  opts.epsilon = 0.0;
  opts.threads = 2;
  auto full = core::monte_carlo_power_sharded(mod, 33, opts);
  ASSERT_EQ(full->pairs, 2048u);

  // Quota pays for exactly three chunks; the fourth claim trips.
  auto b = exec::Budget::with_step_quota(3 * 256);
  auto part = core::monte_carlo_power_sharded(mod, 33, opts, b);
  EXPECT_EQ(part->pairs, 768u);
  EXPECT_EQ(part->stop_reason,
            core::MonteCarloResult::StopReason::BudgetExhausted);

  for (int threads : {1, 8}) {
    core::ShardedMcOptions o = opts;
    o.threads = threads;
    auto resumed = core::monte_carlo_power_sharded(mod, 33, o, {}, {},
                                                   part->checkpoint);
    EXPECT_EQ(full->pairs, resumed->pairs) << "threads " << threads;
    EXPECT_EQ(full->mean_energy, resumed->mean_energy) << "threads "
                                                       << threads;
    EXPECT_EQ(full->ci_halfwidth, resumed->ci_halfwidth) << "threads "
                                                         << threads;
  }
}

// --- jobs kernel: shard-count identity ------------------------------------

TEST(ShardedMonteCarlo, JobsKernelValueIndependentOfThreadCount) {
  jobs::KernelRequest rq;
  rq.kind = jobs::JobKind::MonteCarlo;
  rq.design = "adder:12";
  rq.seed = jobs::job_seed("shard-identity");
  rq.epsilon = 0.02;
  rq.max_pairs = 20000;
  rq.mc_chunk_pairs = 512;
  rq.mc_threads = 1;
  auto a = jobs::run_kernel(rq, exec::Budget{});
  ASSERT_TRUE(a.ok);
  for (int threads : {2, 4}) {
    rq.mc_threads = threads;
    auto b2 = jobs::run_kernel(rq, exec::Budget{});
    ASSERT_TRUE(b2.ok) << "threads " << threads;
    EXPECT_EQ(a.out.value, b2.out.value) << "threads " << threads;
  }
}

}  // namespace
