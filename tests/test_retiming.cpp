#include <gtest/gtest.h>

#include "core/retiming_power.hpp"
#include "sim/streams.hpp"

namespace {

using namespace hlp;
using namespace hlp::core;

TEST(Retiming, CutZeroRegistersInputs) {
  auto mod = netlist::adder_module(6);
  auto rc = place_registers_at_cut(mod, 0);
  // One register per primary input that feeds logic.
  EXPECT_EQ(rc.registers, 12u);
}

TEST(Retiming, AllCutsAreFunctionallyCorrect) {
  auto mod = netlist::multiplier_module(4);
  stats::Rng rng(3);
  auto in = sim::random_stream(8, 400, 0.5, rng);
  int depth = mod.netlist.depth();
  for (int cut = 0; cut < depth; cut += std::max(1, depth / 5)) {
    auto rc = place_registers_at_cut(mod, cut);
    auto ev = evaluate_retimed(rc, mod, in);
    EXPECT_TRUE(ev.functionally_correct) << "cut " << cut;
    EXPECT_GT(ev.registers, 0u) << "cut " << cut;
  }
}

TEST(Retiming, GlitchPowerAtLeastFunctional) {
  auto mod = netlist::multiplier_module(5);
  stats::Rng rng(5);
  auto in = sim::random_stream(10, 400, 0.5, rng);
  auto rc = place_registers_at_cut(mod, 0);
  auto ev = evaluate_retimed(rc, mod, in);
  EXPECT_GE(ev.power_total, ev.power_functional);
}

TEST(Retiming, SomeCutBeatsInputRegisters) {
  // Multiplier followed by XOR reduction: the reduction amplifies the
  // multiplier's glitches, so registering the product bits beats
  // registers-at-inputs (Fig. 9's effect).
  auto mod = netlist::multiply_reduce_module(5, 4);
  stats::Rng rng(7);
  auto in = sim::random_stream(10, 800, 0.5, rng);
  auto base = evaluate_retimed(place_registers_at_cut(mod, 0), mod, in);
  double best = base.power_total;
  int depth = mod.netlist.depth();
  for (int cut = 1; cut < depth; ++cut) {
    auto ev = evaluate_retimed(place_registers_at_cut(mod, cut), mod, in);
    ASSERT_TRUE(ev.functionally_correct);
    best = std::min(best, ev.power_total);
  }
  EXPECT_LT(best, base.power_total);
}

TEST(Retiming, MonteiroHeuristicPicksGoodCut) {
  auto mod = netlist::multiply_reduce_module(5, 4);
  stats::Rng rng(9);
  auto in = sim::random_stream(10, 800, 0.5, rng);
  int pick = select_cut_monteiro(mod, in);
  auto ev_pick = evaluate_retimed(place_registers_at_cut(mod, pick), mod, in);
  ASSERT_TRUE(ev_pick.functionally_correct);
  // Heuristic pick should be within 30% of the exhaustive best.
  double best = 1e300;
  int depth = mod.netlist.depth();
  for (int cut = 0; cut < depth; ++cut) {
    auto ev = evaluate_retimed(place_registers_at_cut(mod, cut), mod, in);
    best = std::min(best, ev.power_total);
  }
  EXPECT_LT(ev_pick.power_total, best * 1.3);
}

}  // namespace
