#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "stats/descriptive.hpp"
#include "stats/entropy.hpp"
#include "stats/regression.hpp"
#include "stats/rng.hpp"
#include "stats/sampling.hpp"

namespace {

using namespace hlp::stats;

TEST(RunningStats, MatchesClosedForm) {
  RunningStats rs;
  for (double x : {1.0, 2.0, 3.0, 4.0, 5.0}) rs.add(x);
  EXPECT_EQ(rs.count(), 5u);
  EXPECT_DOUBLE_EQ(rs.mean(), 3.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 2.5);
}

TEST(RunningStats, EmptyAndSingle) {
  RunningStats rs;
  EXPECT_EQ(rs.mean(), 0.0);
  EXPECT_EQ(rs.variance(), 0.0);
  rs.add(7.0);
  EXPECT_DOUBLE_EQ(rs.mean(), 7.0);
  EXPECT_EQ(rs.variance(), 0.0);
}

TEST(Descriptive, Correlation) {
  std::vector<double> x{1, 2, 3, 4, 5};
  std::vector<double> y{2, 4, 6, 8, 10};
  EXPECT_NEAR(correlation(x, y), 1.0, 1e-12);
  std::vector<double> z{10, 8, 6, 4, 2};
  EXPECT_NEAR(correlation(x, z), -1.0, 1e-12);
  std::vector<double> c{3, 3, 3, 3, 3};
  EXPECT_EQ(correlation(x, c), 0.0);
}

TEST(Descriptive, MeanAbsRelError) {
  std::vector<double> est{1.1, 2.2};
  std::vector<double> ref{1.0, 2.0};
  EXPECT_NEAR(mean_abs_rel_error(est, ref), 0.1, 1e-12);
}

TEST(Entropy, BinaryEntropyBounds) {
  EXPECT_DOUBLE_EQ(binary_entropy(0.5), 1.0);
  EXPECT_EQ(binary_entropy(0.0), 0.0);
  EXPECT_EQ(binary_entropy(1.0), 0.0);
  EXPECT_GT(binary_entropy(0.3), 0.0);
  EXPECT_LT(binary_entropy(0.3), 1.0);
}

TEST(Entropy, DistributionEntropyUniform) {
  std::vector<double> p{0.25, 0.25, 0.25, 0.25};
  EXPECT_NEAR(distribution_entropy(p), 2.0, 1e-12);
}

TEST(Entropy, StreamStatistics) {
  // Alternating 0b01 / 0b10: both lines have q = 0.5 and toggle each cycle.
  VectorStream s;
  s.width = 2;
  for (int i = 0; i < 100; ++i) s.words.push_back(i % 2 ? 0b01 : 0b10);
  auto q = signal_probabilities(s);
  EXPECT_NEAR(q[0], 0.5, 1e-9);
  EXPECT_NEAR(q[1], 0.5, 1e-9);
  auto e = switching_activities(s);
  EXPECT_NEAR(e[0], 1.0, 1e-9);
  EXPECT_NEAR(e[1], 1.0, 1e-9);
  EXPECT_NEAR(avg_bit_entropy(s), 1.0, 1e-9);
  // Word-level entropy: exactly two equiprobable vectors -> 1 bit.
  EXPECT_NEAR(word_entropy(s), 1.0, 1e-9);
  // The bit-level sum (2.0) upper-bounds the exact word entropy (1.0).
  EXPECT_GE(sum_bit_entropy(s), word_entropy(s));
  EXPECT_NEAR(avg_hamming_per_cycle(s), 2.0, 1e-9);
}

TEST(Entropy, WordEntropyUpperBoundProperty) {
  Rng rng(7);
  for (int rep = 0; rep < 10; ++rep) {
    VectorStream s;
    s.width = 6;
    for (int i = 0; i < 500; ++i) s.words.push_back(rng.uniform_bits(6));
    EXPECT_GE(sum_bit_entropy(s) + 1e-9, word_entropy(s));
  }
}

TEST(Regression, RecoversLinearModel) {
  Rng rng(3);
  Matrix x;
  std::vector<double> y;
  for (int i = 0; i < 200; ++i) {
    double a = rng.uniform_real(-1, 1), b = rng.uniform_real(-1, 1);
    x.push_back({a, b});
    y.push_back(3.0 + 2.0 * a - 5.0 * b + rng.normal(0, 0.01));
  }
  auto fit = ols(x, y);
  ASSERT_TRUE(fit.ok);
  EXPECT_NEAR(fit.intercept, 3.0, 0.05);
  EXPECT_NEAR(fit.beta[0], 2.0, 0.05);
  EXPECT_NEAR(fit.beta[1], -5.0, 0.05);
  EXPECT_GT(fit.r2, 0.99);
}

TEST(Regression, HandlesCollinearColumns) {
  Matrix x;
  std::vector<double> y;
  for (int i = 0; i < 50; ++i) {
    double a = i;
    x.push_back({a, 2 * a});  // perfectly collinear
    y.push_back(a);
  }
  auto fit = ols(x, y);
  ASSERT_TRUE(fit.ok);  // ridge fallback
  // Predictions still accurate even if coefficients are not unique.
  double row[2] = {10.0, 20.0};
  EXPECT_NEAR(fit.predict(row), 10.0, 0.1);
}

TEST(Regression, NonFiniteInputsRefuseInsteadOfNaN) {
  Matrix x;
  std::vector<double> y;
  for (int i = 0; i < 20; ++i) {
    x.push_back({double(i), double(i * i)});
    y.push_back(2.0 * i);
  }
  x[7][1] = std::numeric_limits<double>::quiet_NaN();
  auto fit = ols(x, y);
  EXPECT_FALSE(fit.ok);  // used to return NaN coefficients with ok == true

  x[7][1] = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(ols(x, y).ok);

  x[7][1] = 49.0;
  y[3] = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(ols(x, y).ok);
}

TEST(Regression, CollinearFitIsFlaggedRankDeficientWithCondition) {
  Matrix x;
  std::vector<double> y;
  for (int i = 0; i < 50; ++i) {
    double a = i;
    x.push_back({a, 2 * a});
    y.push_back(a);
  }
  auto fit = ols(x, y);
  ASSERT_TRUE(fit.ok);            // ridge fallback still predicts
  EXPECT_TRUE(fit.rank_deficient);
  EXPECT_GT(fit.condition, 0.0);

  // Full-rank data: flag stays clear and the condition is moderate.
  Matrix good;
  std::vector<double> gy;
  Rng rng(17);
  for (int i = 0; i < 50; ++i) {
    double a = rng.uniform_real(-1, 1), b = rng.uniform_real(-1, 1);
    good.push_back({a, b});
    gy.push_back(1.0 + a - b);
  }
  auto gfit = ols(good, gy);
  ASSERT_TRUE(gfit.ok);
  EXPECT_FALSE(gfit.rank_deficient);
}

TEST(Regression, StrictVariantsThrowTyped) {
  Matrix x;
  std::vector<double> y;
  for (int i = 0; i < 50; ++i) {
    double a = i;
    x.push_back({a, 2 * a});  // rank-deficient by construction
    y.push_back(a);
  }
  EXPECT_THROW(ols_strict(x, y), RankDeficientError);
  EXPECT_THROW(ols_inference(x, y), RankDeficientError);

  // Healthy system: strict succeeds and inference hands back a symmetric
  // positive-diagonal (X'X)^-1 of the right shape.
  Matrix good;
  std::vector<double> gy;
  Rng rng(23);
  for (int i = 0; i < 60; ++i) {
    double a = rng.uniform_real(-1, 1), b = rng.uniform_real(-1, 1);
    good.push_back({a, b});
    gy.push_back(0.5 + 2.0 * a - b + rng.normal(0, 0.01));
  }
  auto inf = ols_inference(good, gy);
  EXPECT_TRUE(inf.fit.ok);
  ASSERT_EQ(inf.p, 3u);
  ASSERT_EQ(inf.xtx_inv.size(), 9u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_GT(inf.xtx_inv[i * 3 + i], 0.0);
    for (std::size_t j = 0; j < i; ++j)
      EXPECT_NEAR(inf.xtx_inv[i * 3 + j], inf.xtx_inv[j * 3 + i], 1e-9);
  }
}

TEST(Regression, ForwardSelectFindsTrueVariables) {
  Rng rng(11);
  Matrix x;
  std::vector<double> y;
  for (int i = 0; i < 300; ++i) {
    std::vector<double> row;
    for (int j = 0; j < 10; ++j) row.push_back(rng.uniform_real(-1, 1));
    x.push_back(row);
    // Only columns 2 and 7 matter.
    y.push_back(4.0 * x.back()[2] - 3.0 * x.back()[7] +
                rng.normal(0, 0.05));
  }
  auto res = forward_select(x, y, 4.0, 8);
  ASSERT_GE(res.selected.size(), 2u);
  EXPECT_TRUE(std::find(res.selected.begin(), res.selected.end(), 2u) !=
              res.selected.end());
  EXPECT_TRUE(std::find(res.selected.begin(), res.selected.end(), 7u) !=
              res.selected.end());
  // Should not pick many noise variables.
  EXPECT_LE(res.selected.size(), 4u);
}

TEST(Sampling, SimpleRandomSampleProperties) {
  Rng rng(5);
  auto s = simple_random_sample(100, 30, rng);
  EXPECT_EQ(s.size(), 30u);
  for (std::size_t i = 1; i < s.size(); ++i) EXPECT_LT(s[i - 1], s[i]);
  for (auto v : s) EXPECT_LT(v, 100u);
  auto all = simple_random_sample(10, 20, rng);
  EXPECT_EQ(all.size(), 10u);
}

TEST(Sampling, StratifiedCoversStrata) {
  Rng rng(5);
  auto s = stratified_sample(100, 10, 2, rng);
  EXPECT_EQ(s.size(), 20u);
  // Two samples per decade.
  for (int d = 0; d < 10; ++d) {
    int cnt = 0;
    for (auto v : s)
      if (v >= static_cast<std::size_t>(d * 10) &&
          v < static_cast<std::size_t>((d + 1) * 10))
        ++cnt;
    EXPECT_EQ(cnt, 2);
  }
}

TEST(Sampling, RatioEstimatorCorrectsScale) {
  // Y = 2X exactly; a sample of any size recovers mean(Y) = 2 * mean(X).
  std::vector<double> xs{1, 2, 3}, ys{2, 4, 6};
  EXPECT_NEAR(ratio_estimate_mean(xs, ys, 10.0), 20.0, 1e-12);
}

TEST(Sampling, RegressionEstimatorHandlesOffset) {
  // Y = 3 + 2X.
  std::vector<double> xs{1, 2, 3, 4}, ys{5, 7, 9, 11};
  EXPECT_NEAR(regression_estimate_mean(xs, ys, 10.0), 23.0, 1e-9);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i)
    EXPECT_EQ(a.uniform_int(0, 1 << 30), b.uniform_int(0, 1 << 30));
}

TEST(Rng, ParetoIsHeavyTailed) {
  Rng rng(9);
  double max_v = 0.0;
  for (int i = 0; i < 20000; ++i) max_v = std::max(max_v, rng.pareto(1.0, 1.5));
  EXPECT_GT(max_v, 50.0);  // heavy tail produces large outliers
}

class BernoulliProb : public ::testing::TestWithParam<double> {};

TEST_P(BernoulliProb, EmpiricalFrequencyMatches) {
  double p = GetParam();
  Rng rng(1234);
  int ones = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) ones += rng.bit(p) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(ones) / n, p, 0.02);
}

INSTANTIATE_TEST_SUITE_P(SweepP, BernoulliProb,
                         ::testing::Values(0.0, 0.1, 0.3, 0.5, 0.7, 0.9,
                                           1.0));

}  // namespace
