#include <gtest/gtest.h>

#include "cdfg/generators.hpp"
#include "core/multivoltage.hpp"

namespace {

using namespace hlp;
using namespace hlp::core;

VoltageLibrary make_lib() {
  VoltageLibrary lib;
  lib.voltages = {5.0, 3.3, 2.4};
  return lib;
}

TEST(VoltageLibrary, LowerVoltageSlowerCheaper) {
  auto lib = make_lib();
  auto opts = lib.options(cdfg::OpKind::Mul, 8);
  ASSERT_EQ(opts.size(), 3u);
  EXPECT_LT(opts[1].energy, opts[0].energy);
  EXPECT_LT(opts[2].energy, opts[1].energy);
  EXPECT_GE(opts[1].delay, opts[0].delay);
  EXPECT_GE(opts[2].delay, opts[1].delay);
}

TEST(MultiVoltage, MatchesSingleVoltageAtCriticalLatency) {
  auto g = cdfg::random_expr_tree(8, 0.5, 3);
  auto lib = make_lib();
  auto base = single_voltage_baseline(g, lib);
  auto mv = schedule_multivoltage(g, lib, base.latency);
  ASSERT_TRUE(mv.feasible);
  // With zero slack not much can be slowed down, but energy never exceeds
  // the single-voltage baseline.
  EXPECT_LE(mv.energy, base.energy + 1e-9);
}

TEST(MultiVoltage, SlackEnablesSavings) {
  auto g = cdfg::random_expr_tree(16, 0.4, 5);
  auto lib = make_lib();
  auto base = single_voltage_baseline(g, lib);
  auto tight = schedule_multivoltage(g, lib, base.latency);
  auto loose = schedule_multivoltage(g, lib, base.latency * 3);
  ASSERT_TRUE(tight.feasible);
  ASSERT_TRUE(loose.feasible);
  EXPECT_LT(loose.energy, base.energy);
  EXPECT_LE(loose.energy, tight.energy + 1e-9);
  EXPECT_LE(loose.latency, base.latency * 3);
}

TEST(MultiVoltage, InfeasibleBelowCriticalPath) {
  auto g = cdfg::random_expr_tree(8, 0.5, 7);
  auto lib = make_lib();
  auto base = single_voltage_baseline(g, lib);
  auto mv = schedule_multivoltage(g, lib, base.latency - 1);
  EXPECT_FALSE(mv.feasible);
}

TEST(MultiVoltage, MonotoneInLatency) {
  auto g = cdfg::random_expr_tree(12, 0.5, 9);
  auto lib = make_lib();
  auto base = single_voltage_baseline(g, lib);
  double prev = 1e300;
  for (int slack = 0; slack <= 12; slack += 2) {
    auto mv = schedule_multivoltage(g, lib, base.latency + slack);
    ASSERT_TRUE(mv.feasible);
    EXPECT_LE(mv.energy, prev + 1e-9);
    prev = mv.energy;
  }
}

TEST(MultiVoltage, AssignsVoltagesToAllComputeOps) {
  auto g = cdfg::random_expr_tree(10, 0.5, 11);
  auto lib = make_lib();
  auto base = single_voltage_baseline(g, lib);
  auto mv = schedule_multivoltage(g, lib, base.latency + 6);
  ASSERT_TRUE(mv.feasible);
  for (cdfg::OpId id = 0; id < g.size(); ++id) {
    if (cdfg::Cdfg::is_compute(g.op(id).kind)) {
      EXPECT_GE(mv.voltage_index[id], 0) << "op " << id;
    }
  }
}

TEST(MultiVoltage, ShifterCostDiscouragesMixing) {
  auto g = cdfg::random_expr_tree(12, 0.5, 13);
  auto cheap = make_lib();
  cheap.shifter_energy = 0.0;
  auto costly = make_lib();
  costly.shifter_energy = 100.0;
  auto base = single_voltage_baseline(g, cheap);
  auto mv_cheap = schedule_multivoltage(g, cheap, base.latency * 2);
  auto mv_costly = schedule_multivoltage(g, costly, base.latency * 2);
  ASSERT_TRUE(mv_cheap.feasible);
  ASSERT_TRUE(mv_costly.feasible);
  EXPECT_GE(mv_cheap.level_shifters, mv_costly.level_shifters);
}

}  // namespace
