#include <gtest/gtest.h>

#include <cmath>

#include "core/software_power.hpp"

namespace {

using namespace hlp;
using namespace hlp::core;
using isa::Opcode;

TEST(TiwariModel, EnergyDecomposes) {
  auto model = InstructionEnergyModel::typical();
  isa::Machine m;
  auto st = m.run(isa::random_arith(50, 20, 0.3, 3), 100000);
  double e = model.energy(st);
  EXPECT_GT(e, 0.0);
  // Base component alone is a lower bound.
  double base_only = 0.0;
  for (int i = 0; i < isa::kNumOpcodes; ++i)
    base_only += model.base[static_cast<std::size_t>(i)] *
                 static_cast<double>(st.per_opcode[static_cast<std::size_t>(i)]);
  EXPECT_GT(e, base_only);
}

TEST(TiwariModel, MulHeavyCodeCostsMore) {
  auto model = InstructionEnergyModel::typical();
  isa::Machine m1, m2;
  auto st_mul = m1.run(isa::random_arith(60, 50, 0.9, 5), 1000000);
  auto st_alu = m2.run(isa::random_arith(60, 50, 0.0, 5), 1000000);
  EXPECT_GT(model.epi(st_mul), model.epi(st_alu));
}

TEST(TiwariModel, CacheMissesAddEnergy) {
  auto model = InstructionEnergyModel::typical();
  isa::MachineConfig cfg;
  cfg.dcache_lines = 8;
  isa::Machine m1(cfg), m2(cfg);
  auto st_rnd = m1.run(isa::random_loads(4096, 2000, 1), 1000000);
  auto st_seq = m2.run(isa::array_sum(1, 2000), 1000000);
  EXPECT_GT(model.epi(st_rnd), model.epi(st_seq));
}

TEST(Profile, MixSumsToOne) {
  isa::Machine m;
  auto st = m.run(isa::dsp_kernel(6, 50), 1000000);
  auto prof = CharacteristicProfile::from(st);
  double sum = 0.0;
  for (double p : prof.mix) sum += p;
  EXPECT_NEAR(sum, 1.0, 1e-9);
  EXPECT_GT(prof.mix[static_cast<std::size_t>(Opcode::Mul)], 0.1);
}

TEST(ProfileSynthesis, MatchesMixAndShortensTrace) {
  isa::MachineConfig cfg;
  isa::Machine m(cfg);
  auto st_orig = m.run(isa::dsp_kernel(8, 2000), 2000000);
  auto prof = CharacteristicProfile::from(st_orig);

  isa::Machine m2(cfg);
  auto prog = synthesize_program(prof, st_orig.instructions / 100, cfg, 3);
  auto st_syn = m2.run(prog, st_orig.instructions / 50);
  ASSERT_GT(st_syn.instructions, 0u);
  EXPECT_LT(st_syn.instructions * 20, st_orig.instructions);

  // Energy-per-instruction of the synthetic program tracks the original.
  auto model = InstructionEnergyModel::typical();
  double err = std::abs(model.epi(st_syn) - model.epi(st_orig)) /
               model.epi(st_orig);
  EXPECT_LT(err, 0.25);

  // Instruction-mix similarity on the big classes.
  auto prof_syn = CharacteristicProfile::from(st_syn);
  for (auto op : {Opcode::Mul, Opcode::Ld, Opcode::Add}) {
    auto i = static_cast<std::size_t>(op);
    EXPECT_NEAR(prof_syn.mix[i], prof.mix[i], 0.12)
        << isa::opcode_name(op);
  }
}

TEST(ColdScheduling, ReducesStaticStateCost) {
  auto model = InstructionEnergyModel::typical();
  // Alternating mul/add with no dependences: cold scheduling should group
  // same-class instructions.
  isa::Program p;
  for (int i = 0; i < 8; ++i) {
    p.code.push_back(isa::make_r(Opcode::Mul, 3 + (i % 2), 5, 6));
    p.code.push_back(isa::make_r(Opcode::Add, 7 + (i % 2), 9, 10));
  }
  p.code.push_back(isa::make_r(Opcode::Halt, 0, 0, 0));
  auto cold = cold_schedule(p, model);
  EXPECT_EQ(cold.code.size(), p.code.size());
  EXPECT_LT(static_state_cost(cold, model), static_state_cost(p, model));
}

TEST(ColdScheduling, PreservesSemantics) {
  // A dependent chain must not be reordered: r3 = r1+r2; r4 = r3*r3; ...
  isa::Program p;
  p.code = {
      isa::make_i(Opcode::Li, 1, 0, 3),
      isa::make_i(Opcode::Li, 2, 0, 4),
      isa::make_r(Opcode::Add, 3, 1, 2),
      isa::make_r(Opcode::Mul, 4, 3, 3),
      isa::make_r(Opcode::Sub, 5, 4, 1),
      isa::make_r(Opcode::Halt, 0, 0, 0),
  };
  auto model = InstructionEnergyModel::typical();
  auto cold = cold_schedule(p, model);
  isa::Machine m1, m2;
  m1.run(p, 100);
  m2.run(cold, 100);
  EXPECT_EQ(m1.reg(5), m2.reg(5));
  EXPECT_EQ(m1.reg(5), 49 - 3);
}

TEST(ColdScheduling, LoopProgramStaysCorrect) {
  auto model = InstructionEnergyModel::typical();
  auto p = isa::fig2_register_temp(20);
  auto cold = cold_schedule(p, model);
  isa::Machine m1, m2;
  for (int i = 0; i < 20; ++i) {
    m1.set_mem(static_cast<std::size_t>(i), i * 2);
    m2.set_mem(static_cast<std::size_t>(i), i * 2);
  }
  m1.run(p, 100000);
  m2.run(cold, 100000);
  for (int i = 0; i < 20; ++i)
    EXPECT_EQ(m1.mem(static_cast<std::size_t>(40 + i)),
              m2.mem(static_cast<std::size_t>(40 + i)));
}

TEST(Fig2Transform, SavesEnergy) {
  auto model = InstructionEnergyModel::typical();
  isa::Machine m1, m2;
  auto st_mem = m1.run(isa::fig2_with_memory_temp(200), 1000000);
  auto st_reg = m2.run(isa::fig2_register_temp(200), 1000000);
  EXPECT_LT(model.energy(st_reg), model.energy(st_mem));
  EXPECT_LT(st_reg.cycles, st_mem.cycles);
}

}  // namespace
