#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/macromodel.hpp"
#include "core/sampling_power.hpp"
#include "netlist/generators.hpp"
#include "sim/packed_simulator.hpp"
#include "sim/simulator.hpp"
#include "sim/streams.hpp"
#include "stats/rng.hpp"

namespace {

using namespace hlp;
using netlist::GateKind;
using netlist::Netlist;

// --- transpose64 ---------------------------------------------------------

TEST(Transpose64, MovesBitAcrossTheDiagonal) {
  std::uint64_t m[64] = {};
  m[3] = std::uint64_t{1} << 17;  // element (row 3, col 17)
  sim::transpose64(m);
  for (int r = 0; r < 64; ++r)
    EXPECT_EQ(m[r], r == 17 ? std::uint64_t{1} << 3 : 0u) << "row " << r;
}

TEST(Transpose64, IsAnInvolutionOnRandomMatrices) {
  stats::Rng rng(99);
  std::uint64_t m[64], orig[64];
  for (int i = 0; i < 64; ++i) m[i] = orig[i] = rng.uniform_bits(64);
  sim::transpose64(m);
  // Spot-check the defining property on a few elements.
  for (int r = 0; r < 64; r += 7)
    for (int c = 0; c < 64; c += 5)
      EXPECT_EQ((m[c] >> r) & 1u, (orig[r] >> c) & 1u);
  sim::transpose64(m);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(m[i], orig[i]);
}

// --- engine resolution ---------------------------------------------------

TEST(ResolveEngine, AutoPicksPackedForCombinational) {
  auto mod = netlist::adder_module(8);
  EXPECT_EQ(sim::resolve_engine(mod.netlist, sim::EngineKind::Auto),
            sim::EngineKind::Packed);
  EXPECT_EQ(sim::resolve_engine(mod.netlist, sim::EngineKind::Scalar),
            sim::EngineKind::Scalar);
}

TEST(ResolveEngine, AutoFallsBackToScalarForSequential) {
  Netlist nl;
  auto q = nl.add_dff();
  auto nq = nl.add_unary(GateKind::Not, q);
  nl.set_dff_input(q, nq);
  nl.mark_output(nq);
  EXPECT_EQ(sim::resolve_engine(nl, sim::EngineKind::Auto),
            sim::EngineKind::Scalar);
  EXPECT_THROW(sim::resolve_engine(nl, sim::EngineKind::Packed),
               std::logic_error);
}

// --- packed vs scalar differential: activities and outputs ---------------

void expect_exact_equivalence(const Netlist& nl, int n_in,
                              std::size_t cycles, std::uint64_t seed) {
  stats::Rng rng(seed);
  auto in = sim::random_stream(n_in, cycles, 0.5, rng);

  stats::VectorStream out_s, out_p;
  auto act_s = sim::simulate_activities(
      nl, in, &out_s, sim::SimOptions{sim::EngineKind::Scalar});
  auto act_p = sim::simulate_activities(
      nl, in, &out_p, sim::SimOptions{sim::EngineKind::Packed});

  ASSERT_EQ(act_s.size(), act_p.size());
  for (std::size_t g = 0; g < act_s.size(); ++g)
    EXPECT_EQ(act_s[g], act_p[g]) << "activity mismatch at gate " << g;
  ASSERT_EQ(out_s.words.size(), out_p.words.size());
  for (std::size_t t = 0; t < out_s.words.size(); ++t)
    EXPECT_EQ(out_s.words[t], out_p.words[t]) << "output mismatch at " << t;

  auto so = sim::simulate_outputs(nl, in,
                                  sim::SimOptions{sim::EngineKind::Scalar});
  auto po = sim::simulate_outputs(nl, in,
                                  sim::SimOptions{sim::EngineKind::Packed});
  EXPECT_EQ(so.words, po.words);
}

TEST(PackedDifferential, RandomDags) {
  for (std::uint64_t seed : {1u, 7u, 42u}) {
    auto mod = netlist::random_logic_module(16, 120, 8, seed);
    // 130 cycles spans two full blocks plus a partial third.
    expect_exact_equivalence(mod.netlist, mod.total_input_bits(), 130,
                             seed + 100);
  }
}

TEST(PackedDifferential, Adders) {
  for (int n : {4, 8, 16}) {
    auto mod = netlist::adder_module(n);
    expect_exact_equivalence(mod.netlist, mod.total_input_bits(), 200, 3);
  }
}

TEST(PackedDifferential, Multipliers) {
  for (int n : {4, 6}) {
    auto mod = netlist::multiplier_module(n);
    expect_exact_equivalence(mod.netlist, mod.total_input_bits(), 150, 5);
  }
}

TEST(PackedDifferential, AluParityComparatorMuxTree) {
  auto alu = netlist::alu_module(6);
  expect_exact_equivalence(alu.netlist, alu.total_input_bits(), 100, 11);
  auto par = netlist::parity_module(12);
  expect_exact_equivalence(par.netlist, par.total_input_bits(), 100, 12);
  auto cmp = netlist::comparator_module(10);
  expect_exact_equivalence(cmp.netlist, cmp.total_input_bits(), 100, 13);
  auto mux = netlist::mux_tree_module(3);
  expect_exact_equivalence(mux.netlist, mux.total_input_bits(), 100, 14);
}

TEST(PackedDifferential, ShortAndPartialStreams) {
  auto mod = netlist::adder_module(8);
  // Degenerate lengths: empty, one cycle, exactly one block, one over.
  for (std::size_t cycles : {std::size_t{0}, std::size_t{1}, std::size_t{2},
                             std::size_t{63}, std::size_t{64},
                             std::size_t{65}}) {
    expect_exact_equivalence(mod.netlist, mod.total_input_bits(), cycles, 21);
  }
}

// --- sequential circuits: replica lanes ----------------------------------

TEST(PackedReplicaLanes, SequentialFsmMatches64ScalarRuns) {
  // Serial-in parity accumulator: q' = q xor in; y = q or in.
  Netlist nl;
  auto in = nl.add_input("in");
  auto q = nl.add_dff();
  auto x = nl.add_binary(GateKind::Xor, q, in);
  nl.set_dff_input(q, x);
  auto y = nl.add_binary(GateKind::Or, q, in);
  nl.mark_output(y);

  // 64 independent input streams, one per lane.
  const std::size_t cycles = 40;
  stats::Rng rng(77);
  std::vector<std::uint64_t> lane_words(cycles);
  for (auto& w : lane_words) w = rng.uniform_bits(64);

  sim::PackedSimulator ps(nl);
  sim::PackedActivityCollector pcol(nl);
  std::vector<std::uint64_t> packed_y(cycles);
  for (std::size_t c = 0; c < cycles; ++c) {
    ps.set_input_lanes(in, lane_words[c]);
    ps.eval();
    pcol.record(ps);
    packed_y[c] = ps.lanes(y);
    ps.tick();
  }

  // Reference: 64 scalar replicas.
  std::uint64_t total_toggles = 0;
  std::vector<std::uint64_t> toggles_packed(nl.gate_count(), 0);
  for (int lane = 0; lane < 64; ++lane) {
    sim::Simulator s(nl);
    sim::ActivityCollector col(nl);
    for (std::size_t c = 0; c < cycles; ++c) {
      s.set_input(in, (lane_words[c] >> lane) & 1u);
      s.eval();
      col.record(s);
      EXPECT_EQ(static_cast<std::uint64_t>(s.value(y)),
                (packed_y[c] >> lane) & 1u)
          << "lane " << lane << " cycle " << c;
      s.tick();
    }
    auto acts = col.activities();
    for (double a : acts)
      total_toggles +=
          static_cast<std::uint64_t>(a * static_cast<double>(cycles - 1) + 0.5);
  }
  // Packed activities average over all 64 replica lanes.
  double packed_sum = 0.0;
  for (double a : pcol.activities())
    packed_sum += a * static_cast<double>(cycles - 1) * 64.0;
  EXPECT_NEAR(packed_sum, static_cast<double>(total_toggles), 1e-6);
}

// --- Monte Carlo power: packed == scalar, bit for bit --------------------

TEST(PackedMonteCarlo, BitIdenticalToScalar) {
  for (std::uint64_t seed : {2u, 9u}) {
    auto mod = netlist::multiplier_module(4);
    const int n_in = mod.total_input_bits();
    stats::Rng rng_s(seed), rng_p(seed);
    auto gen_s = [&] { return rng_s.uniform_bits(n_in); };
    auto gen_p = [&] { return rng_p.uniform_bits(n_in); };
    auto rs = core::monte_carlo_power(
        mod, gen_s, 0.05, 0.95, 30, 4000, {},
        sim::SimOptions{sim::EngineKind::Scalar});
    auto rp = core::monte_carlo_power(
        mod, gen_p, 0.05, 0.95, 30, 4000, {},
        sim::SimOptions{sim::EngineKind::Packed});
    EXPECT_EQ(rs.mean_energy, rp.mean_energy);
    EXPECT_EQ(rs.pairs, rp.pairs);
    EXPECT_EQ(rs.ci_halfwidth, rp.ci_halfwidth);
    EXPECT_EQ(rs.converged, rp.converged);
  }
}

TEST(PackedMonteCarlo, ExhaustsMaxPairsIdentically) {
  auto mod = netlist::adder_module(6);
  const int n_in = mod.total_input_bits();
  stats::Rng rng_s(4), rng_p(4);
  auto gen_s = [&] { return rng_s.uniform_bits(n_in); };
  auto gen_p = [&] { return rng_p.uniform_bits(n_in); };
  // Impossible epsilon: both paths must run to max_pairs (not a multiple
  // of 64, so the last packed block is partial).
  auto rs = core::monte_carlo_power(
      mod, gen_s, 1e-9, 0.95, 30, 100, {},
      sim::SimOptions{sim::EngineKind::Scalar});
  auto rp = core::monte_carlo_power(
      mod, gen_p, 1e-9, 0.95, 30, 100, {},
      sim::SimOptions{sim::EngineKind::Packed});
  EXPECT_FALSE(rp.converged);
  EXPECT_EQ(rs.pairs, rp.pairs);
  EXPECT_EQ(rs.mean_energy, rp.mean_energy);
  EXPECT_EQ(rs.ci_halfwidth, rp.ci_halfwidth);
}

// --- macro-model characterization: packed == scalar ----------------------

TEST(PackedCharacterize, BitIdenticalToScalar) {
  auto mod = netlist::multiplier_module(4);
  stats::Rng rng(31);
  auto in = sim::random_stream(mod.total_input_bits(), 300, 0.5, rng);
  auto cs =
      core::characterize(mod, in, {}, sim::SimOptions{sim::EngineKind::Scalar});
  auto cp =
      core::characterize(mod, in, {}, sim::SimOptions{sim::EngineKind::Packed});
  ASSERT_EQ(cs.transitions(), cp.transitions());
  EXPECT_EQ(cs.n_in, cp.n_in);
  EXPECT_EQ(cs.n_out, cp.n_out);
  EXPECT_EQ(cs.total_cap, cp.total_cap);
  for (std::size_t t = 0; t < cs.transitions(); ++t) {
    EXPECT_EQ(cs.energy[t], cp.energy[t]) << "t=" << t;
    EXPECT_EQ(cs.in_activity[t], cp.in_activity[t]);
    EXPECT_EQ(cs.in_prob[t], cp.in_prob[t]);
    EXPECT_EQ(cs.out_activity[t], cp.out_activity[t]);
    EXPECT_EQ(cs.cur_word[t], cp.cur_word[t]);
    EXPECT_EQ(cs.prev_word[t], cp.prev_word[t]);
    EXPECT_EQ(cs.pin_toggle[t], cp.pin_toggle[t]);
  }
}

// --- Rng::fill_packed ----------------------------------------------------

TEST(RngFillPacked, MatchesSequentialUniformBits) {
  stats::Rng a(5), b(5);
  std::vector<std::uint64_t> words(10);
  a.fill_packed(words, 12);
  for (std::uint64_t w : words) EXPECT_EQ(w, b.uniform_bits(12));
}

}  // namespace
