#include <gtest/gtest.h>

#include "core/control_respec.hpp"
#include "core/macromodel.hpp"
#include "sim/streams.hpp"

namespace {

using namespace hlp;
using namespace hlp::core;

TEST(ControlRespec, SavesPowerWhenIdle) {
  auto res = evaluate_control_respec(8, 4, 3000, 0.5, 7);
  EXPECT_GT(res.idle_fraction, 0.4);
  EXPECT_LT(res.power_respec, res.power_default);
  EXPECT_GT(res.saving(), 0.05);
}

TEST(ControlRespec, NoIdleNoDifference) {
  auto res = evaluate_control_respec(8, 4, 2000, 0.0, 9);
  EXPECT_EQ(res.idle_fraction, 0.0);
  EXPECT_NEAR(res.power_respec, res.power_default,
              1e-6 * res.power_default);
}

TEST(ControlRespec, SavingGrowsWithIdleFraction) {
  double prev = -1.0;
  for (double idle : {0.2, 0.5, 0.8}) {
    auto res = evaluate_control_respec(8, 4, 3000, idle, 11);
    EXPECT_GE(res.saving(), prev - 0.03) << "idle " << idle;
    prev = res.saving();
  }
  // Source data keeps walking regardless of the schedule, so only the
  // select-induced reconfiguration is removable; ~10% at 80% idle.
  EXPECT_GT(prev, 0.08);
}

TEST(ClusterModel, PredictsAveragePowerOnTrainingDistribution) {
  auto mod = netlist::adder_module(8);
  stats::Rng rng(3);
  auto chr = characterize(mod, sim::random_stream(16, 4000, 0.5, rng));
  ClusterModel cm(8);
  cm.fit(chr);
  EXPECT_LE(cm.clusters(), 32u);  // "relatively small" cluster count [43]
  std::vector<double> pred;
  for (std::size_t t = 0; t < chr.transitions(); ++t)
    pred.push_back(cm.predict_cycle(chr.prev_word[t], chr.cur_word[t],
                                    chr.n_in));
  auto err = evaluate_predictions(pred, chr.energy);
  EXPECT_LT(err.avg_power_error, 0.02);
  EXPECT_LT(err.cycle_mean_abs_error, 0.6);
}

TEST(ClusterModel, WeakerThanTableOnModeChangingCircuit) {
  // The paper's criticism of [43]: Hamming-close patterns can behave very
  // differently when a "mode-changing bit" flips. A mux tree's select
  // lines are exactly such bits (one-bit input changes swing the output
  // arbitrarily), and the cluster hash cannot see them; the 3D-table model
  // observes the output activity and wins on per-cycle error.
  auto mod = netlist::mux_tree_module(3);
  stats::Rng rng(7);
  auto chr = characterize(mod,
                          sim::random_stream(mod.total_input_bits(), 6000,
                                             0.5, rng));
  ClusterModel cm(8);
  cm.fit(chr);
  Table3dModel tbl(5);
  tbl.fit(chr);
  std::vector<double> pc, pt;
  for (std::size_t t = 0; t < chr.transitions(); ++t) {
    pc.push_back(cm.predict_cycle(chr.prev_word[t], chr.cur_word[t],
                                  chr.n_in));
    pt.push_back(tbl.predict_cycle(chr.in_prob[t], chr.in_activity[t],
                                   chr.out_activity[t]));
  }
  auto ec = evaluate_predictions(pc, chr.energy);
  auto et = evaluate_predictions(pt, chr.energy);
  EXPECT_GT(ec.cycle_mean_abs_error, et.cycle_mean_abs_error);
}

TEST(DualBitIoModel, ImprovesOnPlainDualBitForDeepLogic) {
  // "Accuracy may be improved (especially for components with deep logic
  // nesting, such as multipliers) by macro-modeling with respect to both
  // the average input and output activities."
  auto mod = netlist::multiplier_module(4);
  stats::Rng rng(9);
  auto a = sim::gaussian_walk_stream(4, 5000, 0.95, 0.3, rng);
  auto b = sim::gaussian_walk_stream(4, 5000, 0.95, 0.3, rng);
  auto chr = characterize(mod, sim::zip_streams(a, b));
  int widths[2] = {4, 4};
  DualBitModel db;
  db.fit(chr, widths);
  DualBitIoModel dbio;
  dbio.fit(chr, widths);
  std::vector<double> pd, pdo;
  for (std::size_t t = 0; t < chr.transitions(); ++t) {
    pd.push_back(db.predict_cycle(chr.prev_word[t], chr.cur_word[t]));
    pdo.push_back(dbio.predict_cycle(chr, t));
  }
  auto ed = evaluate_predictions(pd, chr.energy);
  auto edo = evaluate_predictions(pdo, chr.energy);
  EXPECT_LE(edo.cycle_rms_error, ed.cycle_rms_error + 1e-9);
}

}  // namespace
