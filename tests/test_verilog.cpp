#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "netlist/generators.hpp"
#include "netlist/verilog.hpp"
#include "sim/simulator.hpp"
#include "stats/rng.hpp"

namespace {

using namespace hlp::netlist;
using hlp::sim::Simulator;

std::string read_fixture(const std::string& name) {
  std::ifstream in(std::string(HLP_FIXTURE_DIR) + "/" + name);
  EXPECT_TRUE(in.good()) << "missing fixture " << name;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Drives both netlists with the same random input bits for `cycles` and
/// compares every primary output each cycle.
void expect_equivalent(const Netlist& a, const Netlist& b, int cycles,
                       std::uint64_t seed) {
  ASSERT_EQ(a.inputs().size(), b.inputs().size());
  ASSERT_EQ(a.outputs().size(), b.outputs().size());
  Simulator sa(a);
  Simulator sb(b);
  hlp::stats::Rng rng(seed);
  for (int c = 0; c < cycles; ++c) {
    for (std::size_t i = 0; i < a.inputs().size(); ++i) {
      bool v = rng.bit();
      sa.set_input(a.inputs()[i], v);
      sb.set_input(b.inputs()[i], v);
    }
    sa.eval();
    sb.eval();
    for (std::size_t o = 0; o < a.outputs().size(); ++o)
      ASSERT_EQ(sa.value(a.outputs()[o]), sb.value(b.outputs()[o]))
          << "cycle " << c << " output " << o;
    sa.tick();
    sb.tick();
  }
}

TEST(Verilog, RoundTripCombinationalGenerators) {
  Module mods[] = {adder_module(4), alu_module(3), c17_module(),
                   mux_tree_module(2), parity_module(5),
                   comparator_module(3)};
  for (const Module& m : mods) {
    SCOPED_TRACE(m.name);
    std::string src = to_verilog(m.netlist, m.name);
    ParsedModule pm = parse_verilog(src);
    EXPECT_EQ(pm.name, m.name);
    EXPECT_TRUE(pm.clock.empty());
    expect_equivalent(m.netlist, pm.netlist, 64, 7);
  }
}

TEST(Verilog, RoundTripSequential) {
  // 3-bit enabled counter built from DFFs + XOR/AND chain.
  Netlist nl;
  GateId en = nl.add_input("en");
  GateId carry = en;
  std::vector<GateId> qs;
  for (int k = 0; k < 3; ++k) {
    GateId q = nl.add_dff();
    nl.set_dff_input(q, nl.add_binary(GateKind::Xor, q, carry));
    carry = nl.add_binary(GateKind::And, q, carry);
    nl.mark_output(q);
    qs.push_back(q);
  }
  std::string src = to_verilog(nl, "ctr3");
  ParsedModule pm = parse_verilog(src);
  EXPECT_EQ(pm.clock, "clk");
  EXPECT_EQ(pm.netlist.dffs().size(), 3u);
  expect_equivalent(nl, pm.netlist, 100, 11);
}

TEST(Verilog, RoundTripOfParsedTextIsStable) {
  Module m = adder_module(3);
  std::string once = to_verilog(m.netlist, "a3");
  ParsedModule pm = parse_verilog(once);
  // Net ids may be renumbered, but a second round trip must be a fixpoint.
  std::string twice = to_verilog(pm.netlist, "a3");
  ParsedModule pm2 = parse_verilog(twice);
  EXPECT_EQ(to_verilog(pm2.netlist, "a3"), twice);
  expect_equivalent(m.netlist, pm2.netlist, 32, 3);
}

TEST(Verilog, FixtureCounterParsesAndCounts) {
  ParsedModule pm = parse_verilog(read_fixture("counter2.v"));
  EXPECT_EQ(pm.name, "counter2");
  EXPECT_EQ(pm.clock, "clk");
  ASSERT_EQ(pm.netlist.inputs().size(), 1u);
  ASSERT_EQ(pm.netlist.outputs().size(), 2u);
  Simulator s(pm.netlist);
  s.set_input(pm.netlist.inputs()[0], true);  // enable
  for (int expect = 0; expect < 8; ++expect) {
    s.eval();
    int got = (s.value(pm.netlist.outputs()[0]) ? 1 : 0) |
              (s.value(pm.netlist.outputs()[1]) ? 2 : 0);
    EXPECT_EQ(got, expect % 4) << "cycle " << expect;
    s.tick();
  }
}

void expect_error(const std::string& fixture, int line,
                  const std::string& needle) {
  try {
    parse_verilog(read_fixture(fixture));
    FAIL() << fixture << ": expected VerilogError";
  } catch (const VerilogError& e) {
    if (line > 0) {
      EXPECT_EQ(e.line(), line) << fixture << ": " << e.what();
    }
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << fixture << ": " << e.what();
  }
}

TEST(Verilog, ErrorUndeclaredNet) {
  expect_error("undeclared_net.v", 5, "undeclared net 'ghost'");
}

TEST(Verilog, ErrorDuplicateModule) {
  expect_error("duplicate_module.v", 8, "duplicate module");
}

TEST(Verilog, ErrorTruncatedFile) {
  expect_error("truncated.v", 0, "end of file");
}

TEST(Verilog, ErrorMultipleDrivers) {
  expect_error("duplicate_driver.v", 11, "multiple drivers");
}

TEST(Verilog, ErrorDuplicateDeclaration) {
  expect_error("duplicate_decl.v", 5, "duplicate declaration of 'a'");
}

TEST(Verilog, ErrorCombinationalCycle) {
  expect_error("comb_cycle.v", 0, "combinational cycle");
}

TEST(Verilog, ErrorInlineCases) {
  // Driving an input port.
  EXPECT_THROW(parse_verilog("module m(pi0);\n  input pi0;\n"
                             "  assign pi0 = 1'b0;\nendmodule\n"),
               VerilogError);
  // Assign to a reg.
  EXPECT_THROW(
      parse_verilog("module m(pi0, po0);\n  input pi0;\n  output po0;\n"
                    "  reg r;\n  assign r = pi0;\n  assign po0 = r;\n"
                    "endmodule\n"),
      VerilogError);
  // Mixed operators in one expression.
  EXPECT_THROW(
      parse_verilog("module m(pi0, pi1, po0);\n  input pi0;\n  input pi1;\n"
                    "  output po0;\n  wire a;\n  wire b;\n  wire x;\n"
                    "  assign a = pi0;\n  assign b = pi1;\n"
                    "  assign x = a & b | a;\n  assign po0 = x;\n"
                    "endmodule\n"),
      VerilogError);
  // Unsupported literal width.
  EXPECT_THROW(
      parse_verilog("module m(po0);\n  output po0;\n  wire a;\n"
                    "  assign a = 2'b10;\n  assign po0 = a;\nendmodule\n"),
      VerilogError);
  // Port never declared.
  EXPECT_THROW(parse_verilog("module m(mystery);\nendmodule\n"),
               VerilogError);
  // Undriven wire.
  EXPECT_THROW(
      parse_verilog("module m(pi0, po0);\n  input pi0;\n  output po0;\n"
                    "  wire a;\n  wire hang;\n  assign a = pi0;\n"
                    "  assign po0 = a;\nendmodule\n"),
      VerilogError);
  // Empty file.
  EXPECT_THROW(parse_verilog(""), VerilogError);
}

}  // namespace
