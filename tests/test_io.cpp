#include <gtest/gtest.h>

#include "fsm/benchmarks.hpp"
#include "fsm/kiss.hpp"
#include "fsm/markov.hpp"
#include "netlist/generators.hpp"
#include "netlist/verilog.hpp"
#include "stats/rng.hpp"

namespace {

using namespace hlp;
using namespace hlp::fsm;

constexpr const char* kExampleKiss = R"(
# simple handshake controller
.i 2
.o 1
.s 3
.p 6
.r idle
0- idle idle 0
1- idle req  0
-1 req  ack  1
-0 req  req  1
-- ack  idle 0
.e
)";

TEST(Kiss, ParsesExampleMachine) {
  auto stg = parse_kiss2(kExampleKiss);
  EXPECT_EQ(stg.n_inputs(), 2);
  EXPECT_EQ(stg.n_outputs(), 1);
  EXPECT_EQ(stg.num_states(), 3u);
  EXPECT_EQ(stg.state_name(0), "idle");
  // 0- idle idle: symbols 00 (0) and 10 (2) stay in idle.
  EXPECT_EQ(stg.next(0, 0b00), 0u);
  EXPECT_EQ(stg.next(0, 0b10), 0u);
  // 1- idle req: symbols 01 and 11 (bit0 = first char).
  EXPECT_EQ(stg.next(0, 0b01), 1u);
  EXPECT_EQ(stg.next(0, 0b11), 1u);
  // -1 req ack with output 1.
  EXPECT_EQ(stg.next(1, 0b10), 2u);
  EXPECT_EQ(stg.output(1, 0b10), 1u);
  // -- ack idle.
  for (std::uint64_t a = 0; a < 4; ++a) EXPECT_EQ(stg.next(2, a), 0u);
}

TEST(Kiss, RoundTripPreservesBehavior) {
  auto stg = protocol_fsm(4);
  auto text = to_kiss2(stg);
  auto back = parse_kiss2(text);
  ASSERT_EQ(back.num_states(), stg.num_states());
  stats::Rng rng(3);
  StateId s1 = 0, s2 = 0;
  for (int c = 0; c < 2000; ++c) {
    std::uint64_t a = rng.uniform_bits(stg.n_inputs());
    EXPECT_EQ(stg.output(s1, a), back.output(s2, a));
    s1 = stg.next(s1, a);
    s2 = back.next(s2, a);
  }
}

TEST(Kiss, RejectsMalformedInput) {
  EXPECT_THROW(parse_kiss2("01 a b"), std::invalid_argument);
  EXPECT_THROW(parse_kiss2(".i 1\n.o 1\n0 a b"), std::invalid_argument);
  EXPECT_THROW(parse_kiss2(".i 1\n.o 1\n2 a b 0\n"), std::invalid_argument);
}

TEST(Kiss, UnspecifiedPairsCompleteAsSelfLoops) {
  auto stg = parse_kiss2(".i 1\n.o 1\n0 a b 1\n0 b a 0\n.e\n");
  // Symbol 1 unspecified: self-loops with zero output.
  EXPECT_EQ(stg.next(0, 1), 0u);
  EXPECT_EQ(stg.output(0, 1), 0u);
}

TEST(Verilog, EmitsStructureForCombinational) {
  auto mod = netlist::c17_module();
  auto v = netlist::to_verilog(mod.netlist, "c17");
  EXPECT_NE(v.find("module c17("), std::string::npos);
  EXPECT_NE(v.find("~("), std::string::npos);  // NAND bodies
  EXPECT_NE(v.find("assign po0"), std::string::npos);
  EXPECT_NE(v.find("assign po1"), std::string::npos);
  EXPECT_EQ(v.find("always"), std::string::npos);  // no state
  EXPECT_EQ(v.find("clk"), std::string::npos);
}

TEST(Verilog, EmitsClockedBlockForSequential) {
  netlist::Netlist nl;
  auto q = nl.add_dff();
  auto nq = nl.add_unary(netlist::GateKind::Not, q);
  nl.set_dff_input(q, nq);
  nl.mark_output(q);
  auto v = netlist::to_verilog(nl, "toggle");
  EXPECT_NE(v.find("input clk;"), std::string::npos);
  EXPECT_NE(v.find("always @(posedge clk)"), std::string::npos);
  EXPECT_NE(v.find("<="), std::string::npos);
  EXPECT_NE(v.find("reg n0;"), std::string::npos);
}

TEST(Verilog, MuxAsTernary) {
  netlist::Netlist nl;
  auto s = nl.add_input();
  auto a = nl.add_input();
  auto b = nl.add_input();
  auto m = nl.add_mux(s, a, b);
  nl.mark_output(m);
  auto v = netlist::to_verilog(nl, "m");
  EXPECT_NE(v.find("n0 ? n2 : n1"), std::string::npos);
}

TEST(Benchmarks, AllControllersParseAndAreLive) {
  for (auto& [name, stg] : controller_benchmarks()) {
    EXPECT_GE(stg.num_states(), 4u) << name;
    EXPECT_TRUE(stg.complete()) << name;
    // Every state is reachable from reset and the machine returns to reset.
    std::vector<bool> seen(stg.num_states(), false);
    std::vector<StateId> stack{0};
    seen[0] = true;
    while (!stack.empty()) {
      StateId s = stack.back();
      stack.pop_back();
      for (std::uint64_t a = 0; a < stg.n_symbols(); ++a) {
        StateId t = stg.next(s, a);
        if (!seen[t]) {
          seen[t] = true;
          stack.push_back(t);
        }
      }
    }
    for (std::size_t s = 0; s < stg.num_states(); ++s)
      EXPECT_TRUE(seen[s]) << name << " state " << stg.state_name(
          static_cast<StateId>(s));
  }
}

TEST(Benchmarks, UartReceivesAByte) {
  auto stg = uart_rx_fsm();
  StateId s = 0;
  // Start bit (rx=0, tick), then 8 ticked data bits, then stop bit.
  auto step = [&](std::uint64_t sym) {
    auto out = stg.output(s, sym);
    s = stg.next(s, sym);
    return out;
  };
  step(0b10);  // rx low at tick -> start
  for (int b = 0; b < 8; ++b) step(0b11);  // start -> d0, d0 -> d1, ... d7
  step(0b11);                              // d7 -> stop (still busy)
  auto out = step(0b11);                   // stop -> idle, byte ready
  EXPECT_EQ(out & 2u, 2u);                 // byte-ready strobe
  EXPECT_EQ(s, 0u);                        // back to idle
}

}  // namespace
