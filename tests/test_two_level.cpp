#include <gtest/gtest.h>

#include "core/two_level.hpp"
#include "stats/rng.hpp"

namespace {

using namespace hlp::core;

TEST(Cube, CoversAndSize) {
  Cube c{0b011, 0b001};  // x0=1, x1=0, x2 free
  EXPECT_TRUE(c.covers(0b001));
  EXPECT_TRUE(c.covers(0b101));
  EXPECT_FALSE(c.covers(0b011));
  EXPECT_EQ(c.literals(), 2);
  EXPECT_EQ(c.size(3), 2u);
}

TEST(QuineMcCluskey, XorHasAllMintermPrimes) {
  // XOR of 2 vars: no merging possible; primes = the 2 on-set minterms.
  auto tt = table_from(2, [](std::uint32_t m) {
    return ((m & 1) ^ ((m >> 1) & 1)) != 0;
  });
  auto primes = prime_implicants(tt, 2);
  EXPECT_EQ(primes.size(), 2u);
  for (auto& p : primes) EXPECT_EQ(p.literals(), 2);
}

TEST(QuineMcCluskey, AndFunctionHasSinglePrime) {
  auto tt = table_from(3, [](std::uint32_t m) { return m == 7; });
  auto primes = prime_implicants(tt, 3);
  ASSERT_EQ(primes.size(), 1u);
  EXPECT_EQ(primes[0].literals(), 3);
}

TEST(QuineMcCluskey, TautologyIsOneEmptyCube) {
  auto tt = table_from(3, [](std::uint32_t) { return true; });
  auto primes = prime_implicants(tt, 3);
  ASSERT_EQ(primes.size(), 1u);
  EXPECT_EQ(primes[0].literals(), 0);
}

TEST(QuineMcCluskey, ClassicTextbookExample) {
  // f = sum m(0,1,2,5,6,7) over 3 vars: primes are known to be
  // x0'x1', x0x2' (?) — verify cover correctness instead of exact shapes.
  auto tt = table_from(3, [](std::uint32_t m) {
    return m == 0 || m == 1 || m == 2 || m == 5 || m == 6 || m == 7;
  });
  auto cover = minimize_cover(tt, 3);
  // Cover must exactly cover the on-set.
  for (std::uint32_t m = 0; m < 8; ++m) {
    bool covered = false;
    for (auto& c : cover) covered |= c.covers(m);
    EXPECT_EQ(covered, tt[m] != 0) << "minterm " << m;
  }
}

TEST(QuineMcCluskey, CoverIsCorrectOnRandomFunctions) {
  hlp::stats::Rng rng(42);
  for (int rep = 0; rep < 20; ++rep) {
    int n = 4 + static_cast<int>(rng.uniform_int(0, 2));
    auto bits = rng.uniform_bits(1 << n);
    auto tt = table_from(n, [&](std::uint32_t m) {
      return ((bits >> (m & 63)) & 1) != 0;
    });
    auto cover = minimize_cover(tt, n);
    for (std::uint32_t m = 0; m < tt.size(); ++m) {
      bool covered = false;
      for (auto& c : cover) covered |= c.covers(m);
      EXPECT_EQ(covered, tt[m] != 0);
    }
    // No cube may cover an off-set minterm.
    for (auto& c : cover)
      for (std::uint32_t m = 0; m < tt.size(); ++m)
        if (c.covers(m)) {
          EXPECT_TRUE(tt[m]);
        }
  }
}

TEST(QuineMcCluskey, EssentialsAreSubsetOfPrimes) {
  auto tt = table_from(4, [](std::uint32_t m) { return (m % 3) == 0; });
  auto primes = prime_implicants(tt, 4);
  auto ess = essential_primes(tt, 4, primes);
  for (auto& e : ess)
    EXPECT_TRUE(std::find(primes.begin(), primes.end(), e) != primes.end());
}

TEST(QuineMcCluskey, EmptyFunctionHasEmptyCover) {
  auto tt = table_from(3, [](std::uint32_t) { return false; });
  EXPECT_TRUE(prime_implicants(tt, 3).empty());
  EXPECT_TRUE(minimize_cover(tt, 3).empty());
}

TEST(CoverLiterals, SumsAcrossCubes) {
  std::vector<Cube> cover{{0b11, 0b01}, {0b100, 0b100}};
  EXPECT_EQ(cover_literals(cover), 3);
}

}  // namespace
