module twicedeclared(pi0, po0);
  input pi0;
  output po0;
  wire a;
  wire a;
  assign a = pi0;
  assign po0 = a;
endmodule
