module bad(pi0, po0);
  input pi0;
  output po0;
  wire a;
  assign a = pi0 & ghost;
  assign po0 = a;
endmodule
