module twodrivers(pi0, pi1, po0);
  input pi0;
  input pi1;
  output po0;
  wire a;
  wire b;
  wire x;
  assign a = pi0;
  assign b = pi1;
  assign x = a & b;
  assign x = a | b;
  assign po0 = x;
endmodule
