// 2-bit counter with enable: the good-path fixture for parse_verilog.
module counter2(clk, pi0, po0, po1);
  input clk;
  input pi0;
  output po0;
  output po1;
  reg q0;
  reg q1;
  wire en;
  wire d0;
  wire carry;
  wire d1;
  assign en = pi0;
  assign d0 = q0 ^ en;
  assign carry = q0 & en;
  assign d1 = q1 ^ carry;
  always @(posedge clk) begin
    q0 <= d0;
    q1 <= d1;
  end
  assign po0 = q0;
  assign po1 = q1;
endmodule
