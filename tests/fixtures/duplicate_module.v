module one(pi0, po0);
  input pi0;
  output po0;
  wire a;
  assign a = pi0;
  assign po0 = a;
endmodule
module two(pi0, po0);
  input pi0;
  output po0;
  wire a;
  assign a = pi0;
  assign po0 = a;
endmodule
