module cutoff(pi0, pi1, po0);
  input pi0;
  input pi1;
  output po0;
  wire a;
  wire b;
  assign a = pi0;
  assign b = pi1;
