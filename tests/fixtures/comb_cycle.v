module ring(pi0, po0);
  input pi0;
  output po0;
  wire a;
  wire b;
  wire c;
  assign a = pi0 & c;
  assign b = ~a;
  assign c = ~b;
  assign po0 = c;
endmodule
