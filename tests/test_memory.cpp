#include <gtest/gtest.h>

#include "core/memory_hierarchy.hpp"
#include "core/memory_model.hpp"
#include "isa/programs.hpp"
#include "stats/rng.hpp"

namespace {

using namespace hlp;
using namespace hlp::core;

TEST(MemoryModel, ComponentsArePositiveAndSum) {
  MemoryParams p;
  auto e = memory_access_energy(p);
  EXPECT_GT(e.cells, 0.0);
  EXPECT_GT(e.decoder, 0.0);
  EXPECT_GT(e.wordline, 0.0);
  EXPECT_GT(e.colselect, 0.0);
  EXPECT_GT(e.sense, 0.0);
  EXPECT_NEAR(e.total(),
              e.cells + e.decoder + e.wordline + e.colselect + e.sense,
              1e-9);
}

TEST(MemoryModel, CellTermMatchesPaperFormula) {
  // Power_memcell = 0.5 * V * V_swing * 2^k * (C_int + 2^(n-k) C_tr).
  MemoryParams p;
  p.n = 10;
  p.k = 4;
  sim::PowerParams pp;
  auto e = memory_access_energy(p, pp);
  double expect = 0.5 * pp.vdd * p.v_swing * 16.0 *
                  (p.c_int + 64.0 * p.c_tr);
  EXPECT_NEAR(e.cells, expect, 1e-9);
}

TEST(MemoryModel, LargerMemoriesCostMore) {
  MemoryParams small;
  small.n = 8;
  small.k = optimal_column_split(small);
  MemoryParams big;
  big.n = 14;
  big.k = optimal_column_split(big);
  EXPECT_GT(memory_access_energy(big).total(),
            2.0 * memory_access_energy(small).total());
}

TEST(MemoryModel, SweepHasInteriorOptimum) {
  // Too few columns -> tall bit lines dominate; too many -> wide rows
  // dominate: the optimum k is interior.
  MemoryParams p;
  p.n = 14;
  auto sweep = sweep_column_split(p);
  ASSERT_GE(sweep.size(), 3u);
  int best = optimal_column_split(p);
  EXPECT_GT(best, sweep.front().first);
  EXPECT_LT(best, sweep.back().first);
}

TEST(Hierarchy, SmallBufferCapturesLocalTrace) {
  // Strided walk over 32 words: a 64-word buffer catches nearly all.
  std::vector<std::uint32_t> trace;
  for (int rep = 0; rep < 200; ++rep)
    for (std::uint32_t a = 0; a < 32; ++a) trace.push_back(a);
  std::vector<BufferLevel> levels{make_level(6), make_level(14)};
  auto ev = evaluate_hierarchy(trace, levels);
  EXPECT_EQ(ev.accesses, trace.size());
  EXPECT_GT(static_cast<double>(ev.hits[0]) /
                static_cast<double>(ev.accesses),
            0.95);
}

TEST(Hierarchy, BufferSavesEnergyOnReuseHeavyTrace) {
  std::vector<std::uint32_t> trace;
  for (int rep = 0; rep < 100; ++rep)
    for (std::uint32_t a = 0; a < 64; ++a) trace.push_back(a);
  std::vector<BufferLevel> with{make_level(7), make_level(14)};
  std::vector<BufferLevel> without{make_level(14)};
  auto e_with = evaluate_hierarchy(trace, with);
  auto e_without = evaluate_hierarchy(trace, without);
  EXPECT_LT(e_with.energy, e_without.energy);
}

TEST(Hierarchy, BufferHurtsOnRandomTrace) {
  // No reuse: every access misses the buffer and pays both levels.
  hlp::stats::Rng rng(3);
  std::vector<std::uint32_t> trace;
  for (int i = 0; i < 5000; ++i)
    trace.push_back(static_cast<std::uint32_t>(rng.uniform_bits(14)));
  std::vector<BufferLevel> with{make_level(5), make_level(14)};
  std::vector<BufferLevel> without{make_level(14)};
  auto e_with = evaluate_hierarchy(trace, with);
  auto e_without = evaluate_hierarchy(trace, without);
  EXPECT_GT(e_with.energy, e_without.energy);
}

TEST(Hierarchy, SweepIsComputedForIsaTrace) {
  isa::Machine m;
  auto st = m.run(isa::dsp_kernel(8, 500), 1000000, true);
  ASSERT_FALSE(st.addr_trace.empty());
  auto sweep = sweep_first_level(st.addr_trace, 16, 3, 10);
  ASSERT_EQ(sweep.size(), 8u);
  // The DSP kernel's working set is small: some buffer size must beat the
  // flat (huge-buffer ~ backing-only) configuration.
  double flat = sweep.back().second;
  double best = flat;
  for (auto& [bits, e] : sweep) best = std::min(best, e);
  EXPECT_LT(best, flat);
}

}  // namespace
