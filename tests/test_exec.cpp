#include <gtest/gtest.h>

#include <cmath>
#include <thread>

#include "bdd/netlist_bdd.hpp"
#include "core/guarded_eval.hpp"
#include "core/precomputation.hpp"
#include "core/sampling_power.hpp"
#include "core/scheduling_power.hpp"
#include "exec/exec.hpp"
#include "fsm/markov.hpp"
#include "fsm/symbolic.hpp"
#include "fsm/synth.hpp"
#include "netlist/generators.hpp"
#include "netlist/words.hpp"
#include "sim/glitch_sim.hpp"
#include "sim/streams.hpp"

namespace {

using namespace hlp;
using exec::Budget;
using exec::StopReason;

// --- Meter mechanics -------------------------------------------------------

TEST(Meter, UnlimitedBudgetNeverTrips) {
  exec::Meter m;  // default budget: every dimension unlimited
  EXPECT_TRUE(m.budget().unlimited());
  for (int i = 0; i < 10000; ++i) m.step();
  EXPECT_FALSE(m.over_budget());
  EXPECT_EQ(m.tripped(), StopReason::None);
  EXPECT_EQ(m.steps(), 10000u);
}

TEST(Meter, StepQuotaThrows) {
  exec::Meter m(Budget::with_step_quota(10));
  EXPECT_NO_THROW(m.step(10));
  try {
    m.step();
    FAIL() << "expected BudgetExceeded";
  } catch (const exec::BudgetExceeded& e) {
    EXPECT_EQ(e.reason(), StopReason::StepQuota);
  }
  EXPECT_EQ(m.tripped(), StopReason::StepQuota);
}

TEST(Meter, OverBudgetProbeIsStickyAndNonThrowing) {
  exec::Meter m(Budget::with_step_quota(3));
  EXPECT_FALSE(m.over_budget(1));
  EXPECT_FALSE(m.over_budget(1));
  EXPECT_FALSE(m.over_budget(1));
  EXPECT_TRUE(m.over_budget(1));  // 4th step exceeds the quota of 3
  EXPECT_TRUE(m.over_budget());   // sticky without further charges
  EXPECT_EQ(m.tripped(), StopReason::StepQuota);
}

TEST(Meter, DeadlineTrips) {
  exec::Meter m(Budget::with_deadline(1e-9));
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_TRUE(m.over_budget());
  EXPECT_EQ(m.tripped(), StopReason::Deadline);
  EXPECT_GT(m.elapsed_seconds(), 0.0);
}

TEST(Meter, CancellationObservedAtNextStep) {
  Budget b;
  b.cancel.request_cancel();
  exec::Meter m(b);
  EXPECT_TRUE(m.over_budget(1));
  EXPECT_EQ(m.tripped(), StopReason::Cancelled);
}

TEST(Meter, CancelTokenCopiesAliasOneFlag) {
  exec::CancelToken a;
  exec::CancelToken b = a;
  EXPECT_FALSE(b.cancel_requested());
  a.request_cancel();
  EXPECT_TRUE(b.cancel_requested());
}

TEST(Meter, NodeCapAndByteCapThrow) {
  Budget b;
  b.node_cap = 100;
  b.memory_cap_bytes = 1024;
  exec::Meter m(b);
  EXPECT_NO_THROW(m.check_nodes(100));
  EXPECT_THROW(m.check_nodes(101), exec::BudgetExceeded);
  EXPECT_EQ(m.tripped(), StopReason::NodeCap);
  exec::Meter m2(b);
  EXPECT_NO_THROW(m2.charge_bytes(1024));
  EXPECT_THROW(m2.charge_bytes(1), exec::BudgetExceeded);
  EXPECT_EQ(m2.tripped(), StopReason::MemoryCap);
}

TEST(Meter, StopReasonNames) {
  EXPECT_STREQ(exec::to_string(StopReason::None), "none");
  EXPECT_STREQ(exec::to_string(StopReason::Deadline), "deadline");
  EXPECT_STREQ(exec::to_string(StopReason::NodeCap), "node-cap");
  EXPECT_STREQ(exec::to_string(StopReason::MemoryCap), "memory-cap");
  EXPECT_STREQ(exec::to_string(StopReason::StepQuota), "step-quota");
  EXPECT_STREQ(exec::to_string(StopReason::Cancelled), "cancelled");
  EXPECT_STREQ(exec::to_string(StopReason::AllocFailure), "alloc-failure");
}

TEST(Outcome, CompletenessPredicates) {
  exec::Outcome<int> ok;
  ok.value = 42;
  EXPECT_TRUE(ok.complete());
  EXPECT_FALSE(ok.degraded());
  EXPECT_EQ(*ok, 42);

  exec::Outcome<int> partial;
  partial.diag.stop = StopReason::StepQuota;
  EXPECT_FALSE(partial.complete());

  exec::Outcome<int> degraded;
  degraded.diag.degraded = true;
  EXPECT_FALSE(degraded.complete());
  EXPECT_TRUE(degraded.degraded());
}

// --- Markov: validation + budgeted convergence ------------------------------

TEST(MarkovValidation, RejectsWrongSizedInputProbs) {
  auto stg = fsm::counter_fsm(3);  // 1 input bit -> 2 symbols
  std::vector<double> three{0.5, 0.25, 0.25};
  try {
    fsm::analyze_markov(stg, three);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    std::string msg = e.what();
    EXPECT_NE(msg.find("3"), std::string::npos) << msg;
    EXPECT_NE(msg.find("2"), std::string::npos) << msg;
  }
}

TEST(MarkovValidation, RejectsBadSum) {
  auto stg = fsm::counter_fsm(3);
  std::vector<double> bad{0.7, 0.7};
  EXPECT_THROW(fsm::analyze_markov(stg, bad), std::invalid_argument);
  std::vector<double> negative{1.5, -0.5};
  EXPECT_THROW(fsm::analyze_markov(stg, negative), std::invalid_argument);
}

TEST(MarkovValidation, AcceptsValidDistribution) {
  auto stg = fsm::counter_fsm(3);
  std::vector<double> probs{0.25, 0.75};
  auto ma = fsm::analyze_markov(stg, probs);
  EXPECT_TRUE(ma.converged);
  EXPECT_GT(ma.iterations, 0);
  EXPECT_LT(ma.residual, 1e-10);
  double sum = 0.0;
  for (double p : ma.state_prob) sum += p;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(MarkovBudgeted, StepQuotaYieldsHonestPartialResult) {
  auto stg = fsm::random_fsm(64, 2, 2, 11);
  auto full = fsm::analyze_markov(stg);
  ASSERT_TRUE(full.converged);

  auto out = fsm::analyze_markov_budgeted(stg, Budget::with_step_quota(2));
  EXPECT_FALSE(out.complete());
  EXPECT_EQ(out.diag.stop, StopReason::StepQuota);
  EXPECT_FALSE(out->converged);
  EXPECT_LE(out->iterations, 3);
  // The partial iterate is still a distribution over the right state set.
  ASSERT_EQ(out->state_prob.size(), stg.num_states());
  double sum = 0.0;
  for (double p : out->state_prob) sum += p;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(MarkovBudgeted, UnlimitedBudgetMatchesPlainAnalysis) {
  auto stg = fsm::protocol_fsm(4);
  auto plain = fsm::analyze_markov(stg);
  auto out = fsm::analyze_markov_budgeted(stg, Budget{});
  EXPECT_TRUE(out.complete());
  EXPECT_EQ(out->iterations, plain.iterations);
  for (std::size_t s = 0; s < stg.num_states(); ++s)
    EXPECT_DOUBLE_EQ(out->state_prob[s], plain.state_prob[s]);
}

// --- Monte Carlo: stop reasons + checkpoint/resume ---------------------------

TEST(MonteCarloBudgeted, QuotaTripReturnsResumableCheckpoint) {
  auto mod = netlist::adder_module(8);
  stats::Rng budgeted_rng(7);
  auto out = core::monte_carlo_power_budgeted(
      mod, [&] { return budgeted_rng.uniform_bits(16); },
      Budget::with_step_quota(100), 0.03);
  EXPECT_EQ(out->stop_reason,
            core::MonteCarloResult::StopReason::BudgetExhausted);
  EXPECT_FALSE(out->converged);
  EXPECT_EQ(out->pairs, 100u);
  ASSERT_TRUE(out->checkpoint.valid());
  EXPECT_EQ(out->checkpoint.count, 100u);

  // Resume from the checkpoint, drawing from the SAME generator sequence:
  // the finished estimate must equal a single uninterrupted run.
  auto resumed = core::monte_carlo_power_budgeted(
      mod, [&] { return budgeted_rng.uniform_bits(16); }, Budget{}, 0.03,
      0.95, 30, 100000, {}, {}, out->checkpoint);
  EXPECT_EQ(resumed->stop_reason,
            core::MonteCarloResult::StopReason::Converged);

  stats::Rng straight_rng(7);
  auto straight = core::monte_carlo_power(
      mod, [&] { return straight_rng.uniform_bits(16); }, 0.03);
  EXPECT_EQ(resumed->pairs, straight.pairs);
  EXPECT_DOUBLE_EQ(resumed->mean_energy, straight.mean_energy);
  EXPECT_DOUBLE_EQ(resumed->ci_halfwidth, straight.ci_halfwidth);
}

TEST(MonteCarloBudgeted, ScalarAndPackedTripOnTheSamePair) {
  auto mod = netlist::adder_module(6);
  sim::SimOptions scalar, packed;
  scalar.engine = sim::EngineKind::Scalar;
  packed.engine = sim::EngineKind::Packed;
  stats::Rng r1(21), r2(21);
  auto a = core::monte_carlo_power_budgeted(
      mod, [&] { return r1.uniform_bits(12); }, Budget::with_step_quota(97),
      1e-6, 0.95, 30, 100000, {}, scalar);
  auto b = core::monte_carlo_power_budgeted(
      mod, [&] { return r2.uniform_bits(12); }, Budget::with_step_quota(97),
      1e-6, 0.95, 30, 100000, {}, packed);
  EXPECT_EQ(a->pairs, 97u);
  EXPECT_EQ(b->pairs, 97u);
  EXPECT_DOUBLE_EQ(a->mean_energy, b->mean_energy);
  EXPECT_DOUBLE_EQ(a->checkpoint.m2, b->checkpoint.m2);
}

TEST(MonteCarloBudgeted, CancellationStopsTheRun) {
  auto mod = netlist::adder_module(8);
  Budget b;
  b.cancel.request_cancel();  // cancelled before the first pair
  stats::Rng rng(3);
  auto out = core::monte_carlo_power_budgeted(
      mod, [&] { return rng.uniform_bits(16); }, b, 0.03);
  EXPECT_EQ(out.diag.stop, StopReason::Cancelled);
  EXPECT_EQ(out->pairs, 0u);
  EXPECT_FALSE(out->checkpoint.valid());
}

// --- Glitch simulation: prefix semantics ------------------------------------

TEST(GlitchBudgeted, TripKeepsExactPrefixRates) {
  auto mod = netlist::multiply_reduce_module(4, 2);
  stats::Rng rng(5);
  auto stream = sim::random_stream(8, 200, 0.5, rng);

  auto full = sim::simulate_glitches(mod.netlist, stream);
  EXPECT_EQ(full.cycles, 200u);

  // 49 budget steps = cycles 1..49 simulated, i.e. a 50-cycle prefix.
  auto out = sim::simulate_glitches_budgeted(mod.netlist, stream,
                                             Budget::with_step_quota(49));
  EXPECT_EQ(out.diag.stop, StopReason::StepQuota);
  EXPECT_EQ(out->cycles, 50u);

  stats::VectorStream prefix;
  prefix.width = stream.width;
  prefix.words.assign(stream.words.begin(), stream.words.begin() + 50);
  auto ref = sim::simulate_glitches(mod.netlist, prefix);
  ASSERT_EQ(out->total_activity.size(), ref.total_activity.size());
  for (std::size_t g = 0; g < ref.total_activity.size(); ++g) {
    EXPECT_DOUBLE_EQ(out->total_activity[g], ref.total_activity[g]);
    EXPECT_DOUBLE_EQ(out->functional_activity[g], ref.functional_activity[g]);
  }
}

// --- Schedulers: partial management / ASAP fallback --------------------------

cdfg::Cdfg mux_heavy_cdfg() {
  cdfg::Cdfg g;
  using cdfg::OpKind;
  auto c = g.add_input("c", 1);
  for (int i = 0; i < 4; ++i) {
    auto a = g.add_input();
    auto b = g.add_input();
    auto x = g.add_binary(OpKind::Add, a, b);
    auto y = g.add_binary(OpKind::Mul, a, b);
    auto m = g.add_mux(c, x, y);
    g.mark_output(m);
  }
  return g;
}

TEST(SchedulerBudgeted, MonteiroTripKeepsAcceptedMuxes) {
  auto g = mux_heavy_cdfg();
  auto full = core::monteiro_schedule(g);
  ASSERT_GT(full.managed_muxes.size(), 1u);

  auto out = core::monteiro_schedule_budgeted(g, Budget::with_step_quota(1));
  EXPECT_TRUE(out.degraded());
  EXPECT_EQ(out.diag.stop, StopReason::StepQuota);
  EXPECT_LT(out->managed_muxes.size(), full.managed_muxes.size());
  // The partial schedule is still complete and consistent with its edges.
  EXPECT_EQ(out->schedule.start.size(), g.size());
  EXPECT_GT(out->schedule.length, 0);

  auto unlimited = core::monteiro_schedule_budgeted(g, Budget{});
  EXPECT_TRUE(unlimited.complete());
  EXPECT_EQ(unlimited->managed_muxes, full.managed_muxes);
}

TEST(SchedulerBudgeted, ActivityDrivenDegradesToAsap) {
  auto g = mux_heavy_cdfg();
  std::map<cdfg::OpKind, int> limits{{cdfg::OpKind::Mul, 1},
                                     {cdfg::OpKind::Add, 1}};
  auto out =
      core::activity_driven_schedule_budgeted(g, Budget::with_step_quota(1),
                                              limits);
  EXPECT_TRUE(out.degraded());
  EXPECT_EQ(out.diag.degraded_to, "asap schedule (resource limits ignored)");
  auto asap = cdfg::asap(g);
  EXPECT_EQ(out->start, asap.start);
  EXPECT_EQ(out->length, asap.length);

  auto unlimited = core::activity_driven_schedule_budgeted(g, Budget{}, limits);
  EXPECT_TRUE(unlimited.complete());
  auto plain = core::activity_driven_schedule(g, limits);
  EXPECT_EQ(unlimited->start, plain.start);
}

// --- Symbolic -> sampling degradation ----------------------------------------

TEST(Degradation, PrecomputeSelectionFallsBackToSampling) {
  auto mod = netlist::comparator_module(6);  // output 0 = lt
  auto symbolic = core::select_precompute_inputs(mod, 2);

  // A 16-node cap is hopeless for the comparator BDD: must degrade.
  auto out =
      core::select_precompute_inputs_budgeted(mod, 2, Budget::with_node_cap(16));
  EXPECT_TRUE(out.degraded());
  EXPECT_EQ(out.diag.degraded_to, "sampled coverage");
  EXPECT_EQ(out->size(), symbolic.size());
  // Sampled selection must still produce a usable predictor subset: build
  // the precomputed circuit and check it fires on a nonzero input fraction.
  auto pc = core::build_precomputed(mod, *out);
  EXPECT_GT(pc.coverage, 0.0);

  auto unlimited = core::select_precompute_inputs_budgeted(mod, 2, Budget{});
  EXPECT_TRUE(unlimited.complete());
  EXPECT_EQ(*unlimited, symbolic);
}

/// Shared-ALU style module with a guardable mux bank: sel ? a+b : a*b.
netlist::Module alu_select_module(int n) {
  netlist::Module m;
  m.name = "alusel";
  auto& nl = m.netlist;
  auto a = netlist::make_input_word(nl, n, "a");
  auto b = netlist::make_input_word(nl, n, "b");
  auto sel = nl.add_input("sel");
  auto sum = netlist::ripple_adder(nl, a, b);
  auto mult = netlist::array_multiplier(nl, a, b);
  mult.resize(sum.size(), mult.empty() ? 0 : mult.back());
  auto out = netlist::mux_word(nl, sel, sum, mult);
  netlist::mark_output_word(nl, out, "y");
  m.input_words = {a, b, {sel}};
  m.output_words = {out};
  return m;
}

TEST(Degradation, GuardDiscoveryFallsBackToSampledOdc) {
  auto mod = alu_select_module(4);
  auto symbolic = core::find_guards(mod);
  ASSERT_FALSE(symbolic.empty());

  auto out = core::find_guards_budgeted(mod, Budget::with_node_cap(8));
  EXPECT_TRUE(out.degraded());
  EXPECT_EQ(out.diag.degraded_to, "random-vector ODC verification");
  ASSERT_EQ(out->size(), symbolic.size());
  for (std::size_t i = 0; i < symbolic.size(); ++i) {
    EXPECT_EQ((*out)[i].guard, symbolic[i].guard);
    EXPECT_EQ((*out)[i].cone, symbolic[i].cone);
  }
  // Degraded guards still produce a functionally correct guarded circuit.
  auto gc = core::apply_guards(mod, *out);
  stats::Rng rng(9);
  auto stream = sim::random_stream(mod.total_input_bits(), 300, 0.5, rng);
  auto ev = core::evaluate_guarded(mod, gc, stream);
  EXPECT_TRUE(ev.functionally_correct);

  auto unlimited = core::find_guards_budgeted(mod, Budget{});
  EXPECT_TRUE(unlimited.complete());
  EXPECT_EQ(unlimited->size(), symbolic.size());
}

TEST(Degradation, ReachabilityFallsBackToExplicitBfs) {
  auto stg = fsm::protocol_fsm(5);
  std::vector<std::uint64_t> codes;
  for (std::size_t s = 0; s < stg.num_states(); ++s) codes.push_back(s);
  int bits = 1;
  while ((std::size_t{1} << bits) < stg.num_states()) ++bits;
  auto sf = fsm::synthesize_fsm(stg, codes, bits);

  bdd::Manager ref_mgr;
  auto ref_sym = fsm::build_symbolic(ref_mgr, sf);
  auto ref = fsm::symbolic_reachability(ref_sym);

  bdd::Manager mgr;
  auto out = fsm::reachability_budgeted(mgr, sf, stg,
                                        Budget::with_node_cap(4));
  EXPECT_TRUE(out.degraded());
  EXPECT_EQ(out.diag.degraded_to, "explicit STG breadth-first search");
  EXPECT_DOUBLE_EQ(out->count, ref.count);
  // The rebuilt characteristic function agrees with the symbolic one per
  // code, and the manager (which tripped mid-build) is still usable.
  fsm::SymbolicFsm probe;
  probe.mgr = &mgr;
  probe.state_bits = sf.state_bits;
  for (int k = 0; k < sf.state_bits; ++k)
    probe.s_vars.push_back(static_cast<std::uint32_t>(sf.inputs.size() + k));
  for (std::size_t s = 0; s < stg.num_states(); ++s)
    EXPECT_EQ(fsm::code_reachable(probe, out->reached, codes[s]),
              fsm::code_reachable(ref_sym, ref.reached, codes[s]))
        << "state " << s;

  bdd::Manager mgr2;
  auto unlimited = fsm::reachability_budgeted(mgr2, sf, stg, Budget{});
  EXPECT_TRUE(unlimited.complete());
  EXPECT_DOUBLE_EQ(unlimited->count, ref.count);
  EXPECT_EQ(unlimited->iterations, ref.iterations);
}

}  // namespace
