#include <gtest/gtest.h>

#include <cmath>

#include "core/sampling_power.hpp"
#include "sim/streams.hpp"

namespace {

using namespace hlp;
using namespace hlp::core;

struct CosimSetup {
  netlist::Module mod = netlist::adder_module(8);
  ModuleCharacterization train, eval;
  InputOutputModel io;

  explicit CosimSetup(double eval_hold = 0.0) {
    stats::Rng rng(5);
    auto train_in = sim::random_stream(16, 2000, 0.5, rng);
    train = characterize(mod, train_in);
    io.fit(train);
    stats::VectorStream eval_in =
        eval_hold > 0.0 ? sim::correlated_stream(16, 4000, eval_hold, rng)
                        : sim::random_stream(16, 4000, 0.5, rng);
    eval = characterize(mod, eval_in);
  }

  MacroFn model() const {
    return [this](const ModuleCharacterization& c, std::size_t t) {
      return io.predict_cycle(c.in_activity[t], c.out_activity[t]);
    };
  }
};

TEST(Census, MatchesGateLevelOnInDistributionData) {
  CosimSetup s;
  auto est = census_estimate(s.eval, s.model());
  double ref = gate_level_mean(s.eval);
  EXPECT_LT(std::abs(est.mean_energy - ref) / ref, 0.05);
  EXPECT_EQ(est.macro_evals, s.eval.transitions());
}

TEST(Census, BiasedOnOutOfDistributionData) {
  // Trained on white noise, evaluated on highly correlated data: the census
  // of the biased model is off (the ~30% effect in the paper).
  CosimSetup s(0.9);
  auto est = census_estimate(s.eval, s.model());
  double ref = gate_level_mean(s.eval);
  EXPECT_GT(std::abs(est.mean_energy - ref) / ref, 0.08);
}

TEST(Sampler, ApproximatesCensusWithFarFewerEvals) {
  CosimSetup s;
  stats::Rng rng(9);
  auto census = census_estimate(s.eval, s.model());
  auto sampler = sampler_estimate(s.eval, s.model(), 40, 2, rng);
  EXPECT_LT(sampler.macro_evals * 20, census.macro_evals);
  double rel =
      std::abs(sampler.mean_energy - census.mean_energy) / census.mean_energy;
  EXPECT_LT(rel, 0.15);
}

TEST(Sampler, MoreSamplesReduceError) {
  CosimSetup s;
  auto census = census_estimate(s.eval, s.model());
  double avg_small = 0.0, avg_big = 0.0;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    stats::Rng r1(seed), r2(seed + 100);
    auto small = sampler_estimate(s.eval, s.model(), 30, 1, r1);
    auto big = sampler_estimate(s.eval, s.model(), 30, 12, r2);
    avg_small +=
        std::abs(small.mean_energy - census.mean_energy) / census.mean_energy;
    avg_big +=
        std::abs(big.mean_energy - census.mean_energy) / census.mean_energy;
  }
  EXPECT_LT(avg_big, avg_small + 1e-9);
}

TEST(Adaptive, RemovesModelBias) {
  CosimSetup s(0.9);  // biased regime
  stats::Rng rng(13);
  auto census = census_estimate(s.eval, s.model());
  auto adaptive = adaptive_estimate(s.eval, s.model(), 120, rng);
  double ref = gate_level_mean(s.eval);
  double census_err = std::abs(census.mean_energy - ref) / ref;
  double adaptive_err = std::abs(adaptive.mean_energy - ref) / ref;
  EXPECT_LT(adaptive_err, census_err);
  EXPECT_LT(adaptive_err, 0.10);
  EXPECT_EQ(adaptive.gate_cycle_sims, 120u);
}

TEST(Adaptive, UsesFewGateLevelCycles) {
  CosimSetup s(0.9);
  stats::Rng rng(17);
  auto adaptive = adaptive_estimate(s.eval, s.model(), 100, rng);
  EXPECT_LE(adaptive.gate_cycle_sims * 10,
            s.eval.transitions());  // ground truth mostly untouched
}

}  // namespace
