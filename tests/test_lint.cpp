#include <gtest/gtest.h>

#include <string>

#include "cdfg/generators.hpp"
#include "core/scheduling_power.hpp"
#include "fsm/benchmarks.hpp"
#include "fsm/markov.hpp"
#include "lint/lint.hpp"
#include "netlist/generators.hpp"
#include "sim/simulator.hpp"
#include "stats/rng.hpp"

namespace {

using namespace hlp;
using netlist::GateId;
using netlist::GateKind;
using netlist::Netlist;

// ---- Property: every generator in the library lints clean ----------------

lint::LintOptions warn_all() {
  lint::LintOptions o;
  o.mode = lint::LintMode::Warn;
  return o;
}

TEST(LintClean, NetlistGenerators) {
  netlist::Module mods[] = {
      netlist::adder_module(4),
      netlist::multiplier_module(3),
      netlist::alu_module(3),
      netlist::parity_module(6),
      netlist::comparator_module(4),
      netlist::max_module(3),
      netlist::random_logic_module(6, 40, 4, 99),
      netlist::c17_module(),
      netlist::mux_tree_module(3),
      netlist::multiply_reduce_module(3),
  };
  for (const auto& m : mods) {
    SCOPED_TRACE(m.name);
    lint::Report r = lint::run_module(m, warn_all());
    EXPECT_FALSE(r.has_errors()) << r.to_string();
  }
}

TEST(LintClean, FsmGenerators) {
  fsm::Stg stgs[] = {fsm::counter_fsm(3), fsm::sequence_detector_fsm(0b1011, 4),
                     fsm::protocol_fsm(4), fsm::random_fsm(12, 2, 3, 5)};
  for (const auto& stg : stgs) {
    lint::Report r = lint::run_fsm(stg, warn_all());
    EXPECT_TRUE(r.clean()) << r.to_string();
  }
  for (const auto& [name, stg] : fsm::controller_benchmarks()) {
    SCOPED_TRACE(name);
    lint::Report r = lint::run_fsm(stg, warn_all());
    EXPECT_FALSE(r.has_errors()) << r.to_string();
  }
}

TEST(LintClean, CdfgGenerators) {
  cdfg::Cdfg graphs[] = {
      cdfg::polynomial_direct(4),  cdfg::polynomial_horner(4),
      cdfg::fir_cdfg(5),           cdfg::random_expr_tree(8, 0.4, 21),
      cdfg::branching_cdfg(3, 4, 7), cdfg::operand_sharing_cdfg(4, 4),
  };
  for (const auto& g : graphs) {
    lint::Report r = lint::run_cdfg(g, warn_all());
    EXPECT_FALSE(r.has_errors()) << r.to_string();
  }
}

TEST(LintClean, ScheduledCdfgPassesScheduleRules) {
  cdfg::Cdfg g = cdfg::fir_cdfg(5);
  std::map<cdfg::OpKind, int> limits{{cdfg::OpKind::Mul, 1},
                                     {cdfg::OpKind::Add, 1}};
  cdfg::Schedule s = cdfg::list_schedule(g, limits);
  lint::Report r = lint::run_cdfg(g, s, limits, {}, warn_all());
  EXPECT_FALSE(r.has_errors()) << r.to_string();
}

// ---- One deliberately broken fixture per rule ----------------------------

TEST(LintNetlist, CombinationalCycleNamesThePath) {
  Netlist nl;
  GateId a = nl.add_input("a");
  GateId x = nl.add_binary(GateKind::And, a, a, "x");
  GateId y = nl.add_unary(GateKind::Not, x, "y");
  nl.mark_output(y);
  nl.set_fanin(x, 1, y);  // x -> y -> x
  lint::Report r = lint::run_netlist(nl, warn_all());
  ASSERT_TRUE(r.has("NL-CYCLE")) << r.to_string();
  const lint::Diagnostic* d = r.find("NL-CYCLE");
  // The diagnostic must name the gates on the cycle, not just say "cycle".
  EXPECT_NE(d->message.find("x"), std::string::npos) << d->message;
  EXPECT_NE(d->message.find("y"), std::string::npos) << d->message;
}

TEST(LintNetlist, StrictModeTurnsCycleIntoTypedError) {
  Netlist nl;
  GateId a = nl.add_input("a");
  GateId x = nl.add_binary(GateKind::And, a, a, "x");
  GateId y = nl.add_unary(GateKind::Not, x, "y");
  nl.mark_output(y);
  nl.set_fanin(x, 1, y);
  sim::SimOptions opts;
  opts.lint.mode = lint::LintMode::Strict;
  stats::VectorStream in;
  in.width = 1;
  in.words = {0, 1, 1, 0};
  try {
    (void)sim::simulate_activities(nl, in, nullptr, opts);
    FAIL() << "expected LintError";
  } catch (const lint::LintError& e) {
    EXPECT_TRUE(e.report().has("NL-CYCLE"));
    EXPECT_NE(std::string(e.what()).find("NL-CYCLE"), std::string::npos);
  }
}

TEST(LintNetlist, BadReferenceAndArity) {
  Netlist nl;
  GateId a = nl.add_input("a");
  GateId bogus[] = {a, GateId{999}};
  nl.add_gate(GateKind::And, bogus, "bad");
  EXPECT_TRUE(lint::run_netlist(nl, warn_all()).has("NL-REF"));

  Netlist nl2;
  GateId b = nl2.add_input("b");
  GateId one[] = {b};
  GateId g = nl2.add_gate(GateKind::And, one, "unary_and");
  nl2.mark_output(g);
  EXPECT_TRUE(lint::run_netlist(nl2, warn_all()).has("NL-ARITY"));
}

TEST(LintNetlist, UnwiredDffD) {
  Netlist nl;
  GateId q = nl.add_dff();
  nl.mark_output(q);
  EXPECT_TRUE(lint::run_netlist(nl, warn_all()).has("NL-DFF-D"));
}

TEST(LintNetlist, FloatingAndDeadGates) {
  Netlist nl;
  GateId a = nl.add_input("a");
  GateId live = nl.add_unary(GateKind::Buf, a, "live");
  nl.mark_output(live);
  GateId dead = nl.add_unary(GateKind::Not, a, "dead");
  GateId floating = nl.add_unary(GateKind::Buf, dead, "floating");
  (void)floating;
  lint::Report r = lint::run_netlist(nl, warn_all());
  EXPECT_TRUE(r.has("NL-FLOAT")) << r.to_string();
  EXPECT_TRUE(r.has("NL-DEAD")) << r.to_string();
}

TEST(LintNetlist, MultiplyMarkedOutputAndFanoutCap) {
  Netlist nl;
  GateId a = nl.add_input("a");
  GateId x = nl.add_unary(GateKind::Not, a, "x");
  nl.mark_output(x, "o1");
  nl.mark_output(x, "o2");
  lint::LintOptions o = warn_all();
  o.fanout_cap = 2;
  GateId f1 = nl.add_unary(GateKind::Buf, a, "f1");
  GateId f2 = nl.add_unary(GateKind::Buf, a, "f2");
  GateId f3 = nl.add_binary(GateKind::And, a, f1, "f3");
  nl.mark_output(nl.add_binary(GateKind::Or, f2, f3, "o3"));
  lint::Report r = lint::run_netlist(nl, o);
  EXPECT_TRUE(r.has("NL-MULTIOUT")) << r.to_string();
  EXPECT_TRUE(r.has("NL-FANOUT")) << r.to_string();
}

TEST(LintNetlist, ModulePortRules) {
  netlist::Module m;
  GateId a = m.netlist.add_input("a");
  GateId g = m.netlist.add_unary(GateKind::Not, a, "g");
  m.netlist.mark_output(g);
  // Port word claims a non-input gate as an input bit.
  m.input_words.push_back({a, g});
  m.output_words.push_back({g});
  lint::Report r = lint::run_module(m, warn_all());
  EXPECT_TRUE(r.has("NL-PORT")) << r.to_string();
}

TEST(LintPower, GlitchProneReconvergence) {
  Netlist nl;
  GateId a = nl.add_input("a");
  GateId b = nl.add_input("b");
  GateId chain = b;
  for (int i = 0; i < 5; ++i) chain = nl.add_unary(GateKind::Not, chain);
  GateId x = nl.add_binary(GateKind::Xor, a, chain, "deep_vs_shallow");
  nl.mark_output(x);
  lint::Report r = lint::run_netlist(nl, warn_all());
  EXPECT_TRUE(r.has("PW-GLITCH")) << r.to_string();
}

TEST(LintPower, ClockGatingCandidate) {
  Netlist nl;
  GateId en = nl.add_input("en");
  GateId d = nl.add_input("d");
  GateId q = nl.add_dff(netlist::kNullGate, false, "q");
  GateId m = nl.add_mux(en, q, d, "hold_mux");
  nl.set_dff_input(q, m);
  nl.mark_output(q);
  lint::Report r = lint::run_netlist(nl, warn_all());
  EXPECT_TRUE(r.has("PW-GATE")) << r.to_string();
}

TEST(LintPower, HotCapacitanceNode) {
  Netlist nl;
  GateId a = nl.add_input("a");
  GateId b = nl.add_input("b");
  GateId hub = nl.add_binary(GateKind::And, a, b, "hub");
  GateId acc = hub;
  for (int i = 0; i < 20; ++i)
    acc = nl.add_binary(GateKind::Xor, acc, hub);
  nl.mark_output(acc);
  lint::LintOptions o = warn_all();
  o.hot_load_fraction = 0.2;
  lint::Report r = lint::run_netlist(nl, o);
  ASSERT_TRUE(r.has("PW-HOTCAP")) << r.to_string();
  EXPECT_EQ(r.find("PW-HOTCAP")->severity, lint::Severity::Power);
}

TEST(LintPower, PowerRulesCanBeDisabled) {
  Netlist nl;
  GateId en = nl.add_input("en");
  GateId d = nl.add_input("d");
  GateId q = nl.add_dff(netlist::kNullGate, false, "q");
  nl.set_dff_input(q, nl.add_mux(en, q, d));
  nl.mark_output(q);
  lint::LintOptions o = warn_all();
  o.power_rules = false;
  EXPECT_FALSE(lint::run_netlist(nl, o).has("PW-GATE"));
  o.power_rules = true;
  o.disabled = {"PW-GATE"};
  EXPECT_FALSE(lint::run_netlist(nl, o).has("PW-GATE"));
}

TEST(LintConst, ProvablyConstantGateIsReportedWithWaste) {
  Netlist nl;
  GateId a = nl.add_input("a");
  GateId zero = nl.add_const(false);
  GateId g = nl.add_binary(GateKind::And, a, zero, "stuck0");
  GateId out = nl.add_binary(GateKind::Or, g, a, "out");
  nl.mark_output(out);
  lint::Report r = lint::run_netlist(nl, warn_all());
  ASSERT_TRUE(r.has("NL-CONST")) << r.to_string();
  const lint::Diagnostic* d = r.find("NL-CONST");
  EXPECT_EQ(d->loc.object, g);
  EXPECT_EQ(d->severity, lint::Severity::Warning);
  // The stuck gate's live fanin (a) still delivers switched capacitance
  // into it: that is the reclaimable waste.
  EXPECT_GT(d->waste, 0.0) << r.to_string();
}

TEST(LintConst, ConstantRegisterIsReported) {
  Netlist nl;
  GateId q = nl.add_dff(netlist::kNullGate, false, "q");
  GateId zero = nl.add_const(false);
  GateId d = nl.add_binary(GateKind::And, q, zero, "feedback_and");
  nl.set_dff_input(q, d);
  nl.mark_output(q);
  lint::Report r = lint::run_netlist(nl, warn_all());
  // Both the AND (always 0) and the register (init 0, D provably 0) fold.
  EXPECT_GE(r.count("NL-CONST"), 2u) << r.to_string();
}

TEST(LintPower, TransitionBoundViolation) {
  // An unbalanced XOR chain reusing one early input: gate i merges a
  // depth-i path with a depth-0 path, so its arrival window widens with i
  // and the provable per-cycle transition bound grows past any fixed
  // budget.
  Netlist nl;
  GateId a = nl.add_input("a");
  GateId b = nl.add_input("b");
  GateId chain = b;
  for (int i = 0; i < 14; ++i) chain = nl.add_binary(GateKind::Xor, chain, a);
  nl.mark_output(chain);
  lint::LintOptions o = warn_all();
  o.transition_bound = 8;
  lint::Report r = lint::run_netlist(nl, o);
  ASSERT_TRUE(r.has("PW-BOUND")) << r.to_string();
  EXPECT_EQ(r.find("PW-BOUND")->severity, lint::Severity::Power);
  EXPECT_GT(r.find("PW-BOUND")->waste, 0.0);
  o.transition_bound = 0;
  EXPECT_FALSE(lint::run_netlist(nl, o).has("PW-BOUND"));
}

TEST(LintPower, PowerTierIsRankedByEstimatedWaste) {
  const netlist::Module m = netlist::multiplier_module(8);
  lint::Report r = lint::run_module(m, warn_all());
  double prev = -1.0;
  std::size_t power_seen = 0;
  bool in_power_tail = false;
  for (const lint::Diagnostic& d : r.diags) {
    if (d.severity == lint::Severity::Power) {
      if (in_power_tail && prev >= 0.0)
        EXPECT_LE(d.waste, prev) << "power diagnostics must be ranked "
                                    "largest estimated waste first";
      in_power_tail = true;
      prev = d.waste;
      ++power_seen;
    } else {
      EXPECT_FALSE(in_power_tail)
          << "power diagnostics must come after the functional tiers";
    }
  }
  ASSERT_GT(power_seen, 0u);
}

TEST(LintFsm, RangeTrapUnreachableErgodic) {
  // Transition out of range.
  fsm::Stg bad(1, 1);
  bad.add_state("s0");
  bad.set_transition(0, 0, 7);
  bad.set_transition(0, 1, 0);
  EXPECT_TRUE(lint::run_fsm(bad, warn_all()).has("FS-RANGE"));

  // Never-wired state: default self-loops make it a trap.
  fsm::Stg trap(1, 1);
  trap.add_state("s0");
  trap.add_state("dead_end");
  trap.set_all_transitions(0, 0);
  EXPECT_TRUE(lint::run_fsm(trap, warn_all()).has("FS-TRAP"));

  // Reachable but absorbing pair -> non-ergodic; s2 unreachable.
  fsm::Stg erg(1, 1);
  erg.add_state("start");
  erg.add_state("sink");
  erg.add_state("island");
  erg.set_all_transitions(0, 1);
  erg.set_all_transitions(1, 1);
  erg.set_all_transitions(2, 0);
  lint::Report r = lint::run_fsm(erg, warn_all());
  EXPECT_TRUE(r.has("FS-ERGODIC")) << r.to_string();
  EXPECT_TRUE(r.has("FS-UNREACH")) << r.to_string();
}

TEST(LintFsm, OutputWiderThanDeclared) {
  fsm::Stg stg(1, 2);
  stg.add_state("s0");
  stg.set_transition(0, 0, 0, 0b111);  // 3 bits into a 2-bit output
  stg.set_transition(0, 1, 0, 0b01);
  EXPECT_TRUE(lint::run_fsm(stg, warn_all()).has("FS-OUT-WIDTH"));
}

TEST(LintFsm, StrictModeBlocksMarkovOnNonErgodicChain) {
  fsm::Stg erg(1, 1);
  erg.add_state("start");
  erg.add_state("sink");
  erg.set_all_transitions(0, 1);
  erg.set_all_transitions(1, 1);
  lint::LintOptions strict;
  strict.mode = lint::LintMode::Strict;
  EXPECT_THROW((void)fsm::analyze_markov(erg, {}, 2000, strict),
               lint::LintError);
}

TEST(LintCdfg, ArityWidthDeadAndScheduleRules) {
  cdfg::Cdfg g;
  cdfg::OpId a = g.add_input("a", 8);
  cdfg::OpId b = g.add_input("b", 16);
  cdfg::OpId one[] = {a};
  cdfg::OpId lonely = g.add_op(cdfg::OpKind::Add, one, "unary_add", 8);
  cdfg::OpId wmix = g.add_binary(cdfg::OpKind::Add, a, b, "w_mix", 16);
  g.add_binary(cdfg::OpKind::Mul, a, a, "dead_mul", 8);
  g.mark_output(wmix);
  g.mark_output(lonely);
  lint::Report r = lint::run_cdfg(g, warn_all());
  EXPECT_TRUE(r.has("CD-ARITY")) << r.to_string();
  EXPECT_TRUE(r.has("CD-WIDTH")) << r.to_string();
  EXPECT_TRUE(r.has("CD-DEAD")) << r.to_string();

  // Unscheduled / precedence-violating schedule.
  cdfg::Cdfg h;
  cdfg::OpId x = h.add_input("x");
  cdfg::OpId y = h.add_input("y");
  cdfg::OpId s1 = h.add_binary(cdfg::OpKind::Add, x, y);
  cdfg::OpId s2 = h.add_binary(cdfg::OpKind::Add, s1, y);
  h.mark_output(s2);
  cdfg::Schedule s;
  s.start = {0, 0, 0, 0, 0};  // s2 starts before s1 finishes
  s.length = 1;
  lint::Report rs = lint::run_cdfg(h, s, {}, {}, warn_all());
  EXPECT_TRUE(rs.has("CD-UNSCHED")) << rs.to_string();

  // Resource conflict: two adds in the same step with a limit of one.
  cdfg::Cdfg k;
  cdfg::OpId p = k.add_input("p");
  cdfg::OpId q = k.add_input("q");
  cdfg::OpId a1 = k.add_binary(cdfg::OpKind::Add, p, q);
  cdfg::OpId a2 = k.add_binary(cdfg::OpKind::Add, q, p);
  k.mark_output(a1);
  k.mark_output(a2);
  cdfg::Schedule cs = cdfg::asap(k);
  std::map<cdfg::OpKind, int> limits{{cdfg::OpKind::Add, 1}};
  lint::Report rr = lint::run_cdfg(k, cs, limits, {}, warn_all());
  EXPECT_TRUE(rr.has("CD-RESOURCE")) << rr.to_string();
}

TEST(LintCdfg, StrictSchedulerRejectsMalformedGraph) {
  cdfg::Cdfg g;
  cdfg::OpId a = g.add_input("a");
  cdfg::OpId one[] = {a};
  cdfg::OpId bad = g.add_op(cdfg::OpKind::Mul, one, "unary_mul");
  g.mark_output(bad);
  lint::LintOptions strict;
  strict.mode = lint::LintMode::Strict;
  EXPECT_THROW((void)core::activity_driven_schedule(g, {}, {}, strict),
               lint::LintError);
}

// ---- Sink / mode plumbing ------------------------------------------------

TEST(LintModes, OffIsSilentAndSinkCollects) {
  Netlist nl;
  GateId q = nl.add_dff();  // NL-DFF-D error
  nl.mark_output(q);
  // Off: enforce does nothing even on a broken netlist.
  lint::LintOptions off;
  EXPECT_NO_THROW(lint::enforce_netlist(nl, off, "test"));
  // Warn with a sink: diagnostics are collected, nothing thrown.
  std::vector<lint::Diagnostic> sink;
  lint::LintOptions warn = warn_all();
  warn.sink = &sink;
  EXPECT_NO_THROW(lint::enforce_netlist(nl, warn, "test"));
  ASSERT_FALSE(sink.empty());
  bool found = false;
  for (const auto& d : sink) found |= d.rule_id == "NL-DFF-D";
  EXPECT_TRUE(found);
}

TEST(LintRegistry, EveryRuleHasCatalogEntry) {
  const auto& reg = lint::RuleRegistry::global();
  EXPECT_GE(reg.rules().size(), 20u);
  for (const auto& r : reg.rules()) {
    EXPECT_FALSE(r.id.empty());
    EXPECT_FALSE(r.summary.empty());
  }
  EXPECT_NE(reg.find("NL-CYCLE"), nullptr);
  EXPECT_EQ(reg.find("NO-SUCH-RULE"), nullptr);
  EXPECT_EQ(reg.severity("PW-GATE"), lint::Severity::Power);
}

}  // namespace
