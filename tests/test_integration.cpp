#include <gtest/gtest.h>

#include "core/clock_gating.hpp"
#include "core/entropy_model.hpp"
#include "core/fsm_encoding_power.hpp"
#include "core/guarded_eval.hpp"
#include "core/macromodel.hpp"
#include "core/precomputation.hpp"
#include "core/retiming_power.hpp"
#include "core/sampling_power.hpp"
#include "fsm/minimize.hpp"
#include "sim/streams.hpp"

namespace {

using namespace hlp;
using namespace hlp::core;

// End-to-end flows spanning multiple subsystems, mirroring the paper's
// "design improvement loop" (Fig. 1): estimate, transform, re-estimate.

TEST(Integration, EstimatorHierarchyConverges) {
  // Entropy (behavioral), macro-model (RT), gate-level simulation: all three
  // should rank a quiet stream below a noisy one.
  auto mod = netlist::alu_module(6);
  stats::Rng rng(3);
  int n_in = mod.total_input_bits();
  auto noisy = sim::random_stream(n_in, 1200, 0.5, rng);
  auto quiet = sim::correlated_stream(n_in, 1200, 0.93, rng);

  auto ent_noisy = evaluate_entropy_models(mod, noisy, {}, false);
  auto ent_quiet = evaluate_entropy_models(mod, quiet, {}, false);
  EXPECT_LT(ent_quiet.power_simulated, ent_noisy.power_simulated);
  EXPECT_LT(ent_quiet.power_marculescu, ent_noisy.power_marculescu);

  auto chr_noisy = characterize(mod, noisy);
  auto chr_quiet = characterize(mod, quiet);
  InputOutputModel io;
  io.fit(chr_noisy);
  MacroFn fn = [&](const ModuleCharacterization& c, std::size_t t) {
    return io.predict_cycle(c.in_activity[t], c.out_activity[t]);
  };
  auto cen_noisy = census_estimate(chr_noisy, fn);
  auto cen_quiet = census_estimate(chr_quiet, fn);
  EXPECT_LT(cen_quiet.mean_energy, cen_noisy.mean_energy);
}

TEST(Integration, FsmFlowMinimizeEncodeGateSynthesize) {
  // Full controller flow: minimize -> low-power encode -> synthesize ->
  // clock gate. Every stage must preserve behavior and reduce its metric.
  auto stg = fsm::protocol_fsm(5);
  auto min = fsm::minimize(stg);
  EXPECT_LE(min.num_states(), stg.num_states());

  auto ma = fsm::analyze_markov(min);
  auto lp_codes = fsm::encode_states(min, fsm::EncodingStyle::LowPower, &ma, 3);
  auto rnd_codes = fsm::encode_states(min, fsm::EncodingStyle::Random, &ma, 3);
  EXPECT_LE(fsm::expected_code_switching(ma, lp_codes),
            fsm::expected_code_switching(ma, rnd_codes) + 1e-9);

  int bits = fsm::encoding_bits(fsm::EncodingStyle::LowPower,
                                min.num_states());
  auto sf = fsm::synthesize_fsm(min, lp_codes, bits);
  stats::Rng rng(5);
  std::vector<double> probs{0.85, 0.05, 0.05, 0.05};
  auto cg = evaluate_clock_gating(min, sf, 4000, rng, probs);
  EXPECT_LT(cg.gated_power, cg.base_power);
}

TEST(Integration, ShutdownTechniquesComposeOnDatapath) {
  // Precomputation and guarded evaluation applied to the same comparator
  // module both save power on skewed input streams.
  auto cmp = netlist::comparator_module(6);
  std::vector<std::uint32_t> subset{5, 11};
  auto pc = build_precomputed(cmp, subset, true);
  auto base = build_precomputed(cmp, subset, false);
  stats::Rng rng(7);
  auto in = sim::random_stream(12, 2500, 0.5, rng);
  auto ev_pc = evaluate_precomputed(pc, cmp, in);
  auto ev_base = evaluate_precomputed(base, cmp, in);
  ASSERT_TRUE(ev_pc.functionally_correct);
  EXPECT_LT(ev_pc.power, ev_base.power);
}

TEST(Integration, RetimingAfterMacroCharacterization) {
  // Characterize a multiplier, then retime it; the retimed circuit's
  // functional power matches the zero-delay characterization scale.
  auto mod = netlist::multiplier_module(4);
  stats::Rng rng(9);
  auto in = sim::random_stream(8, 600, 0.5, rng);
  auto rc = place_registers_at_cut(mod, mod.netlist.depth() / 2);
  auto ev = evaluate_retimed(rc, mod, in);
  ASSERT_TRUE(ev.functionally_correct);
  EXPECT_GT(ev.power_total, 0.0);
}

TEST(Integration, AdaptiveEstimatorVsEntropyEstimator) {
  // Both high-level estimators applied to the same module/stream should
  // land within a small factor of the gate-level truth.
  auto mod = netlist::adder_module(8);
  stats::Rng rng(11);
  auto train = sim::random_stream(16, 1500, 0.5, rng);
  auto eval = sim::correlated_stream(16, 2500, 0.85, rng);
  auto chr_train = characterize(mod, train);
  auto chr_eval = characterize(mod, eval);
  InputOutputModel io;
  io.fit(chr_train);
  MacroFn fn = [&](const ModuleCharacterization& c, std::size_t t) {
    return io.predict_cycle(c.in_activity[t], c.out_activity[t]);
  };
  stats::Rng rng2(12);
  auto adaptive = adaptive_estimate(chr_eval, fn, 100, rng2);
  double ref = gate_level_mean(chr_eval);
  EXPECT_LT(std::abs(adaptive.mean_energy - ref) / ref, 0.15);
}

}  // namespace
