#include <gtest/gtest.h>

#include "core/precomputation.hpp"
#include "sim/streams.hpp"

namespace {

using namespace hlp;
using namespace hlp::core;

netlist::Module comparator_single_output(int n) {
  // Single-output module: a < b (output 0 of comparator_module).
  auto mod = netlist::comparator_module(n);
  return mod;  // output 0 is lt
}

TEST(Precompute, SubsetSelectionPrefersMsbsForComparator) {
  auto mod = comparator_single_output(6);
  auto subset = select_precompute_inputs(mod, 2);
  ASSERT_EQ(subset.size(), 2u);
  // For a<b the MSBs (indices 5 of a = 5, of b = 11) decide most often.
  bool has_msb_a =
      std::find(subset.begin(), subset.end(), 5u) != subset.end();
  bool has_msb_b =
      std::find(subset.begin(), subset.end(), 11u) != subset.end();
  EXPECT_TRUE(has_msb_a && has_msb_b);
}

TEST(Precompute, CoverageMatchesTheory) {
  // Comparator with both MSBs selected: the predictors decide whenever the
  // MSBs differ -> coverage = 1/2.
  auto mod = comparator_single_output(6);
  std::vector<std::uint32_t> subset{5, 11};
  auto pc = build_precomputed(mod, subset, true);
  EXPECT_NEAR(pc.coverage, 0.5, 1e-9);
}

TEST(Precompute, FunctionalCorrectness) {
  auto mod = comparator_single_output(5);
  auto subset = select_precompute_inputs(mod, 2);
  auto pc = build_precomputed(mod, subset, true);
  stats::Rng rng(3);
  auto in = sim::random_stream(10, 1500, 0.5, rng);
  auto ev = evaluate_precomputed(pc, mod, in);
  EXPECT_TRUE(ev.functionally_correct);
  EXPECT_NEAR(ev.coverage_observed, pc.coverage, 0.05);
}

TEST(Precompute, SavesPowerVsPlainRegisteredBlock) {
  auto mod = comparator_single_output(8);
  std::vector<std::uint32_t> subset{7, 15};  // the two MSBs
  auto pc = build_precomputed(mod, subset, true);
  auto base = build_precomputed(mod, subset, false);
  stats::Rng rng(5);
  auto in = sim::random_stream(16, 3000, 0.5, rng);
  auto ev_pc = evaluate_precomputed(pc, mod, in);
  auto ev_base = evaluate_precomputed(base, mod, in);
  ASSERT_TRUE(ev_pc.functionally_correct);
  ASSERT_TRUE(ev_base.functionally_correct);
  EXPECT_LT(ev_pc.power, ev_base.power);
}

TEST(Precompute, LargerSubsetsCoverMore) {
  auto mod = comparator_single_output(6);
  double prev = -1.0;
  for (int k = 2; k <= 6; k += 2) {
    auto subset = select_precompute_inputs(mod, k);
    auto pc = build_precomputed(mod, subset, true);
    EXPECT_GE(pc.coverage, prev - 1e-9) << "k=" << k;
    prev = pc.coverage;
  }
}

TEST(PrecomputeMulti, ComparatorBothOutputsCorrect) {
  auto mod = netlist::comparator_module(5);  // outputs: lt, eq
  std::vector<std::uint32_t> subset{4, 9};   // both MSBs
  auto pc = build_precomputed_multi(mod, subset, true);
  stats::Rng rng(3);
  auto in = sim::random_stream(10, 2000, 0.5, rng);
  auto ev = evaluate_precomputed_multi(pc, mod, in);
  EXPECT_TRUE(ev.functionally_correct);
  EXPECT_NEAR(ev.coverage_observed, pc.coverage, 0.05);
}

TEST(PrecomputeMulti, CoverageNeverExceedsSingleOutput) {
  // All outputs must be decided: coverage of the multi-output version can
  // only be <= the single-output coverage of each output alone.
  auto mod = netlist::comparator_module(6);
  std::vector<std::uint32_t> subset{5, 11};
  auto single = build_precomputed(mod, subset, true);  // output 0 (lt)
  auto multi = build_precomputed_multi(mod, subset, true);
  EXPECT_LE(multi.coverage, single.coverage + 1e-12);
  // For the comparator pair {lt, eq}: MSBs differing decide lt but leave eq
  // decided too (eq=0), so coverage stays 0.5 here.
  EXPECT_NEAR(multi.coverage, 0.5, 1e-9);
}

TEST(PrecomputeMulti, SavesPowerOnSkewedComparator) {
  auto mod = netlist::comparator_module(8);
  std::vector<std::uint32_t> subset{6, 7, 14, 15};
  auto pc = build_precomputed_multi(mod, subset, true);
  auto base = build_precomputed_multi(mod, subset, false);
  stats::Rng rng(5);
  auto in = sim::random_stream(16, 3000, 0.5, rng);
  auto ev = evaluate_precomputed_multi(pc, mod, in);
  auto ev0 = evaluate_precomputed_multi(base, mod, in);
  ASSERT_TRUE(ev.functionally_correct);
  ASSERT_TRUE(ev0.functionally_correct);
  EXPECT_LT(ev.power, ev0.power);
}

TEST(Precompute, WorksOnMaxCircuitToo) {
  // The paper's Fig. 6 example family: max/comparator circuits.
  auto mod = netlist::parity_module(8);
  // Parity is the adversarial case: no subset smaller than all inputs can
  // ever predict the output -> coverage 0.
  auto subset = select_precompute_inputs(mod, 3);
  auto pc = build_precomputed(mod, subset, true);
  EXPECT_NEAR(pc.coverage, 0.0, 1e-9);
}

}  // namespace
