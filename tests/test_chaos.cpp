// Chaos harness for the serve tier (DESIGN.md §9): deterministic fault
// schedules driven through hlp::fi's process-global serve faults, asserting
// the tier's contract under faults — every request gets exactly one typed
// response, no waiter leaks, and the persistent cache recovers to a
// byte-identical live set after a mid-load kill.

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "exec/fi.hpp"
#include "jobs/kernels.hpp"
#include "serve/cachefile.hpp"
#include "serve/protocol.hpp"
#include "serve/service.hpp"

namespace {

using namespace hlp;
using serve::CacheSegmentFile;
using serve::Op;
using serve::Request;
using serve::ResponseView;
using serve::SegmentStats;
using serve::Service;
using serve::ServiceOptions;

std::string temp_segment_path(const std::string& tag) {
  return ::testing::TempDir() + "hlp_seg_" + tag + "_" +
         std::to_string(::getpid()) + ".bin";
}

/// splitmix64: the schedule generator. Every fault choice in a schedule is
/// a pure function of the schedule id, so a failing schedule replays
/// exactly from its index alone.
std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// Load a segment into an ordered map (append order is irrelevant for
/// equality; the map makes comparison order-insensitive).
std::map<std::string, std::string> load_live_set(const std::string& path,
                                                 SegmentStats* stats = nullptr) {
  std::map<std::string, std::string> out;
  CacheSegmentFile seg(path);
  seg.load([&](std::string&& k, std::string&& v) {
    out.emplace(std::move(k), std::move(v));
  });
  if (stats) *stats = seg.stats();
  return out;
}

Request estimate_request(const std::string& design,
                         jobs::JobKind kind = jobs::JobKind::Symbolic) {
  Request rq;
  rq.op = Op::Estimate;
  rq.kind = kind;
  rq.design = design;
  return rq;
}

// --- Crash-safe persistent cache --------------------------------------------

TEST(ServePersist, RestartServesWarmByteIdenticalWithoutExecuting) {
  const std::string path = temp_segment_path("warm");
  std::remove(path.c_str());

  Request rq = estimate_request("adder:8");
  rq.id = "warm-1";
  std::string first;
  {
    ServiceOptions opts;
    opts.cache_path = path;
    Service cold(opts);
    first = cold.handle_line(rq.serialize());
    ASSERT_NE(first.find("\"ok\":true"), std::string::npos) << first;
    EXPECT_EQ(cold.metrics().persist_appends, 1u);
  }  // "restart": the service (and its cache) is gone; only the file remains

  std::atomic<int> executions{0};
  ServiceOptions opts;
  opts.cache_path = path;
  opts.executor = [&](const jobs::KernelRequest& krq, const exec::Budget& b) {
    executions.fetch_add(1);
    return jobs::run_kernel(krq, b);
  };
  Service warm(opts);
  EXPECT_GE(warm.metrics().warm_entries, 1u);
  EXPECT_EQ(warm.handle_line(rq.serialize()), first)
      << "a warm restart must serve the cached bytes unchanged";
  EXPECT_EQ(executions.load(), 0)
      << "a warm restart must not re-execute the kernel";
  EXPECT_EQ(warm.metrics().hits, 1u);
  std::remove(path.c_str());
}

TEST(ServePersist, TornTailIsTruncatedAndEarlierEntriesSurvive) {
  const std::string path = temp_segment_path("torn");
  std::remove(path.c_str());
  {
    CacheSegmentFile seg(path);
    seg.load([](std::string&&, std::string&&) {});
    seg.append("k1", "value-one");
    seg.append("k2", "value-two");
    fi::arm_serve_fault(fi::ServeFault::CacheTornWrite, 0, /*param=*/5);
    seg.append("k3", "value-three");  // torn: only 5 bytes reach the file
    fi::disarm_serve_faults();
    EXPECT_TRUE(seg.stats().wedged);
    EXPECT_EQ(seg.stats().appends, 2u);
  }
  SegmentStats stats;
  const auto live = load_live_set(path, &stats);
  EXPECT_EQ(stats.torn_bytes, 5u);
  ASSERT_EQ(live.size(), 2u);
  EXPECT_EQ(live.at("k1"), "value-one");
  EXPECT_EQ(live.at("k2"), "value-two");
  // Recovery truncated the torn tail: a second load sees a clean file.
  SegmentStats again;
  EXPECT_EQ(load_live_set(path, &again), live);
  EXPECT_EQ(again.torn_bytes, 0u);
  std::remove(path.c_str());
}

TEST(ServePersist, CorruptCrcMidFileDropsTheTailOnly) {
  const std::string path = temp_segment_path("crc");
  std::remove(path.c_str());
  {
    CacheSegmentFile seg(path);
    seg.load([](std::string&&, std::string&&) {});
    seg.append("ka", "alpha");
    seg.append("kb", "beta");
    seg.append("kc", "gamma");
  }
  {
    // Flip one payload byte inside the second record. Offsets: magic(8),
    // rec = 8 + klen + vlen + 4; rec1 = 8+2+5+4 = 19 bytes.
    FILE* f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, 8 + 19 + 8 + 1, SEEK_SET), 0);
    std::fputc('X', f);
    std::fclose(f);
  }
  SegmentStats stats;
  const auto live = load_live_set(path, &stats);
  ASSERT_EQ(live.size(), 1u) << "everything after a bad CRC is unframable";
  EXPECT_EQ(live.at("ka"), "alpha");
  EXPECT_GT(stats.torn_bytes, 0u);
  std::remove(path.c_str());
}

TEST(ServePersist, LastWriteWinsAndCompactionShrinksTheFile) {
  const std::string path = temp_segment_path("compact");
  std::remove(path.c_str());
  const std::string big(256, 'x');
  {
    CacheSegmentFile seg(path);
    seg.load([](std::string&&, std::string&&) {});
    for (int i = 0; i < 40; ++i) {
      seg.append("hot-key", big + std::to_string(i));
    }
    seg.append("other", "small");
  }
  SegmentStats stats;
  const auto live = load_live_set(path, &stats);
  ASSERT_EQ(live.size(), 2u);
  EXPECT_EQ(live.at("hot-key"), big + "39") << "last write must win";
  EXPECT_EQ(stats.superseded, 39u);
  EXPECT_EQ(stats.compactions, 1u)
      << "39 superseded copies outweigh 2 live records";
  SegmentStats after;
  EXPECT_EQ(load_live_set(path, &after), live)
      << "compaction must preserve the live set exactly";
  EXPECT_EQ(after.superseded, 0u);
  std::remove(path.c_str());
}

// --- Deterministic chaos schedules ------------------------------------------

TEST(ServeChaos, HundredFaultSchedulesLoseNoResponses) {
  constexpr int kSchedules = 100;
  constexpr int kThreads = 4;
  constexpr int kRequestsPerThread = 12;
  const char* kDesigns[] = {"adder:4", "adder:8", "mult:4", "mult:6"};

  const std::string path = temp_segment_path("chaos");
  for (int sched = 0; sched < kSchedules; ++sched) {
    std::remove(path.c_str());
    fi::disarm_serve_faults();

    // Derive this schedule's fault plan from its id alone.
    std::uint64_t rng = 0x5eedull * 2654435761ull + static_cast<std::uint64_t>(sched);
    const auto fault =
        static_cast<fi::ServeFault>(splitmix64(rng) % fi::kServeFaultCount);
    const std::uint64_t at_hit = splitmix64(rng) % 8;
    const std::uint64_t stall_ms = 150 + splitmix64(rng) % 150;
    fi::arm_serve_fault(fault, at_hit,
                        fault == fi::ServeFault::KernelStall ? stall_ms : 0);

    std::vector<std::vector<std::string>> responses(kThreads);
    {
      ServiceOptions opts;
      opts.workers = 3;
      opts.queue_limit = 8;
      opts.default_deadline_seconds = 0.1;
      opts.degrade_on_deadline = (sched % 2) == 1;
      opts.cache_path = path;
      opts.executor = [](const jobs::KernelRequest& krq, const exec::Budget&) {
        jobs::AttemptOutcome ao;  // fast deterministic fake kernel
        ao.ok = true;
        ao.out.value =
            static_cast<double>(krq.design.size()) + static_cast<double>(krq.seed % 7);
        ao.out.detail = "chaos-fake";
        return ao;
      };
      Service service(opts);

      std::vector<std::thread> threads;
      for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
          for (int i = 0; i < kRequestsPerThread; ++i) {
            Request rq = estimate_request(kDesigns[(t + i) % 4]);
            rq.id = "s" + std::to_string(sched) + "-t" + std::to_string(t) +
                    "-r" + std::to_string(i);
            rq.has_seed = true;
            rq.seed = static_cast<std::uint64_t>(i % 3);  // forces sharing
            responses[static_cast<std::size_t>(t)].push_back(
                service.handle_line(rq.serialize()));
          }
        });
      }
      for (auto& th : threads) th.join();  // no leaked waiters: all return
    }  // service destruction joins the pool — the "kill" for persistence

    fi::disarm_serve_faults();

    // Exactly one well-formed, correctly-addressed response per request,
    // and failures only of the classes the fault model can produce.
    for (int t = 0; t < kThreads; ++t) {
      ASSERT_EQ(responses[static_cast<std::size_t>(t)].size(),
                static_cast<std::size_t>(kRequestsPerThread))
          << "schedule " << sched << " thread " << t;
      for (int i = 0; i < kRequestsPerThread; ++i) {
        const std::string& body =
            responses[static_cast<std::size_t>(t)][static_cast<std::size_t>(i)];
        ResponseView v;
        ASSERT_TRUE(serve::parse_response(body, v))
            << "schedule " << sched << ": " << body;
        EXPECT_EQ(v.id, "s" + std::to_string(sched) + "-t" +
                            std::to_string(t) + "-r" + std::to_string(i))
            << "schedule " << sched << ": response delivered to the wrong "
            << "request";
        if (!v.ok) {
          EXPECT_TRUE(v.error == "internal" || v.error == "shed" ||
                      v.error == "deadline-exceeded" ||
                      v.error == "cancelled" || v.error == "budget-exhausted")
              << "schedule " << sched << ": unexpected class " << v.error;
        }
      }
    }

    // Crash discipline: whatever the fault did to the segment file, two
    // recovery loads agree byte for byte and every surviving value is a
    // complete, cacheable response.
    const auto live1 = load_live_set(path);
    const auto live2 = load_live_set(path);
    EXPECT_EQ(live1, live2) << "schedule " << sched
                            << ": recovery must be deterministic";
    for (const auto& [key, value] : live1) {
      ResponseView v;
      ASSERT_TRUE(serve::parse_response(value, v))
          << "schedule " << sched << ": cached garbage under " << key;
      EXPECT_TRUE(v.ok && v.has_value && !v.degraded)
          << "schedule " << sched << ": only complete results may persist";
    }
  }
  std::remove(path.c_str());
}

}  // namespace
