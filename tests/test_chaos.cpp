// Chaos harness for the serve tier (DESIGN.md §9): deterministic fault
// schedules driven through hlp::fi's process-global serve faults, asserting
// the tier's contract under faults — every request gets exactly one typed
// response, no waiter leaks, and the persistent cache recovers to a
// byte-identical live set after a mid-load kill.

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <functional>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "exec/fi.hpp"
#include "jobs/kernels.hpp"
#include "sandbox/sandbox.hpp"
#include "serve/cachefile.hpp"
#include "serve/protocol.hpp"
#include "serve/service.hpp"
#include "serve/workerpool.hpp"

namespace {

using namespace hlp;
using serve::CacheSegmentFile;
using serve::Op;
using serve::Request;
using serve::ResponseView;
using serve::SegmentStats;
using serve::Service;
using serve::ServiceOptions;

std::string temp_segment_path(const std::string& tag) {
  return ::testing::TempDir() + "hlp_seg_" + tag + "_" +
         std::to_string(::getpid()) + ".bin";
}

/// splitmix64: the schedule generator. Every fault choice in a schedule is
/// a pure function of the schedule id, so a failing schedule replays
/// exactly from its index alone.
std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// Load a segment into an ordered map (append order is irrelevant for
/// equality; the map makes comparison order-insensitive).
std::map<std::string, std::string> load_live_set(const std::string& path,
                                                 SegmentStats* stats = nullptr) {
  std::map<std::string, std::string> out;
  CacheSegmentFile seg(path);
  seg.load([&](std::string&& k, std::string&& v) {
    out.emplace(std::move(k), std::move(v));
  });
  if (stats) *stats = seg.stats();
  return out;
}

Request estimate_request(const std::string& design,
                         jobs::JobKind kind = jobs::JobKind::Symbolic) {
  Request rq;
  rq.op = Op::Estimate;
  rq.kind = kind;
  rq.design = design;
  return rq;
}

bool wait_for(const std::function<bool()>& pred, double seconds = 10.0) {
  const auto t0 = std::chrono::steady_clock::now();
  while (!pred()) {
    if (std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count() > seconds) {
      return false;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

// --- Crash-safe persistent cache --------------------------------------------

TEST(ServePersist, RestartServesWarmByteIdenticalWithoutExecuting) {
  const std::string path = temp_segment_path("warm");
  std::remove(path.c_str());

  Request rq = estimate_request("adder:8");
  rq.id = "warm-1";
  std::string first;
  {
    ServiceOptions opts;
    opts.cache_path = path;
    Service cold(opts);
    first = cold.handle_line(rq.serialize());
    ASSERT_NE(first.find("\"ok\":true"), std::string::npos) << first;
    EXPECT_EQ(cold.metrics().persist_appends, 1u);
  }  // "restart": the service (and its cache) is gone; only the file remains

  std::atomic<int> executions{0};
  ServiceOptions opts;
  opts.cache_path = path;
  opts.executor = [&](const jobs::KernelRequest& krq, const exec::Budget& b) {
    executions.fetch_add(1);
    return jobs::run_kernel(krq, b);
  };
  Service warm(opts);
  EXPECT_GE(warm.metrics().warm_entries, 1u);
  EXPECT_EQ(warm.handle_line(rq.serialize()), first)
      << "a warm restart must serve the cached bytes unchanged";
  EXPECT_EQ(executions.load(), 0)
      << "a warm restart must not re-execute the kernel";
  EXPECT_EQ(warm.metrics().hits, 1u);
  std::remove(path.c_str());
}

TEST(ServePersist, TornTailIsTruncatedAndEarlierEntriesSurvive) {
  const std::string path = temp_segment_path("torn");
  std::remove(path.c_str());
  {
    CacheSegmentFile seg(path);
    seg.load([](std::string&&, std::string&&) {});
    seg.append("k1", "value-one");
    seg.append("k2", "value-two");
    fi::arm_serve_fault(fi::ServeFault::CacheTornWrite, 0, /*param=*/5);
    seg.append("k3", "value-three");  // torn: only 5 bytes reach the file
    fi::disarm_serve_faults();
    EXPECT_TRUE(seg.stats().wedged);
    EXPECT_EQ(seg.stats().appends, 2u);
  }
  SegmentStats stats;
  const auto live = load_live_set(path, &stats);
  EXPECT_EQ(stats.torn_bytes, 5u);
  ASSERT_EQ(live.size(), 2u);
  EXPECT_EQ(live.at("k1"), "value-one");
  EXPECT_EQ(live.at("k2"), "value-two");
  // Recovery truncated the torn tail: a second load sees a clean file.
  SegmentStats again;
  EXPECT_EQ(load_live_set(path, &again), live);
  EXPECT_EQ(again.torn_bytes, 0u);
  std::remove(path.c_str());
}

TEST(ServePersist, CorruptCrcMidFileDropsTheTailOnly) {
  const std::string path = temp_segment_path("crc");
  std::remove(path.c_str());
  {
    CacheSegmentFile seg(path);
    seg.load([](std::string&&, std::string&&) {});
    seg.append("ka", "alpha");
    seg.append("kb", "beta");
    seg.append("kc", "gamma");
  }
  {
    // Flip one payload byte inside the second record. Offsets: magic(8),
    // rec = 8 + klen + vlen + 4; rec1 = 8+2+5+4 = 19 bytes.
    FILE* f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, 8 + 19 + 8 + 1, SEEK_SET), 0);
    std::fputc('X', f);
    std::fclose(f);
  }
  SegmentStats stats;
  const auto live = load_live_set(path, &stats);
  ASSERT_EQ(live.size(), 1u) << "everything after a bad CRC is unframable";
  EXPECT_EQ(live.at("ka"), "alpha");
  EXPECT_GT(stats.torn_bytes, 0u);
  std::remove(path.c_str());
}

TEST(ServePersist, LastWriteWinsAndCompactionShrinksTheFile) {
  const std::string path = temp_segment_path("compact");
  std::remove(path.c_str());
  const std::string big(256, 'x');
  {
    CacheSegmentFile seg(path);
    seg.load([](std::string&&, std::string&&) {});
    for (int i = 0; i < 40; ++i) {
      seg.append("hot-key", big + std::to_string(i));
    }
    seg.append("other", "small");
  }
  SegmentStats stats;
  const auto live = load_live_set(path, &stats);
  ASSERT_EQ(live.size(), 2u);
  EXPECT_EQ(live.at("hot-key"), big + "39") << "last write must win";
  EXPECT_EQ(stats.superseded, 39u);
  EXPECT_EQ(stats.compactions, 1u)
      << "39 superseded copies outweigh 2 live records";
  SegmentStats after;
  EXPECT_EQ(load_live_set(path, &after), live)
      << "compaction must preserve the live set exactly";
  EXPECT_EQ(after.superseded, 0u);
  std::remove(path.c_str());
}

// --- Deterministic chaos schedules ------------------------------------------

TEST(ServeChaos, HundredFaultSchedulesLoseNoResponses) {
  constexpr int kSchedules = 100;
  constexpr int kThreads = 4;
  constexpr int kRequestsPerThread = 12;
  const char* kDesigns[] = {"adder:4", "adder:8", "mult:4", "mult:6"};

  const std::string path = temp_segment_path("chaos");
  for (int sched = 0; sched < kSchedules; ++sched) {
    std::remove(path.c_str());
    fi::disarm_serve_faults();

    // Derive this schedule's fault plan from its id alone. Only the four
    // in-process faults: the Child* crash faults fire behind fork() and
    // have their own schedules (ServeCrash below).
    std::uint64_t rng = 0x5eedull * 2654435761ull + static_cast<std::uint64_t>(sched);
    const auto fault = static_cast<fi::ServeFault>(splitmix64(rng) % 4);
    const std::uint64_t at_hit = splitmix64(rng) % 8;
    const std::uint64_t stall_ms = 150 + splitmix64(rng) % 150;
    fi::arm_serve_fault(fault, at_hit,
                        fault == fi::ServeFault::KernelStall ? stall_ms : 0);

    std::vector<std::vector<std::string>> responses(kThreads);
    {
      ServiceOptions opts;
      opts.workers = 3;
      opts.queue_limit = 8;
      opts.default_deadline_seconds = 0.1;
      opts.degrade_on_deadline = (sched % 2) == 1;
      opts.cache_path = path;
      opts.executor = [](const jobs::KernelRequest& krq, const exec::Budget&) {
        jobs::AttemptOutcome ao;  // fast deterministic fake kernel
        ao.ok = true;
        ao.out.value =
            static_cast<double>(krq.design.size()) + static_cast<double>(krq.seed % 7);
        ao.out.detail = "chaos-fake";
        return ao;
      };
      Service service(opts);

      std::vector<std::thread> threads;
      for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
          for (int i = 0; i < kRequestsPerThread; ++i) {
            Request rq = estimate_request(kDesigns[(t + i) % 4]);
            rq.id = "s" + std::to_string(sched) + "-t" + std::to_string(t) +
                    "-r" + std::to_string(i);
            rq.has_seed = true;
            rq.seed = static_cast<std::uint64_t>(i % 3);  // forces sharing
            responses[static_cast<std::size_t>(t)].push_back(
                service.handle_line(rq.serialize()));
          }
        });
      }
      for (auto& th : threads) th.join();  // no leaked waiters: all return
    }  // service destruction joins the pool — the "kill" for persistence

    fi::disarm_serve_faults();

    // Exactly one well-formed, correctly-addressed response per request,
    // and failures only of the classes the fault model can produce.
    for (int t = 0; t < kThreads; ++t) {
      ASSERT_EQ(responses[static_cast<std::size_t>(t)].size(),
                static_cast<std::size_t>(kRequestsPerThread))
          << "schedule " << sched << " thread " << t;
      for (int i = 0; i < kRequestsPerThread; ++i) {
        const std::string& body =
            responses[static_cast<std::size_t>(t)][static_cast<std::size_t>(i)];
        ResponseView v;
        ASSERT_TRUE(serve::parse_response(body, v))
            << "schedule " << sched << ": " << body;
        EXPECT_EQ(v.id, "s" + std::to_string(sched) + "-t" +
                            std::to_string(t) + "-r" + std::to_string(i))
            << "schedule " << sched << ": response delivered to the wrong "
            << "request";
        if (!v.ok) {
          EXPECT_TRUE(v.error == "internal" || v.error == "shed" ||
                      v.error == "deadline-exceeded" ||
                      v.error == "cancelled" || v.error == "budget-exhausted")
              << "schedule " << sched << ": unexpected class " << v.error;
        }
      }
    }

    // Crash discipline: whatever the fault did to the segment file, two
    // recovery loads agree byte for byte and every surviving value is a
    // complete, cacheable response.
    const auto live1 = load_live_set(path);
    const auto live2 = load_live_set(path);
    EXPECT_EQ(live1, live2) << "schedule " << sched
                            << ": recovery must be deterministic";
    for (const auto& [key, value] : live1) {
      ResponseView v;
      ASSERT_TRUE(serve::parse_response(value, v))
          << "schedule " << sched << ": cached garbage under " << key;
      EXPECT_TRUE(v.ok && v.has_value && !v.degraded)
          << "schedule " << sched << ": only complete results may persist";
    }
  }
  std::remove(path.c_str());
}

// --- Crash-fault schedules (process-isolated sandbox, DESIGN.md §11) --------
//
// ServeCrash.* is deliberately named outside the TSan allowlist: these
// schedules fork sandbox children from a multithreaded service, which TSan
// cannot follow. The ASan chaos job runs them in full.

/// Fast deterministic fake kernel for isolated children: the crash faults
/// fire before it runs, so a crashing round never reaches it.
jobs::AttemptOutcome crash_fake_kernel(const jobs::KernelRequest& krq,
                                       const exec::Budget&) {
  jobs::AttemptOutcome ao;
  ao.ok = true;
  ao.out.value = static_cast<double>(krq.design.size());
  ao.out.detail = "crash-fake";
  return ao;
}

TEST(ServeCrash, HundredCrashStormLosesNoResponsesAndRestoresCapacity) {
  // The survival proof: >= 100 deterministic child faults mixing
  // segfaults, OOM kills, and non-cooperative wedges, across 4 client
  // threads — zero lost responses, the daemon process never dies, and
  // pool capacity is restored after every fault.
  constexpr int kRounds = 100;
  constexpr int kThreads = 4;
  const char* kDesigns[] = {"adder:4", "adder:8", "mult:4", "mult:6"};

  ServiceOptions opts;
  opts.workers = 4;
  opts.isolate = serve::IsolateMode::All;
  opts.default_deadline_seconds = 0.15;  // bounds every wedged child
  opts.quarantine_threshold = 0;  // breaker measured separately below
  opts.executor = crash_fake_kernel;
  Service service(opts);

  int armed_segv = 0, armed_oom = 0, armed_wedge = 0;
  for (int round = 0; round < kRounds; ++round) {
    fi::disarm_serve_faults();
    std::uint64_t rng =
        0xc4a5ull * 2654435761ull + static_cast<std::uint64_t>(round);
    fi::ServeFault fault;
    switch (splitmix64(rng) % 3) {
      case 0: fault = fi::ServeFault::ChildSegv; ++armed_segv; break;
      case 1: fault = fi::ServeFault::ChildOom; ++armed_oom; break;
      default: fault = fi::ServeFault::ChildWedge; ++armed_wedge; break;
    }
    const std::uint64_t at_hit = splitmix64(rng) % kThreads;
    fi::arm_serve_fault(fault, at_hit);

    std::vector<std::string> responses(kThreads);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        Request rq = estimate_request(kDesigns[t]);
        rq.id = "r" + std::to_string(round) + "-t" + std::to_string(t);
        rq.has_seed = true;
        // Unique seed per (round, thread): every request is a fresh miss.
        rq.seed = static_cast<std::uint64_t>(round) * kThreads +
                  static_cast<std::uint64_t>(t);
        responses[static_cast<std::size_t>(t)] =
            service.handle_line(rq.serialize());
      });
    }
    for (auto& th : threads) th.join();  // zero lost responses: all return

    int failures = 0;
    for (int t = 0; t < kThreads; ++t) {
      const std::string& body = responses[static_cast<std::size_t>(t)];
      ResponseView v;
      ASSERT_TRUE(serve::parse_response(body, v))
          << "round " << round << ": " << body;
      EXPECT_EQ(v.id, "r" + std::to_string(round) + "-t" + std::to_string(t))
          << "round " << round;
      if (v.ok) continue;
      ++failures;
      // Crash class -> wire class is fixed: segv is internal, an OOM kill
      // is budget-exhausted, a wedge dies as a wall-deadline abandonment.
      switch (fault) {
        case fi::ServeFault::ChildSegv:
          EXPECT_EQ(v.error, "internal") << "round " << round;
          break;
        case fi::ServeFault::ChildOom:
          EXPECT_EQ(v.error, "budget-exhausted") << "round " << round;
          break;
        default:
          EXPECT_EQ(v.error, "deadline-exceeded") << "round " << round;
          break;
      }
    }
    EXPECT_EQ(failures, 1)
        << "round " << round << ": exactly the faulted request fails";
  }
  fi::disarm_serve_faults();

  // Every fault becomes a typed crash report (the wedge's counter may lag
  // its response: the waiter answers at the deadline, the worker reaps the
  // child at the wall kill shortly after).
  ASSERT_TRUE(wait_for([&] {
    return service.health().child_crashes ==
           static_cast<std::uint64_t>(kRounds);
  })) << service.health().child_crashes;
  const serve::ServiceHealth h = service.health();
  using CK = hlp::sandbox::CrashKind;
  EXPECT_EQ(h.crashes_by_kind[static_cast<std::size_t>(CK::Signal)],
            static_cast<std::uint64_t>(armed_segv));
  EXPECT_EQ(h.crashes_by_kind[static_cast<std::size_t>(CK::OomKill)],
            static_cast<std::uint64_t>(armed_oom));
  EXPECT_EQ(h.crashes_by_kind[static_cast<std::size_t>(CK::WallTimeout)],
            static_cast<std::uint64_t>(armed_wedge));

  // Capacity restored: every worker thread is back (wedged children were
  // reaped, any superseded slot was replaced), and the service still
  // executes clean requests.
  ASSERT_TRUE(wait_for([&] {
    const serve::ServiceHealth now = service.health();
    return now.busy == 0 && now.live == opts.workers && now.wedged == 0;
  }));
  Request clean = estimate_request("adder:8");
  clean.id = "after-the-storm";
  ResponseView v;
  ASSERT_TRUE(serve::parse_response(service.handle_line(clean.serialize()), v));
  EXPECT_TRUE(v.ok) << "the service must execute normally after 100 crashes";
  EXPECT_EQ(service.health().isolated,
            static_cast<std::uint64_t>(kRounds * kThreads + 1));
}

TEST(ServeCrash, RespawnCounterMatchesWedgeCountExactly) {
  // Ten wedged tasks through a two-slot pool: the supervisor must replace
  // each wedged thread exactly once and end with full capacity.
  constexpr int kWedges = 10;
  serve::WorkerPool pool(2, 64);
  std::atomic<bool> release{false};
  std::atomic<int> finished{0};
  for (int i = 0; i < kWedges; ++i) {
    ASSERT_TRUE(pool.try_submit(
        [&] {
          wait_for([&] { return release.load(); }, 60.0);
          finished.fetch_add(1);
        },
        serve::WorkerPool::Clock::now() + std::chrono::milliseconds(30)));
  }
  ASSERT_TRUE(wait_for(
      [&] {
        return pool.respawns() == static_cast<std::uint64_t>(kWedges) &&
               pool.live() == 2;
      },
      30.0))
      << "respawns=" << pool.respawns() << " live=" << pool.live();
  EXPECT_EQ(pool.live(), 2) << "capacity restored after every supersede";
  EXPECT_EQ(pool.busy(), kWedges) << "every wedge still holds its thread";
  release.store(true);
  ASSERT_TRUE(wait_for([&] { return finished.load() == kWedges; }));
  pool.stop();
  EXPECT_EQ(pool.respawns(), static_cast<std::uint64_t>(kWedges))
      << "exactly one respawn per wedged task, none after release";
}

TEST(ServeCrash, PoisonFingerprintQuarantinesAfterExactlyKThenRehabilitates) {
  ServiceOptions opts;
  opts.workers = 2;
  opts.isolate = serve::IsolateMode::All;
  opts.quarantine_threshold = 3;
  opts.quarantine_base_expiry_seconds = 0.3;
  opts.executor = crash_fake_kernel;
  Service service(opts);

  auto poison_line = [](int i) {
    Request rq = estimate_request("adder:4");
    rq.id = "p" + std::to_string(i);
    rq.use_cache = false;  // force execution on every attempt
    return rq.serialize();
  };

  // K-1 crashes: the breaker counts but stays closed (still executing).
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(service.health().quarantine_trips, 0u)
        << "tripped before the K-th failure (i=" << i << ")";
    fi::arm_serve_fault(fi::ServeFault::ChildSegv, 0);
    ResponseView v;
    ASSERT_TRUE(serve::parse_response(service.handle_line(poison_line(i)), v));
    EXPECT_FALSE(v.ok);
    EXPECT_EQ(v.error, "internal");
  }
  fi::disarm_serve_faults();
  EXPECT_EQ(service.health().quarantine_trips, 1u)
      << "the K-th hard failure must trip the breaker";

  // Open: answered degraded from the tier-0 static bound, in microseconds
  // not kernel-seconds, without forking another child.
  const std::uint64_t isolated_before = service.health().isolated;
  const auto t0 = std::chrono::steady_clock::now();
  ResponseView q;
  ASSERT_TRUE(serve::parse_response(service.handle_line(poison_line(100)), q));
  const double ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                t0)
          .count();
  EXPECT_TRUE(q.ok) << "netlist-backed kinds degrade, not error";
  EXPECT_TRUE(q.degraded);
  EXPECT_NE(q.detail.find("quarantined"), std::string::npos) << q.detail;
  EXPECT_LT(ms, 10.0) << "a quarantined answer must not cost a kernel run";
  EXPECT_EQ(service.health().isolated, isolated_before)
      << "an open breaker must not fork a child";
  EXPECT_GE(service.health().quarantine_served, 1u);
  EXPECT_EQ(service.health().quarantine_open, 1u);

  // A different design is unaffected by the poison fingerprint.
  ResponseView other;
  ASSERT_TRUE(serve::parse_response(
      service.handle_line(estimate_request("adder:8").serialize()), other));
  EXPECT_TRUE(other.ok);
  EXPECT_FALSE(other.degraded);

  // Past expiry the breaker half-opens: one probe executes for real, and
  // its delivered outcome rehabilitates the fingerprint.
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  ResponseView probe;
  ASSERT_TRUE(
      serve::parse_response(service.handle_line(poison_line(101)), probe));
  EXPECT_TRUE(probe.ok);
  EXPECT_FALSE(probe.degraded) << "the probe ran the real kernel";
  EXPECT_EQ(service.health().quarantine_rehabilitated, 1u);
  EXPECT_EQ(service.health().quarantine_open, 0u);
  EXPECT_GT(service.health().isolated, isolated_before);
}

}  // namespace
