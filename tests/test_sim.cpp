#include <gtest/gtest.h>

#include "netlist/generators.hpp"
#include "netlist/words.hpp"
#include "sim/glitch_sim.hpp"
#include "sim/power.hpp"
#include "sim/simulator.hpp"
#include "sim/streams.hpp"
#include "stats/rng.hpp"

namespace {

using namespace hlp;
using namespace hlp::sim;
using netlist::GateKind;
using netlist::Netlist;

TEST(Simulator, SequentialCounter) {
  // 2-bit counter out of toggle flops.
  Netlist nl;
  auto q0 = nl.add_dff();
  auto q1 = nl.add_dff();
  auto nq0 = nl.add_unary(GateKind::Not, q0);
  nl.set_dff_input(q0, nq0);
  auto x = nl.add_binary(GateKind::Xor, q1, q0);
  nl.set_dff_input(q1, x);
  Simulator s(nl);
  std::vector<int> seen;
  for (int c = 0; c < 8; ++c) {
    s.eval();
    seen.push_back((s.value(q1) << 1) | s.value(q0));
    s.tick();
  }
  EXPECT_EQ(seen, (std::vector<int>{0, 1, 2, 3, 0, 1, 2, 3}));
}

TEST(ActivityCollector, CountsToggles) {
  Netlist nl;
  auto a = nl.add_input();
  auto b = nl.add_unary(GateKind::Not, a);
  Simulator s(nl);
  ActivityCollector col(nl);
  for (int c = 0; c < 10; ++c) {
    s.set_input(a, c % 2);
    s.eval();
    col.record(s);
  }
  auto acts = col.activities();
  EXPECT_NEAR(acts[a], 1.0, 1e-12);
  EXPECT_NEAR(acts[b], 1.0, 1e-12);
}

TEST(Streams, RandomStreamSignalProbability) {
  stats::Rng rng(5);
  auto s = random_stream(16, 4000, 0.25, rng);
  auto q = stats::signal_probabilities(s);
  for (double qi : q) EXPECT_NEAR(qi, 0.25, 0.05);
}

TEST(Streams, CorrelatedStreamHasLowActivity) {
  stats::Rng rng(5);
  auto hot = correlated_stream(8, 4000, 0.95, rng);
  auto cold = correlated_stream(8, 4000, 0.0, rng);
  double a_hot = stats::avg_hamming_per_cycle(hot);
  double a_cold = stats::avg_hamming_per_cycle(cold);
  EXPECT_LT(a_hot, a_cold * 0.3);
}

TEST(Streams, CounterStreamLsbToggles) {
  auto s = counter_stream(8, 256);
  auto e = stats::switching_activities(s);
  EXPECT_NEAR(e[0], 1.0, 1e-12);   // LSB toggles every cycle
  EXPECT_NEAR(e[7], 1.0 / 255.0, 1e-9);  // MSB toggles once (at 127 -> 128)
}

TEST(Streams, GaussianWalkSignBitsCorrelated) {
  stats::Rng rng(5);
  auto s = gaussian_walk_stream(12, 4000, 0.99, 0.2, rng);
  auto e = stats::switching_activities(s);
  // MSB (sign region) switches far less than LSB (noise region).
  EXPECT_LT(e[11], e[0] * 0.5);
}

TEST(Power, ScalesWithActivityAndCap) {
  auto mod = netlist::adder_module(8);
  std::vector<double> low(mod.netlist.gate_count(), 0.1);
  std::vector<double> high(mod.netlist.gate_count(), 0.4);
  PowerParams p;
  auto rl = compute_power(mod.netlist, low, p);
  auto rh = compute_power(mod.netlist, high, p);
  EXPECT_NEAR(rh.total_power / rl.total_power, 4.0, 1e-9);
  EXPECT_GT(rl.total_power, 0.0);
}

TEST(Power, ComponentBreakdownSumsToTotal) {
  auto mod = netlist::adder_module(4);
  std::vector<double> acts(mod.netlist.gate_count(), 0.25);
  std::vector<std::string> labels(mod.netlist.gate_count());
  for (std::size_t i = 0; i < labels.size(); ++i)
    labels[i] = (i % 2) ? "even" : "odd";
  auto by = switched_cap_by_component(mod.netlist, acts, labels);
  auto rep = compute_power(mod.netlist, acts);
  double sum = 0.0;
  for (auto& [k, v] : by) sum += v;
  EXPECT_NEAR(sum, rep.switched_cap, 1e-9);
}

TEST(GlitchSim, XorChainGlitches) {
  // Unbalanced XOR chain: x ^ x ^ x ... arrival-time skew produces glitches
  // under unit delay when driven by a common toggling input via different
  // depths.
  Netlist nl;
  auto a = nl.add_input();
  auto b = nl.add_input();
  // path1 = a (level 0); path2 = NOT NOT NOT a (level 3).
  auto n1 = nl.add_unary(GateKind::Not, a);
  auto n2 = nl.add_unary(GateKind::Not, n1);
  auto n3 = nl.add_unary(GateKind::Not, n2);
  auto x = nl.add_binary(GateKind::Xor, a, n3);
  auto y = nl.add_binary(GateKind::And, x, b);
  nl.mark_output(y);
  // x functionally = a ^ !a = 1 constant; all its activity is glitching.
  stats::Rng rng(3);
  auto in = random_stream(2, 2000, 0.5, rng);
  auto res = simulate_glitches(nl, in);
  EXPECT_NEAR(res.functional_activity[x], 0.0, 1e-12);
  EXPECT_GT(res.total_activity[x], 0.3);
}

TEST(GlitchSim, TotalAtLeastFunctional) {
  auto mod = netlist::multiplier_module(5);
  stats::Rng rng(17);
  auto in = random_stream(10, 300, 0.5, rng);
  auto res = simulate_glitches(mod.netlist, in);
  for (std::size_t g = 0; g < res.total_activity.size(); ++g)
    EXPECT_GE(res.total_activity[g] + 1e-12, res.functional_activity[g]);
}

TEST(GlitchSim, FunctionalMatchesZeroDelaySim) {
  auto mod = netlist::adder_module(6);
  stats::Rng rng(23);
  auto in = random_stream(12, 500, 0.5, rng);
  auto res = simulate_glitches(mod.netlist, in);
  auto zero = simulate_activities(mod.netlist, in);
  for (std::size_t g = 0; g < zero.size(); ++g)
    EXPECT_NEAR(res.functional_activity[g], zero[g], 1e-9);
}

TEST(SimulateActivities, OutputStreamMatchesManualSim) {
  auto mod = netlist::parity_module(4);
  stats::Rng rng(2);
  auto in = random_stream(4, 100, 0.5, rng);
  stats::VectorStream out;
  simulate_activities(mod.netlist, in, &out);
  ASSERT_EQ(out.words.size(), in.words.size());
  for (std::size_t t = 0; t < in.words.size(); ++t) {
    bool parity = __builtin_popcountll(in.words[t]) % 2;
    EXPECT_EQ(out.words[t] & 1, parity ? 1u : 0u);
  }
}

TEST(WideNetlist, SetAllInputsAndOutputBitsThrowBeyond64) {
  // 70 inputs / 70 outputs: the packed-word entry points must refuse
  // instead of silently truncating to the low 64 lines.
  Netlist nl;
  std::vector<netlist::GateId> ins;
  for (int i = 0; i < 70; ++i) ins.push_back(nl.add_input());
  for (int i = 0; i < 70; ++i) {
    auto b = nl.add_unary(GateKind::Buf, ins[static_cast<std::size_t>(i)]);
    nl.mark_output(b);
  }
  Simulator s(nl);
  EXPECT_THROW(s.set_all_inputs(0), std::out_of_range);
  EXPECT_THROW((void)s.output_bits(), std::out_of_range);

  // The span interfaces drive and read every line, including those past 64.
  std::vector<std::uint8_t> bits(70, 0);
  bits[67] = 1;
  bits[3] = 1;
  s.set_inputs(bits);
  s.eval();
  std::vector<std::uint8_t> out(70, 0xff);
  s.read_outputs(out);
  for (int i = 0; i < 70; ++i)
    EXPECT_EQ(out[static_cast<std::size_t>(i)], (i == 67 || i == 3) ? 1 : 0);

  // Undersized spans are rejected too.
  std::vector<std::uint8_t> small(69);
  EXPECT_THROW(s.set_inputs(small), std::out_of_range);
  EXPECT_THROW(s.read_outputs(small), std::out_of_range);
}

TEST(Streams, ZipAndConcat) {
  auto a = counter_stream(4, 10);
  auto b = counter_stream(4, 10, 5);
  auto z = zip_streams(a, b);
  EXPECT_EQ(z.width, 8);
  EXPECT_EQ(z.words[0], (5ull << 4) | 0ull);
  auto c = concat_streams({a, b});
  EXPECT_EQ(c.words.size(), 20u);
}

}  // namespace
