#include <gtest/gtest.h>

#include "cdfg/generators.hpp"
#include "core/scheduling_power.hpp"
#include "stats/rng.hpp"

namespace {

using namespace hlp;
using namespace hlp::core;
using cdfg::Cdfg;
using cdfg::OpId;
using cdfg::OpKind;

TEST(OpEnergy, MultiplierQuadraticAdderLinear) {
  OpEnergyModel m;
  EXPECT_NEAR(m.of(OpKind::Add, 16) / m.of(OpKind::Add, 8), 2.0, 1e-12);
  EXPECT_NEAR(m.of(OpKind::Mul, 16) / m.of(OpKind::Mul, 8), 4.0, 1e-12);
}

TEST(CdfgEnergy, ActivationProbScales) {
  auto g = cdfg::fir_cdfg(4);
  OpEnergyModel m;
  double full = cdfg_energy(g, m);
  std::vector<double> half(g.size(), 0.5);
  EXPECT_NEAR(cdfg_energy(g, m, half), full / 2.0, 1e-9);
}

TEST(Monteiro, ManagesMuxInBranchingGraph) {
  auto g = cdfg::branching_cdfg(2, 3, 7);
  auto pm = monteiro_schedule(g, 4);
  EXPECT_FALSE(pm.managed_muxes.empty());
  // Some ops must have activation probability < 1.
  int shut = 0;
  for (double p : pm.activation_prob)
    if (p < 1.0) ++shut;
  EXPECT_GT(shut, 0);
}

TEST(Monteiro, SavesExpectedEnergy) {
  auto g = cdfg::branching_cdfg(3, 4, 9);
  OpEnergyModel m;
  auto pm = monteiro_schedule(g, 6);
  double e_pm = cdfg_energy(g, m, pm.activation_prob);
  double e_base = cdfg_energy(g, m);
  EXPECT_LT(e_pm, e_base);
}

TEST(Monteiro, RespectsLatencyBound) {
  auto g = cdfg::branching_cdfg(3, 3, 11);
  auto base = cdfg::asap(g);
  int slack = 3;
  auto pm = monteiro_schedule(g, slack);
  EXPECT_LE(pm.schedule.length, base.length + slack);
  // Added edges are honored: branch ops start after the control settles.
  for (auto [from, to] : pm.added_edges)
    EXPECT_GE(pm.schedule.start[to],
              pm.schedule.start[from] + 1);
}

TEST(Monteiro, ZeroSlackManagesFewerMuxes) {
  auto g = cdfg::branching_cdfg(3, 4, 13);
  auto tight = monteiro_schedule(g, 0);
  auto loose = monteiro_schedule(g, 8);
  EXPECT_LE(tight.managed_muxes.size(), loose.managed_muxes.size());
}

TEST(Binding, RoundRobinRespectsLimits) {
  auto g = cdfg::fir_cdfg(8);
  std::map<OpKind, int> limits{{OpKind::Mul, 2}, {OpKind::Add, 2}};
  auto s = cdfg::list_schedule(g, limits);
  auto binding = bind_round_robin(g, s, limits);
  for (OpId id = 0; id < g.size(); ++id) {
    if (binding[id] < 0) continue;
    EXPECT_LT(binding[id], 2);
  }
}

TEST(ActivityDriven, ReducesFuInputSwitching) {
  // Independent products over shared inputs, created interleaved: the
  // affinity-driven scheduler should group same-operand products on the
  // single multiplier and strictly cut its input switching.
  auto g = cdfg::operand_sharing_cdfg(4, 4);
  std::map<OpKind, int> limits{{OpKind::Mul, 1}, {OpKind::Add, 1}};
  auto plain = cdfg::list_schedule(g, limits);
  auto act = activity_driven_schedule(g, limits);

  // Data: correlated walk on the inputs.
  std::vector<std::vector<std::int64_t>> inputs;
  stats::Rng rng(3);
  std::size_t iters = 200;
  int n_inputs = 0;
  for (OpId i = 0; i < g.size(); ++i)
    if (g.op(i).kind == OpKind::Input) ++n_inputs;
  for (int i = 0; i < n_inputs; ++i) {
    std::vector<std::int64_t> vs;
    std::int64_t v = rng.uniform_int(0, 255);
    for (std::size_t t = 0; t < iters; ++t) {
      v = (v + rng.uniform_int(-3, 3)) & 0xFF;
      vs.push_back(v);
    }
    inputs.push_back(vs);
  }
  auto tr = cdfg::simulate_cdfg(g, inputs);
  auto b_plain = bind_round_robin(g, plain, limits);
  auto b_act = bind_round_robin(g, act, limits);
  double sw_plain = fu_input_switching(g, plain, b_plain, tr);
  double sw_act = fu_input_switching(g, act, b_act, tr);
  EXPECT_LT(sw_act, sw_plain);  // grouping shared operands must pay off
  EXPECT_EQ(act.start.size(), g.size());
  // And both schedules remain valid (all ops placed).
  for (OpId id = 0; id < g.size(); ++id) EXPECT_GE(act.start[id], 0);
}

TEST(ActivityDriven, RespectsResourceLimits) {
  auto g = cdfg::random_expr_tree(16, 0.5, 5);
  std::map<OpKind, int> limits{{OpKind::Mul, 1}, {OpKind::Add, 1}};
  auto s = activity_driven_schedule(g, limits);
  // Count concurrent ops per kind per step.
  cdfg::OpDelays d;
  std::map<std::pair<OpKind, int>, int> busy;
  for (OpId id = 0; id < g.size(); ++id) {
    auto k = g.op(id).kind;
    if (!Cdfg::is_compute(k)) continue;
    for (int t = s.start[id]; t < s.start[id] + d.of(k); ++t)
      ++busy[{k, t}];
  }
  for (auto& [key, cnt] : busy) EXPECT_LE(cnt, 1);
}

TEST(LoopFolding, SharesHiddenOperandsAcrossIterations) {
  auto res = evaluate_loop_folding(8, 500, 8, 7);
  EXPECT_GT(res.sw_unfolded, 0.0);
  EXPECT_LT(res.sw_folded, res.sw_unfolded);
  // With T=8 taps the data port is still 7/8 of the time when folded:
  // expect a large reduction.
  EXPECT_GT(res.saving(), 0.3);
}

TEST(LoopFolding, SavingGrowsWithTaps) {
  double prev = -1.0;
  for (int taps : {2, 4, 8, 16}) {
    auto res = evaluate_loop_folding(taps, 400, 8, 9);
    EXPECT_GE(res.saving(), prev - 0.05) << "taps " << taps;
    prev = res.saving();
  }
}

}  // namespace
