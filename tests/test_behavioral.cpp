#include <gtest/gtest.h>

#include "cdfg/datasim.hpp"
#include "cdfg/generators.hpp"
#include "core/behavioral_transform.hpp"
#include "sim/simulator.hpp"
#include "sim/streams.hpp"

namespace {

using namespace hlp;
using namespace hlp::core;

TEST(Csd, DigitsReconstructConstant) {
  for (int c : {1, 2, 3, 5, 7, 11, 15, 23, 64, 100, 127, 255}) {
    auto digits = csd_digits(c);
    int v = 0;
    for (auto [sh, sign] : digits) v += sign * (1 << sh);
    EXPECT_EQ(v, c);
    // CSD has no two adjacent nonzero digits.
    for (std::size_t i = 1; i < digits.size(); ++i)
      EXPECT_GE(digits[i].first - digits[i - 1].first, 2);
  }
}

TEST(Csd, FewerDigitsThanBinaryForRuns) {
  // 15 = 1111b (4 digits) = 10000-1 in CSD (2 digits).
  EXPECT_EQ(csd_digits(15).size(), 2u);
  EXPECT_EQ(csd_digits(255).size(), 2u);
}

TEST(Fig4, SecondOrderTransformSavesOpsSameCp) {
  auto direct = cdfg::polynomial_direct(2);
  auto square = polynomial_completed_square();
  auto md = cdfg_metrics(direct);
  auto ms = cdfg_metrics(square);
  EXPECT_EQ(ms.muls, 1);
  EXPECT_EQ(ms.adds, 2);
  EXPECT_LT(ms.total_compute_ops, md.total_compute_ops);
  EXPECT_LE(ms.critical_path, md.critical_path);  // no CP penalty (Fig. 4)
}

TEST(Fig5, ThirdOrderTransformSavesOpsButLengthensCp) {
  auto direct = cdfg::polynomial_direct(3);
  auto pre = polynomial_preconditioned_cubic();
  auto md = cdfg_metrics(direct);
  auto mp = cdfg_metrics(pre);
  EXPECT_EQ(mp.muls, 2);
  EXPECT_EQ(mp.adds, 3);
  EXPECT_EQ(mp.critical_path, 5);   // paper: length five
  EXPECT_EQ(md.critical_path, 4);   // paper: length four
  EXPECT_LT(mp.total_compute_ops, md.total_compute_ops);
  EXPECT_GT(mp.critical_path, md.critical_path);  // the Fig. 5 tradeoff
}

TEST(FirDatapath, BothVersionsComputeSameFilter) {
  std::vector<int> coeffs{3, 5, 2, 7};
  auto fir_mul = build_fir_datapath(coeffs, 6, false);
  auto fir_sa = build_fir_datapath(coeffs, 6, true);
  sim::Simulator s1(fir_mul.netlist), s2(fir_sa.netlist);
  stats::Rng rng(5);
  for (int c = 0; c < 200; ++c) {
    std::uint64_t x = rng.uniform_bits(6);
    s1.set_word(fir_mul.input, x);
    s2.set_word(fir_sa.input, x);
    s1.eval();
    s2.eval();
    EXPECT_EQ(s1.word_value(fir_mul.output), s2.word_value(fir_sa.output))
        << "cycle " << c;
    s1.tick();
    s2.tick();
  }
}

TEST(FirDatapath, ShiftAddVersionIsMuchSmaller) {
  std::vector<int> coeffs{3, 5, 2, 7, 9, 4, 6, 1};
  auto fir_mul = build_fir_datapath(coeffs, 8, false);
  auto fir_sa = build_fir_datapath(coeffs, 8, true);
  EXPECT_LT(fir_sa.netlist.logic_gate_count() * 2,
            fir_mul.netlist.logic_gate_count());
}

TEST(FirDatapath, LabelsCoverAllGates) {
  std::vector<int> coeffs{3, 5};
  auto fir = build_fir_datapath(coeffs, 4, true);
  EXPECT_EQ(fir.labels.size(), fir.netlist.gate_count());
  for (auto& l : fir.labels) EXPECT_FALSE(l.empty());
}

TEST(FirDatapath, TableOneShape) {
  // The Table I qualitative shape: constant-mult conversion slashes
  // execution-unit capacitance and total capacitance; control can rise.
  std::vector<int> coeffs{93, 57, 201, 39, 141, 78};
  auto fir_mul = build_fir_datapath(coeffs, 8, false);
  auto fir_sa = build_fir_datapath(coeffs, 8, true);
  stats::Rng rng(11);
  auto samples = sim::gaussian_walk_stream(8, 1200, 0.9, 0.3, rng);
  auto before = fir_capacitance_breakdown(fir_mul, samples);
  auto after = fir_capacitance_breakdown(fir_sa, samples);
  double total_before = 0.0, total_after = 0.0;
  for (auto& [k, v] : before) total_before += v;
  for (auto& [k, v] : after) total_after += v;
  // Direction of every Table I row is preserved. The paper's datapath is
  // time-multiplexed (the transformation removes the shared multiplier
  // entirely, 2.7x total); our parallel datapath shares the accumulation
  // tree between versions, so the measured factors are smaller — see
  // EXPERIMENTS.md E1 for the quantitative comparison.
  EXPECT_LT(total_after, 0.8 * total_before);
  EXPECT_LT(after["Execution units"], 0.75 * before["Execution units"]);
  // Exec units dominate before; their share shrinks after.
  EXPECT_GT(before["Execution units"] / total_before, 0.5);
  EXPECT_LT(after["Execution units"] / total_after,
            before["Execution units"] / total_before);
  // Control capacitance rises slightly (wider schedule counter).
  EXPECT_GE(after["Control logic"], before["Control logic"] * 0.95);
}

TEST(FirMac, MatchesParallelAndGolden) {
  std::vector<int> coeffs{93, 57, 201, 39};
  auto mac = build_fir_mac_datapath(coeffs, 6);
  auto par = build_fir_datapath(coeffs, 6, true);
  stats::Rng rng(3);
  auto samples = sim::gaussian_walk_stream(6, 150, 0.8, 0.3, rng);
  EXPECT_TRUE(fir_mac_matches_parallel(mac, par, samples));
}

TEST(FirMac, NonPowerOfTwoTapsWork) {
  std::vector<int> coeffs{3, 5, 7, 9, 11, 2, 13};  // 7 taps
  auto mac = build_fir_mac_datapath(coeffs, 5);
  auto par = build_fir_datapath(coeffs, 5, true);
  stats::Rng rng(5);
  auto samples = sim::random_stream(5, 120, 0.5, rng);
  EXPECT_TRUE(fir_mac_matches_parallel(mac, par, samples));
}

TEST(FirMac, MuchSmallerThanParallelMultipliers) {
  std::vector<int> coeffs{93, 57, 201, 39, 141, 78};
  auto mac = build_fir_mac_datapath(coeffs, 8);
  auto par = build_fir_datapath(coeffs, 8, false);
  EXPECT_LT(mac.netlist.logic_gate_count() * 3,
            par.netlist.logic_gate_count());
}

TEST(FirMac, TableOneArchitectureComparison) {
  // The paper's actual Table I comparison: time-multiplexed MAC before,
  // dedicated shift/add after. Total and exec-unit capacitance must drop
  // by a factor in the paper's ballpark (2.65x total).
  std::vector<int> coeffs{93, 57, 201, 39, 141, 78};
  auto mac = build_fir_mac_datapath(coeffs, 8);
  auto sa = build_fir_datapath(coeffs, 8, true);
  stats::Rng rng(11);
  auto samples = sim::gaussian_walk_stream(8, 500, 0.9, 0.3, rng);
  auto before = fir_mac_capacitance_breakdown(mac, samples);
  auto after = fir_capacitance_breakdown(sa, samples);
  double tb = 0, ta = 0;
  for (auto& [k, v] : before) tb += v;
  for (auto& [k, v] : after) ta += v;
  EXPECT_GT(tb / ta, 2.0);
  EXPECT_LT(tb / ta, 6.0);
  EXPECT_GT(before["Execution units"] / after["Execution units"], 1.5);
}

TEST(CompletedSquare, EvaluatesPolynomial) {
  auto g = polynomial_completed_square(16);
  // (x + b1)^2 + b2 with default consts = 3: (x+3)^2 + 3.
  std::vector<std::vector<std::int64_t>> in{{0, 1, 2, 7}};
  auto tr = cdfg::simulate_cdfg(g, in);
  for (std::size_t t = 0; t < 4; ++t) {
    std::int64_t x = in[0][t];
    EXPECT_EQ(tr.value[t][g.outputs()[0]], ((x + 3) * (x + 3) + 3) & 0xFFFF);
  }
}

}  // namespace
