#include <gtest/gtest.h>

#include "cdfg/cdfg.hpp"
#include "cdfg/datasim.hpp"
#include "cdfg/generators.hpp"

namespace {

using namespace hlp::cdfg;

TEST(Cdfg, AsapRespectsDelays) {
  Cdfg g;
  auto a = g.add_input("a");
  auto b = g.add_input("b");
  auto m = g.add_binary(OpKind::Mul, a, b);   // delay 2
  auto s = g.add_binary(OpKind::Add, m, a);   // delay 1
  g.mark_output(s);
  auto sch = asap(g);
  EXPECT_EQ(sch.start[m], 0);
  EXPECT_EQ(sch.start[s], 2);
  EXPECT_EQ(sch.length, 3);
}

TEST(Cdfg, AlapPushesLate) {
  Cdfg g;
  auto a = g.add_input();
  auto x = g.add_binary(OpKind::Add, a, a);
  auto y = g.add_binary(OpKind::Add, a, a);
  auto z = g.add_binary(OpKind::Add, x, y);
  g.mark_output(z);
  auto sch = alap(g, 5);
  EXPECT_EQ(sch.start[z], 4);
  EXPECT_EQ(sch.start[x], 3);
  EXPECT_EQ(sch.start[y], 3);
}

TEST(Cdfg, AlapThrowsBelowCriticalPath) {
  auto g = polynomial_horner(4);
  auto a = asap(g);
  EXPECT_THROW(alap(g, a.length - 1), std::invalid_argument);
  EXPECT_NO_THROW(alap(g, a.length));
}

TEST(Cdfg, ListScheduleHonorsResourceLimit) {
  Cdfg g;
  auto a = g.add_input();
  std::vector<OpId> adds;
  for (int i = 0; i < 6; ++i) adds.push_back(g.add_binary(OpKind::Add, a, a));
  for (auto v : adds) g.mark_output(v);
  std::map<OpKind, int> limits{{OpKind::Add, 2}};
  auto sch = list_schedule(g, limits);
  // With 2 adders and 6 unit-delay adds, at most 2 per step.
  std::map<int, int> per_step;
  for (auto v : adds) per_step[sch.start[v]]++;
  for (auto& [step, cnt] : per_step) EXPECT_LE(cnt, 2);
  EXPECT_GE(sch.length, 3);
}

TEST(Cdfg, ListScheduleMatchesAsapWhenUnconstrained) {
  auto g = fir_cdfg(6);
  auto a = asap(g);
  auto l = list_schedule(g, {});
  EXPECT_EQ(l.length, a.length);
}

TEST(Cdfg, LifetimesSpanDefToUse) {
  Cdfg g;
  auto a = g.add_input();
  auto x = g.add_binary(OpKind::Add, a, a);  // def at 1
  auto m = g.add_binary(OpKind::Mul, x, x);  // starts 1, ends 3
  auto y = g.add_binary(OpKind::Add, m, x);  // starts 3 -> x used at 3
  g.mark_output(y);
  auto sch = asap(g);
  auto lt = lifetimes(g, sch);
  EXPECT_EQ(lt.def[x], 1);
  EXPECT_EQ(lt.last_use[x], 3);
}

TEST(Generators, PolynomialOpCounts) {
  // Order-3 direct: 5 muls (x^2, x^3, 3 coefficient muls), 3 adds.
  auto dir = polynomial_direct(3);
  int muls = 0, adds = 0;
  for (OpId i = 0; i < dir.size(); ++i) {
    if (dir.op(i).kind == OpKind::Mul) ++muls;
    if (dir.op(i).kind == OpKind::Add) ++adds;
  }
  EXPECT_EQ(muls, 5);
  EXPECT_EQ(adds, 3);
  // Horner order 3: 3 muls, 3 adds.
  auto hor = polynomial_horner(3);
  muls = adds = 0;
  for (OpId i = 0; i < hor.size(); ++i) {
    if (hor.op(i).kind == OpKind::Mul) ++muls;
    if (hor.op(i).kind == OpKind::Add) ++adds;
  }
  EXPECT_EQ(muls, 3);
  EXPECT_EQ(adds, 3);
}

TEST(DataSim, PolynomialEvaluatesCorrectly) {
  // Horner with all consts = 3 (datasim default): y = ((3x+3)x+3)... check
  // against direct evaluation in int space for small x.
  auto g = polynomial_horner(2, 16);
  std::vector<std::vector<std::int64_t>> inputs{{0, 1, 2, 3, 4}};
  auto tr = simulate_cdfg(g, inputs);
  for (std::size_t t = 0; t < 5; ++t) {
    std::int64_t x = static_cast<std::int64_t>(t);
    std::int64_t expect = (3 * x + 3) * x + 3;
    EXPECT_EQ(tr.value[t][g.outputs()[0]], expect & 0xFFFF);
  }
}

TEST(DataSim, DirectAndHornerAgree) {
  auto d = polynomial_direct(3, 32);
  auto h = polynomial_horner(3, 32);
  std::vector<std::vector<std::int64_t>> in{{0, 1, 2, 5, 9, 12}};
  auto td = simulate_cdfg(d, in);
  auto th = simulate_cdfg(h, in);
  for (std::size_t t = 0; t < in[0].size(); ++t)
    EXPECT_EQ(td.value[t][d.outputs()[0]], th.value[t][h.outputs()[0]]);
}

TEST(DataSim, MuxSelects) {
  Cdfg g;
  auto c = g.add_input("c", 1);
  auto a = g.add_input("a");
  auto b = g.add_input("b");
  auto m = g.add_mux(c, a, b);
  g.mark_output(m);
  std::vector<std::vector<std::int64_t>> in{{0, 1, 0, 1}, {10, 10, 30, 30},
                                            {20, 20, 40, 40}};
  auto tr = simulate_cdfg(g, in);
  EXPECT_EQ(tr.value[0][m], 10);
  EXPECT_EQ(tr.value[1][m], 20);
  EXPECT_EQ(tr.value[2][m], 30);
  EXPECT_EQ(tr.value[3][m], 40);
}

TEST(DataSim, SwitchingBetweenIdenticalStreamsIsZero) {
  Cdfg g;
  auto a = g.add_input("a");
  auto x = g.add_binary(OpKind::Add, a, a);
  auto y = g.add_binary(OpKind::Add, a, a);
  g.mark_output(x);
  g.mark_output(y);
  std::vector<std::vector<std::int64_t>> in{{1, 5, 9, 13}};
  auto tr = simulate_cdfg(g, in);
  EXPECT_EQ(value_stream_switching(g, tr, x, y), 0.0);
}

class ExprTreeLeaves : public ::testing::TestWithParam<int> {};

TEST_P(ExprTreeLeaves, TreeHasExpectedStructure) {
  auto g = random_expr_tree(GetParam(), 0.4, 11);
  // A binary tree over n leaves has n-1 internal nodes (+1 output marker).
  int internal = 0, leaves = 0;
  for (OpId i = 0; i < g.size(); ++i) {
    if (g.op(i).kind == OpKind::Input) ++leaves;
    if (g.op(i).kind == OpKind::Add || g.op(i).kind == OpKind::Mul)
      ++internal;
  }
  EXPECT_EQ(leaves, GetParam());
  EXPECT_EQ(internal, GetParam() - 1);
  // Every non-output node has exactly one consumer (tree property).
  auto su = g.succs();
  for (OpId i = 0; i < g.size(); ++i)
    if (g.op(i).kind != OpKind::Output) {
      EXPECT_EQ(su[i].size(), 1u);
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, ExprTreeLeaves,
                         ::testing::Values(2, 4, 8, 16, 32));

TEST(Generators, BranchingCdfgHasMuxes) {
  auto g = branching_cdfg(3, 2, 5);
  int muxes = 0;
  for (OpId i = 0; i < g.size(); ++i)
    if (g.op(i).kind == OpKind::Mux) ++muxes;
  EXPECT_EQ(muxes, 3);
}

}  // namespace
