#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string_view>

#include "fsm/kiss.hpp"

/// libFuzzer entry point for the KISS2 reader. Contract: any byte sequence
/// either yields an Stg or throws std::invalid_argument — never a crash,
/// UB-sanitizer fault (e.g. an oversized shift from a hostile .o count), or
/// unbounded don't-care expansion. Small parsed machines are round-tripped
/// through the serializer; large ones are skipped because to_kiss2 emits one
/// line per (state, symbol) pair and a 16-input machine would legitimately
/// produce a multi-megabyte string, drowning the fuzzer in allocator time.
extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  std::string_view text(reinterpret_cast<const char*>(data), size);
  try {
    auto stg = hlp::fsm::parse_kiss2(text);
    if (stg.num_states() * stg.n_symbols() <= 4096)
      (void)hlp::fsm::to_kiss2(stg);
  } catch (const std::invalid_argument&) {
    // Expected rejection path for malformed input.
  }
  return 0;
}
