module seed_counter(clk, pi0, po0);
  input clk;
  input pi0;
  output po0;
  reg q0;
  wire d0;
  assign d0 = q0 ^ pi0;
  always @(posedge clk) begin
    q0 <= d0;
  end
  assign po0 = q0;
endmodule
