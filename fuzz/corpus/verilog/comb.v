module seed_comb(pi0, pi1, pi2, po0);
  input pi0;
  input pi1;
  input pi2;
  output po0;
  wire a;
  wire b;
  assign a = pi0 & pi1;
  assign b = pi2 ? a : 1'b0;
  assign po0 = ~b | pi1;
endmodule
