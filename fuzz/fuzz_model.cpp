#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "model/artifact.hpp"

/// libFuzzer entry point for the macromodel artifact layer. Two surfaces
/// take attacker-shaped bytes (DESIGN.md §12):
///
///  - decode_models: a registry file a crashed writer truncated or a disk
///    garbled must decode without crashing, throwing, or over-reading, and
///    its status must honor the framing contract — Ok means every decoded
///    record re-serializes and every torn byte is accounted for; BadRecord
///    and VersionMismatch mean the model list is empty (all-or-nothing).
///
///  - Macromodel::parse: any line must either parse strictly or leave the
///    output untouched; on success, serialize o parse is a byte-identical
///    fixed point (the property the on-disk format's stability rests on).
namespace {

void check_parse_line(std::string_view line) {
  hlp::model::Macromodel out;
  // Pre-fill so a buggy partial parse is visible as a field change.
  out.family = "sentinel";
  out.intercept = -12345.0;
  std::string err;
  const hlp::model::Macromodel::ParseStatus ps =
      hlp::model::Macromodel::parse(line, out, err);
  if (ps == hlp::model::Macromodel::ParseStatus::Ok) {
    // Round trip: the canonical form must parse back to identical bytes.
    const std::string canon = out.serialize();
    hlp::model::Macromodel again;
    std::string err2;
    if (hlp::model::Macromodel::parse(canon, again, err2) !=
        hlp::model::Macromodel::ParseStatus::Ok)
      __builtin_trap();
    if (again.serialize() != canon) __builtin_trap();
  } else {
    // Failed parse must not leak partial state into the output.
    if (out.family != "sentinel" || out.intercept != -12345.0)
      __builtin_trap();
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string_view bytes(reinterpret_cast<const char*>(data), size);

  const hlp::model::ModelLoad load = hlp::model::decode_models(bytes);
  switch (load.status) {
    case hlp::model::ModelFileStatus::Ok:
      // Every accepted model re-serializes (the registry will evaluate it).
      for (const hlp::model::Macromodel& m : load.models)
        if (m.serialize().empty()) __builtin_trap();
      if (load.torn_bytes > bytes.size()) __builtin_trap();
      break;
    case hlp::model::ModelFileStatus::BadRecord:
    case hlp::model::ModelFileStatus::VersionMismatch:
      // All-or-nothing: no half registry may escape a typed rejection.
      if (!load.models.empty()) __builtin_trap();
      if (load.error.empty()) __builtin_trap();
      break;
    default:
      if (!load.models.empty()) __builtin_trap();
      break;
  }

  // The same bytes as a bare artifact line exercise the strict parser.
  check_parse_line(bytes);
  return 0;
}
