#include <unistd.h>

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "serve/cachefile.hpp"

/// libFuzzer entry point for the cache segment loader. The contract the
/// serve tier's crash recovery rests on (DESIGN.md §9): any byte sequence —
/// including a segment a killed daemon left truncated mid-record, or one a
/// disk error garbled — loads without crashing, throwing, or over-reading;
/// recovery is a fixed point (a second load of the recovered file reports
/// zero torn bytes and replays the identical live set); and the recovered
/// segment accepts appends that round-trip byte-for-byte on the next load.
namespace {

using hlp::serve::CacheSegmentFile;
using hlp::serve::SegmentStats;

using LiveSet = std::vector<std::pair<std::string, std::string>>;

LiveSet load_into(CacheSegmentFile& seg) {
  LiveSet out;
  seg.load([&out](std::string&& k, std::string&& v) {
    out.emplace_back(std::move(k), std::move(v));
  });
  return out;
}

const std::string& segment_path() {
  static const std::string path =
      "/tmp/hlp_fuzz_cachefile_" + std::to_string(::getpid()) + ".bin";
  return path;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string& path = segment_path();
  if (FILE* f = std::fopen(path.c_str(), "wb")) {
    if (size > 0) std::fwrite(data, 1, size, f);
    std::fclose(f);
  } else {
    return 0;  // cannot stage the input; nothing to test
  }

  // Pass 1: recover whatever the input left behind. load() may truncate a
  // torn tail, compact, or start a fresh segment — but it must not crash.
  LiveSet live1;
  SegmentStats s1;
  {
    CacheSegmentFile seg(path);
    live1 = load_into(seg);
    s1 = seg.stats();
  }
  if (s1.wedged) return 0;  // I/O stop: no durability claims to check

  // Pass 2: recovery is a fixed point. The recovered file is clean (no torn
  // bytes left to cut) and replays the identical live set in the same order.
  CacheSegmentFile seg2(path);
  const LiveSet live2 = load_into(seg2);
  const SegmentStats s2 = seg2.stats();
  if (s2.wedged) return 0;
  if (live2 != live1) __builtin_trap();  // recovery changed the live set
  if (s2.torn_bytes != 0) __builtin_trap();  // recovery left a torn tail

  // Pass 3: the recovered segment is appendable, and the appended record is
  // the live value for its key on the next load (last-write-wins).
  const std::string key = "fuzz-key";
  const std::string value(reinterpret_cast<const char*>(data),
                          size < 1024 ? size : 1024);
  seg2.append(key, value);
  if (seg2.stats().appends != 1) return 0;  // append wedged on I/O

  CacheSegmentFile seg3(path);
  const LiveSet live3 = load_into(seg3);
  bool found = false;
  for (const auto& [k, v] : live3) {
    if (k != key) continue;
    found = true;
    if (v != value) __builtin_trap();  // appended bytes did not round-trip
  }
  if (!found) __builtin_trap();  // durable append lost by the next load
  return 0;
}
