#include <cstddef>
#include <cstdint>
#include <string_view>

#include "jobs/ledger.hpp"

/// libFuzzer entry point for the campaign-ledger scanner. The contract a
/// crash-recovery path must honor: any byte sequence — including a ledger a
/// killed process left truncated mid-record — scans without crashing,
/// throwing, or hanging; malformed lines are counted and skipped. Records
/// that do parse must round-trip: serialize(parse(line)) reparses equal
/// (the property Runner::resume relies on to serve results back
/// bit-identically).
extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  std::string_view text(reinterpret_cast<const char*>(data), size);
  hlp::jobs::LedgerScan scan = hlp::jobs::scan_ledger_text(text);
  for (const hlp::jobs::LedgerRecord& rec : scan.records) {
    std::string line = rec.serialize();
    hlp::jobs::LedgerRecord back;
    if (!hlp::jobs::LedgerRecord::parse(line, back) || !(back == rec))
      __builtin_trap();  // canonical form failed to round-trip
  }
  return 0;
}
