#include <cstddef>
#include <cstdint>
#include <string_view>

#include "netlist/verilog.hpp"

/// libFuzzer entry point for the structural-Verilog reader. The parser's
/// contract is: any byte sequence either yields a ParsedModule or throws
/// VerilogError — never a crash, sanitizer fault, or other exception type.
/// Inputs that parse are round-tripped through the exporter, which must
/// accept any netlist the parser produces.
extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  std::string_view src(reinterpret_cast<const char*>(data), size);
  try {
    auto mod = hlp::netlist::parse_verilog(src);
    (void)hlp::netlist::to_verilog(mod.netlist, "fuzz_roundtrip");
  } catch (const hlp::netlist::VerilogError&) {
    // Expected rejection path for malformed input.
  }
  return 0;
}
