#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "serve/protocol.hpp"

/// libFuzzer entry point for the serve wire protocol. The contract the TCP
/// front end relies on: any byte sequence a peer sends — malformed JSON,
/// truncated frames, oversized fields, raw binary — parses without
/// crashing, throwing, or hanging. A line that does parse must round-trip:
/// serialize(parse(line)) is canonical and reparses equal (the fixed-point
/// property the result cache's byte-identity guarantee builds on). The
/// tolerant response parser must be equally total, since clients feed it
/// whatever the network delivered.
extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  std::string_view line(reinterpret_cast<const char*>(data), size);

  hlp::serve::Request rq;
  std::string error;
  if (hlp::serve::Request::parse(line, rq, error)) {
    const std::string canonical = rq.serialize();
    hlp::serve::Request back;
    if (!hlp::serve::Request::parse(canonical, back, error) || !(back == rq))
      __builtin_trap();  // canonical form failed to round-trip
    if (back.serialize() != canonical)
      __builtin_trap();  // serialize must be a fixed point
  }

  hlp::serve::ResponseView view;
  (void)hlp::serve::parse_response(line, view);
  return 0;
}
