// hlp_lint — run the hlp::lint rule set over netlists from the command line.
//
//   hlp_lint [options] <input>...
//
// Each <input> is either a structural Verilog file (path ending in ".v",
// parsed with netlist::parse_verilog) or a generator spec understood by
// jobs::make_module (adder:8, mult:6, random:16:200:8:9, c17, ...).
//
// Options:
//   --format=text|json   output format (default text)
//   --no-power           drop the Power severity tier
//   --no-quantify        skip the activity/arrival analyses (waste = 0,
//                        PW-BOUND unavailable); the fast structural pass
//   --disable=RULE       skip one rule id (repeatable)
//   --fanout-cap=N       NL-FANOUT threshold (<= 0 disables)
//   --glitch-spread=N    PW-GLITCH fanin depth-spread threshold
//   --transition-bound=N PW-BOUND per-cycle transition budget (<= 0 disables)
//
// Exit status: 0 when no Error-severity diagnostics were found, 1 when any
// input produced an Error-severity diagnostic, 2 on usage, I/O, or parse
// failures. Parse failures still produce a report entry (text line or JSON
// object with "parse_error") so batch runs degrade gracefully.
//
// The JSON schema is stable and intended for golden-file comparison in CI:
//
//   {
//     "tool": "hlp_lint",
//     "schema_version": 1,
//     "inputs": [
//       {
//         "input": "<path or spec>",
//         "module": "<name>",            // absent on parse failure
//         "gates": <int>,
//         "parse_error": "<message>",    // only on parse failure
//         "counts": {"error": n, "warning": n, "power": n},
//         "diagnostics": [
//           {"rule": "NL-CONST", "severity": "warning", "ir": "netlist",
//            "object": 12, "name": "<net>", "message": "...",
//            "waste": 0.125}
//         ]
//       }
//     ],
//     "errors": <total error-severity count>
//   }
//
// Fields are emitted in the order above; "object" is omitted when the
// diagnostic has no location, "name" when the object is unnamed, and
// "waste" when it is zero. New fields may be appended in later schema
// versions; existing fields keep their meaning.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "jobs/kernels.hpp"
#include "lint/lint.hpp"
#include "netlist/verilog.hpp"

namespace {

using hlp::lint::Diagnostic;
using hlp::lint::Report;
using hlp::lint::Severity;

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--format=text|json] [--no-power] [--no-quantify]\n"
      "       %*s [--disable=RULE]... [--fanout-cap=N] [--glitch-spread=N]\n"
      "       %*s [--transition-bound=N] <file.v | generator-spec>...\n",
      argv0, static_cast<int>(std::string_view(argv0).size()), "",
      static_cast<int>(std::string_view(argv0).size()), "");
  return 2;
}

/// One linted input, ready for either formatter.
struct InputResult {
  std::string input;
  std::string module_name;
  std::size_t gates = 0;
  std::string parse_error;  ///< nonempty => nothing else but `input` is valid
  Report report;
};

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

InputResult lint_one(const std::string& input,
                     const hlp::lint::LintOptions& opts) {
  InputResult r;
  r.input = input;
  try {
    if (ends_with(input, ".v")) {
      std::ifstream in(input, std::ios::binary);
      if (!in) throw std::runtime_error("cannot open file");
      std::ostringstream ss;
      ss << in.rdbuf();
      hlp::netlist::ParsedModule pm = hlp::netlist::parse_verilog(ss.str());
      r.module_name = pm.name;
      r.gates = pm.netlist.gate_count();
      r.report = hlp::lint::run_netlist(pm.netlist, opts);
    } else {
      hlp::netlist::Module mod = hlp::jobs::make_module(input);
      r.module_name = mod.name;
      r.gates = mod.netlist.gate_count();
      r.report = hlp::lint::run_module(mod, opts);
    }
  } catch (const std::exception& e) {
    r.parse_error = e.what();
  }
  return r;
}

void count_severities(const Report& rep, std::size_t out[3]) {
  out[0] = out[1] = out[2] = 0;
  for (const Diagnostic& d : rep.diags)
    ++out[static_cast<std::size_t>(d.severity)];
}

// --- text format -----------------------------------------------------------

void print_text(const std::vector<InputResult>& results) {
  for (const InputResult& r : results) {
    if (!r.parse_error.empty()) {
      std::printf("== %s ==\nparse error: %s\n", r.input.c_str(),
                  r.parse_error.c_str());
      continue;
    }
    std::size_t by_sev[3];
    count_severities(r.report, by_sev);
    std::printf("== %s (%s, %zu gates) ==\n", r.input.c_str(),
                r.module_name.c_str(), r.gates);
    std::fputs(r.report.to_string().c_str(), stdout);
    std::printf("%zu diagnostics: %zu error, %zu warning, %zu power\n",
                r.report.diags.size(), by_sev[0], by_sev[1], by_sev[2]);
  }
}

// --- json format -----------------------------------------------------------

void json_escape(std::string& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void json_kv(std::string& out, std::string_view key, std::string_view value) {
  out += '"';
  out += key;
  out += "\": \"";
  json_escape(out, value);
  out += '"';
}

void print_json(const std::vector<InputResult>& results,
                std::size_t total_errors) {
  std::string out;
  out += "{\n  \"tool\": \"hlp_lint\",\n  \"schema_version\": 1,\n"
         "  \"inputs\": [";
  char buf[64];
  bool first_input = true;
  for (const InputResult& r : results) {
    out += first_input ? "\n" : ",\n";
    first_input = false;
    out += "    {\n      ";
    json_kv(out, "input", r.input);
    if (!r.parse_error.empty()) {
      out += ",\n      ";
      json_kv(out, "parse_error", r.parse_error);
      out += "\n    }";
      continue;
    }
    out += ",\n      ";
    json_kv(out, "module", r.module_name);
    std::snprintf(buf, sizeof buf, ",\n      \"gates\": %zu,\n", r.gates);
    out += buf;
    std::size_t by_sev[3];
    count_severities(r.report, by_sev);
    std::snprintf(buf, sizeof buf,
                  "      \"counts\": {\"error\": %zu, \"warning\": %zu, "
                  "\"power\": %zu},\n",
                  by_sev[0], by_sev[1], by_sev[2]);
    out += buf;
    out += "      \"diagnostics\": [";
    bool first_diag = true;
    for (const Diagnostic& d : r.report.diags) {
      out += first_diag ? "\n" : ",\n";
      first_diag = false;
      out += "        {";
      json_kv(out, "rule", d.rule_id);
      out += ", ";
      json_kv(out, "severity", hlp::lint::severity_name(d.severity));
      out += ", ";
      json_kv(out, "ir", hlp::lint::ir_name(d.loc.ir));
      if (d.loc.object != hlp::lint::kNoObject) {
        std::snprintf(buf, sizeof buf, ", \"object\": %u", d.loc.object);
        out += buf;
      }
      if (!d.loc.name.empty()) {
        out += ", ";
        json_kv(out, "name", d.loc.name);
      }
      out += ", ";
      json_kv(out, "message", d.message);
      if (d.waste > 0.0) {
        std::snprintf(buf, sizeof buf, ", \"waste\": %.6g", d.waste);
        out += buf;
      }
      out += '}';
    }
    out += first_diag ? "]\n    }" : "\n      ]\n    }";
  }
  std::snprintf(buf, sizeof buf, "\n  ],\n  \"errors\": %zu\n}\n",
                total_errors);
  out += buf;
  std::fputs(out.c_str(), stdout);
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  hlp::lint::LintOptions opts;
  opts.mode = hlp::lint::LintMode::Warn;
  std::vector<std::string> inputs;

  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    auto int_value = [&](std::string_view flag, int& dst) {
      dst = std::atoi(std::string(arg.substr(flag.size())).c_str());
      return true;
    };
    if (arg == "--format=text") {
      json = false;
    } else if (arg == "--format=json") {
      json = true;
    } else if (arg == "--no-power") {
      opts.power_rules = false;
    } else if (arg == "--no-quantify") {
      opts.quantify = false;
    } else if (arg.rfind("--disable=", 0) == 0) {
      std::string rule(arg.substr(10));
      if (!hlp::lint::RuleRegistry::global().find(rule)) {
        std::fprintf(stderr, "hlp_lint: unknown rule id '%s'\n",
                     rule.c_str());
        return 2;
      }
      opts.disabled.push_back(std::move(rule));
    } else if (arg.rfind("--fanout-cap=", 0) == 0) {
      int_value("--fanout-cap=", opts.fanout_cap);
    } else if (arg.rfind("--glitch-spread=", 0) == 0) {
      int_value("--glitch-spread=", opts.glitch_depth_spread);
    } else if (arg.rfind("--transition-bound=", 0) == 0) {
      int_value("--transition-bound=", opts.transition_bound);
    } else if (!arg.empty() && arg[0] == '-') {
      return usage(argv[0]);
    } else {
      inputs.emplace_back(arg);
    }
  }
  if (inputs.empty()) return usage(argv[0]);

  std::vector<InputResult> results;
  results.reserve(inputs.size());
  std::size_t total_errors = 0;
  bool parse_failed = false;
  for (const std::string& input : inputs) {
    results.push_back(lint_one(input, opts));
    const InputResult& r = results.back();
    if (!r.parse_error.empty()) parse_failed = true;
    for (const Diagnostic& d : r.report.diags)
      if (d.severity == Severity::Error) ++total_errors;
  }

  if (json)
    print_json(results, total_errors);
  else
    print_text(results);

  if (parse_failed) return 2;
  return total_errors ? 1 : 0;
}
