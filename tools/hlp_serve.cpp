// hlp_serve — estimation service daemon and line-protocol client.
//
// Daemon:
//   hlp_serve --listen [ADDR:]PORT [--cache-bytes N] [--shards N]
//             [--max-inflight N] [--max-connections N]
//             [--deadline-ceiling SECONDS] [--workers N] [--queue-limit N]
//             [--cache-file PATH] [--default-deadline SECONDS]
//             [--degrade-on-deadline] [--drain-deadline SECONDS]
//             [--isolate off|symbolic|all] [--isolate-rlimit-as BYTES]
//             [--isolate-rlimit-cpu SECONDS] [--isolate-wall-ceiling SECONDS]
//             [--quarantine-threshold K] [--quarantine-expiry SECONDS]
//             [--models PATH]
//
//   --models loads a macromodel registry (written by hlp_fit) before the
//   listener opens, enabling the predicted tier: estimate requests that
//   carry "accuracy" are answered from the model in microseconds — with a
//   prediction interval — when the model covers the design and supports
//   the accuracy, and escalate to the real kernel otherwise (DESIGN.md
//   §12). A missing or damaged registry file is reported and the daemon
//   starts without models rather than failing.
//
//   Serves line-delimited JSON estimate requests (DESIGN.md §9) until
//   SIGTERM/SIGINT, then drains gracefully: new connections are refused,
//   requests already being processed complete, and a metrics summary is
//   printed before a clean exit 0. With a --drain-deadline the drain is
//   bounded: past it, in-flight kernels are cancelled and stuck
//   connections force-closed. --cache-file makes the result cache
//   crash-safe: cached results are spilled to an append-only CRC-framed
//   segment file and reloaded on the next start, so a restarted daemon
//   answers previously-cached designs warm (microseconds, byte-identical).
//   With port 0 the kernel picks a port; the daemon always prints
//   "listening on ADDR:PORT" once ready.
//
//   --isolate (default: symbolic) forks each kernel of the selected kinds
//   into a single-request sandbox child under hard rlimit caps, so a
//   segfaulting, OOM-killed, or wedged kernel is a typed error response
//   instead of a dead daemon (DESIGN.md §11). Repeat crashers are
//   quarantined per design fingerprint after --quarantine-threshold hard
//   failures and answered from tier-0 static bounds until the (exponential)
//   quarantine expires.
//
// Client:
//   hlp_serve --connect [ADDR:]PORT [--kind K] [--design SPEC] [--seed N]
//             [--repeat N] [--unique] [--no-cache] [--deadline SECONDS]
//             [--accuracy A] [--retries N] [--metrics] [--health] [--ping]
//
//   Sends --repeat copies of one estimate request (--unique gives each a
//   distinct seed so none coalesce or hit), then optional metrics/ping
//   probes; prints every response line to stdout. With --retries, a "shed"
//   response is retried after max(server retry-after-ms hint, exponential
//   backoff with deterministic jitter — the jobs-layer RetryPolicy); only
//   the final response of each request prints. Exit 0 iff every response
//   has ok:true.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <csignal>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "jobs/jobs.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void on_signal(int) { g_stop = 1; }

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --listen [ADDR:]PORT [--cache-bytes N] [--shards N]\n"
      "          [--max-inflight N] [--max-connections N]\n"
      "          [--deadline-ceiling SECONDS] [--workers N] [--queue-limit N]\n"
      "          [--cache-file PATH] [--default-deadline SECONDS]\n"
      "          [--degrade-on-deadline] [--drain-deadline SECONDS]\n"
      "          [--isolate off|symbolic|all] [--isolate-rlimit-as BYTES]\n"
      "          [--isolate-rlimit-cpu SECONDS] [--isolate-wall-ceiling SECONDS]\n"
      "          [--quarantine-threshold K] [--quarantine-expiry SECONDS]\n"
      "          [--models PATH]\n"
      "   or: %s --connect [ADDR:]PORT [--kind K] [--design SPEC] [--seed N]\n"
      "          [--epsilon E] [--repeat N] [--unique] [--no-cache]\n"
      "          [--deadline SECONDS] [--accuracy A] [--retries N]\n"
      "          [--metrics] [--health] [--ping]\n",
      argv0, argv0);
  return 2;
}

struct Endpoint {
  std::string host = "127.0.0.1";
  int port = -1;
};

bool parse_endpoint(const std::string& s, Endpoint& out) {
  std::string port_part = s;
  const std::size_t colon = s.rfind(':');
  if (colon != std::string::npos) {
    out.host = s.substr(0, colon);
    port_part = s.substr(colon + 1);
  }
  char* end = nullptr;
  const long p = std::strtol(port_part.c_str(), &end, 10);
  if (end == port_part.c_str() || *end != '\0' || p < 0 || p > 65535)
    return false;
  out.port = static_cast<int>(p);
  return true;
}

int run_daemon(const Endpoint& ep, hlp::serve::ServerOptions opts,
               const std::string& models_path) {
  opts.bind_address = ep.host;
  opts.port = static_cast<std::uint16_t>(ep.port);
  hlp::serve::Server server(opts);
  if (!models_path.empty()) {
    // Load before the listener opens so the first request already sees the
    // predicted tier. Failures are typed and non-fatal: the daemon serves
    // exact answers only.
    const hlp::serve::Service::ModelsStatus ms =
        server.service().load_models(models_path);
    if (ms.ok()) {
      std::printf("models: loaded %zu from %s", ms.count, models_path.c_str());
      if (ms.torn_bytes > 0)
        std::printf(" (%llu torn trailing bytes dropped)",
                    static_cast<unsigned long long>(ms.torn_bytes));
      std::printf("\n");
    } else {
      std::fprintf(stderr, "hlp_serve: models: %s: %s (%s)\n",
                   models_path.c_str(), hlp::model::to_string(ms.status),
                   ms.error.c_str());
    }
  }
  try {
    server.start();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "hlp_serve: %s\n", e.what());
    return 1;
  }
  std::printf("listening on %s:%u\n", ep.host.c_str(), server.port());
  std::fflush(stdout);

  struct sigaction sa{};
  sa.sa_handler = on_signal;
  sigaction(SIGTERM, &sa, nullptr);
  sigaction(SIGINT, &sa, nullptr);

  while (!g_stop) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  std::printf("draining...\n");
  std::fflush(stdout);
  server.shutdown();

  const hlp::serve::ServiceMetrics m = server.service().metrics();
  std::printf("served %llu requests (%llu estimates)\n",
              static_cast<unsigned long long>(m.requests),
              static_cast<unsigned long long>(m.estimates));
  std::printf("  %-12s %8llu\n", "hits", static_cast<unsigned long long>(m.hits));
  std::printf("  %-12s %8llu\n", "misses",
              static_cast<unsigned long long>(m.misses));
  std::printf("  %-12s %8llu\n", "coalesced",
              static_cast<unsigned long long>(m.coalesced));
  std::printf("  %-12s %8llu\n", "shed", static_cast<unsigned long long>(m.shed));
  std::printf("  %-12s %8llu\n", "errors",
              static_cast<unsigned long long>(m.errors));
  std::printf("  %-12s %8llu\n", "deadlined",
              static_cast<unsigned long long>(m.deadline_exceeded));
  std::printf("  %-12s %8llu\n", "cancelled",
              static_cast<unsigned long long>(m.cancelled));
  if (m.warm_entries > 0) {
    std::printf("  %-12s %8llu\n", "warm-entries",
                static_cast<unsigned long long>(m.warm_entries));
  }
  const hlp::serve::ServiceHealth h = server.service().health();
  if (h.isolated > 0 || h.child_crashes > 0 || h.respawns > 0 ||
      h.quarantine_trips > 0) {
    std::printf("  %-12s %8llu\n", "isolated",
                static_cast<unsigned long long>(h.isolated));
    std::printf("  %-12s %8llu\n", "crashes",
                static_cast<unsigned long long>(h.child_crashes));
    std::printf("  %-12s %8llu\n", "respawns",
                static_cast<unsigned long long>(h.respawns));
    std::printf("  %-12s %8llu\n", "quarantined",
                static_cast<unsigned long long>(h.quarantine_trips));
  }
  std::printf("  %-12s %8llu us\n", "p50",
              static_cast<unsigned long long>(m.p50_us));
  std::printf("  %-12s %8llu us\n", "p99",
              static_cast<unsigned long long>(m.p99_us));
  const std::uint64_t lookups = m.hits + m.misses + m.coalesced;
  if (lookups > 0) {
    std::printf("  %-12s %8.2f\n", "hit-ratio",
                static_cast<double>(m.hits) / static_cast<double>(lookups));
  }
  return 0;
}

/// Minimal blocking line client used by client mode and the CI smoke job.
class Client {
 public:
  bool connect(const Endpoint& ep) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(ep.port));
    if (::inet_pton(AF_INET, ep.host.c_str(), &addr.sin_addr) != 1)
      return false;
    return ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) ==
           0;
  }
  ~Client() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool send_line(std::string line) {
    line.push_back('\n');
    const char* p = line.data();
    std::size_t left = line.size();
    while (left > 0) {
      const ssize_t n = ::send(fd_, p, left, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      p += n;
      left -= static_cast<std::size_t>(n);
    }
    return true;
  }

  bool recv_line(std::string& out) {
    while (true) {
      const std::size_t nl = buf_.find('\n');
      if (nl != std::string::npos) {
        out = buf_.substr(0, nl);
        buf_.erase(0, nl + 1);
        return true;
      }
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n == 0) return false;
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      buf_.append(chunk, static_cast<std::size_t>(n));
    }
  }

 private:
  int fd_ = -1;
  std::string buf_;
};

struct ClientConfig {
  std::string kind = "symbolic";
  std::string design;
  double epsilon = 0.0;  ///< 0: keep the protocol default
  bool has_seed = false;
  std::uint64_t seed = 0;
  int repeat = 1;
  bool unique = false;
  bool no_cache = false;
  double deadline_seconds = 0.0;  ///< per-request wall deadline (0 = none)
  double accuracy = 0.0;  ///< 0: no predicted tier; else the request's bound
  int retries = 0;  ///< resend a shed request up to this many times
  bool metrics = false;
  bool health = false;
  bool ping = false;
};

int run_client(const Endpoint& ep, const ClientConfig& cfg) {
  Client client;
  if (!client.connect(ep)) {
    std::fprintf(stderr, "hlp_serve: cannot connect to %s:%d\n",
                 ep.host.c_str(), ep.port);
    return 1;
  }
  bool all_ok = true;
  // Mirrors the jobs-layer backoff discipline: deterministic jitter hashed
  // from (request line, attempt), floored by the server's retry-after-ms
  // hint when the response carries one.
  const hlp::jobs::RetryPolicy backoff{};
  auto roundtrip = [&](const std::string& line) {
    for (int attempt = 0;; ++attempt) {
      if (!client.send_line(line)) return false;
      std::string resp;
      if (!client.recv_line(resp)) return false;
      hlp::serve::ResponseView v;
      const bool parsed = hlp::serve::parse_response(resp, v);
      if (parsed && !v.ok && v.error == "shed" && attempt < cfg.retries) {
        // Honor the server's hint but never sleep past kMaxRetryAfterMs —
        // a pathological hint (or deep exponential backoff) must not park
        // the client for minutes.
        const double delay = hlp::serve::bounded_retry_delay_seconds(
            backoff.delay_seconds(line, attempt + 1), v.retry_after_ms);
        std::this_thread::sleep_for(std::chrono::duration<double>(delay));
        continue;
      }
      std::printf("%s\n", resp.c_str());
      if (!parsed || !v.ok) all_ok = false;
      return true;
    }
  };

  if (!cfg.design.empty()) {
    hlp::serve::Request rq;
    rq.op = hlp::serve::Op::Estimate;
    if (!hlp::jobs::parse_job_kind(cfg.kind, rq.kind)) {
      std::fprintf(stderr, "hlp_serve: unknown kind '%s'\n", cfg.kind.c_str());
      return 2;
    }
    rq.design = cfg.design;
    if (cfg.epsilon > 0.0) rq.epsilon = cfg.epsilon;
    rq.has_seed = cfg.has_seed;
    rq.seed = cfg.seed;
    rq.use_cache = !cfg.no_cache;
    rq.deadline_seconds = cfg.deadline_seconds;
    if (cfg.accuracy > 0.0) {
      rq.has_accuracy = true;
      rq.accuracy = cfg.accuracy;
    }
    for (int i = 0; i < cfg.repeat; ++i) {
      if (cfg.unique) {
        rq.has_seed = true;
        rq.seed = cfg.seed + static_cast<std::uint64_t>(i) + 1;
      }
      if (!roundtrip(rq.serialize())) {
        std::fprintf(stderr, "hlp_serve: connection lost\n");
        return 1;
      }
    }
  }
  if (cfg.metrics && !roundtrip("{\"op\":\"metrics\"}")) {
    std::fprintf(stderr, "hlp_serve: connection lost\n");
    return 1;
  }
  if (cfg.health && !roundtrip("{\"op\":\"health\"}")) {
    std::fprintf(stderr, "hlp_serve: connection lost\n");
    return 1;
  }
  if (cfg.ping && !roundtrip("{\"op\":\"ping\"}")) {
    std::fprintf(stderr, "hlp_serve: connection lost\n");
    return 1;
  }
  return all_ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string listen_at;
  std::string connect_to;
  std::string models_path;
  hlp::serve::ServerOptions sopts;
  // Daemon default: the kinds with exponential worst cases run in forked
  // sandbox children (the library default is Off for embedders/tests).
  sopts.service.isolate = hlp::serve::IsolateMode::Symbolic;
  ClientConfig cfg;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "hlp_serve: %s needs a value\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--listen") {
      const char* v = next_value("--listen");
      if (!v) return 2;
      listen_at = v;
    } else if (arg == "--connect") {
      const char* v = next_value("--connect");
      if (!v) return 2;
      connect_to = v;
    } else if (arg == "--cache-bytes") {
      const char* v = next_value("--cache-bytes");
      if (!v) return 2;
      sopts.service.cache_bytes = std::strtoull(v, nullptr, 10);
    } else if (arg == "--shards") {
      const char* v = next_value("--shards");
      if (!v) return 2;
      sopts.service.cache_shards = std::strtoull(v, nullptr, 10);
    } else if (arg == "--max-inflight") {
      const char* v = next_value("--max-inflight");
      if (!v) return 2;
      sopts.service.max_inflight = std::atoi(v);
    } else if (arg == "--max-connections") {
      const char* v = next_value("--max-connections");
      if (!v) return 2;
      sopts.max_connections = std::atoi(v);
    } else if (arg == "--deadline-ceiling") {
      const char* v = next_value("--deadline-ceiling");
      if (!v) return 2;
      sopts.service.ceiling_deadline_seconds = std::atof(v);
    } else if (arg == "--workers") {
      const char* v = next_value("--workers");
      if (!v) return 2;
      sopts.service.workers = std::atoi(v);
    } else if (arg == "--queue-limit") {
      const char* v = next_value("--queue-limit");
      if (!v) return 2;
      sopts.service.queue_limit = std::strtoull(v, nullptr, 10);
    } else if (arg == "--cache-file") {
      const char* v = next_value("--cache-file");
      if (!v) return 2;
      sopts.service.cache_path = v;
    } else if (arg == "--default-deadline") {
      const char* v = next_value("--default-deadline");
      if (!v) return 2;
      sopts.service.default_deadline_seconds = std::atof(v);
    } else if (arg == "--degrade-on-deadline") {
      sopts.service.degrade_on_deadline = true;
    } else if (arg == "--isolate") {
      const char* v = next_value("--isolate");
      if (!v) return 2;
      if (!hlp::serve::parse_isolate_mode(v, sopts.service.isolate)) {
        std::fprintf(stderr,
                     "hlp_serve: --isolate must be off, symbolic, or all\n");
        return 2;
      }
    } else if (arg == "--isolate-rlimit-as") {
      const char* v = next_value("--isolate-rlimit-as");
      if (!v) return 2;
      sopts.service.isolate_rlimit_as_bytes = std::strtoull(v, nullptr, 10);
    } else if (arg == "--isolate-rlimit-cpu") {
      const char* v = next_value("--isolate-rlimit-cpu");
      if (!v) return 2;
      sopts.service.isolate_rlimit_cpu_seconds = std::atof(v);
    } else if (arg == "--isolate-wall-ceiling") {
      const char* v = next_value("--isolate-wall-ceiling");
      if (!v) return 2;
      sopts.service.isolate_wall_ceiling_seconds = std::atof(v);
    } else if (arg == "--quarantine-threshold") {
      const char* v = next_value("--quarantine-threshold");
      if (!v) return 2;
      sopts.service.quarantine_threshold = std::atoi(v);
    } else if (arg == "--quarantine-expiry") {
      const char* v = next_value("--quarantine-expiry");
      if (!v) return 2;
      sopts.service.quarantine_base_expiry_seconds = std::atof(v);
    } else if (arg == "--drain-deadline") {
      const char* v = next_value("--drain-deadline");
      if (!v) return 2;
      sopts.drain_deadline_seconds = std::atof(v);
    } else if (arg == "--models") {
      const char* v = next_value("--models");
      if (!v) return 2;
      models_path = v;
    } else if (arg == "--deadline") {
      const char* v = next_value("--deadline");
      if (!v) return 2;
      cfg.deadline_seconds = std::atof(v);
    } else if (arg == "--accuracy") {
      const char* v = next_value("--accuracy");
      if (!v) return 2;
      cfg.accuracy = std::atof(v);
      if (!(cfg.accuracy > 0.0 && cfg.accuracy <= 1.0)) {
        std::fprintf(stderr, "hlp_serve: --accuracy must be in (0, 1]\n");
        return 2;
      }
    } else if (arg == "--retries") {
      const char* v = next_value("--retries");
      if (!v) return 2;
      cfg.retries = std::atoi(v);
      if (cfg.retries < 0) {
        std::fprintf(stderr, "hlp_serve: --retries must be >= 0\n");
        return 2;
      }
    } else if (arg == "--kind") {
      const char* v = next_value("--kind");
      if (!v) return 2;
      cfg.kind = v;
    } else if (arg == "--design") {
      const char* v = next_value("--design");
      if (!v) return 2;
      cfg.design = v;
    } else if (arg == "--epsilon") {
      const char* v = next_value("--epsilon");
      if (!v) return 2;
      cfg.epsilon = std::atof(v);
    } else if (arg == "--seed") {
      const char* v = next_value("--seed");
      if (!v) return 2;
      cfg.has_seed = true;
      cfg.seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--repeat") {
      const char* v = next_value("--repeat");
      if (!v) return 2;
      cfg.repeat = std::atoi(v);
      if (cfg.repeat < 1) {
        std::fprintf(stderr, "hlp_serve: --repeat must be >= 1\n");
        return 2;
      }
    } else if (arg == "--unique") {
      cfg.unique = true;
    } else if (arg == "--no-cache") {
      cfg.no_cache = true;
    } else if (arg == "--metrics") {
      cfg.metrics = true;
    } else if (arg == "--health") {
      cfg.health = true;
    } else if (arg == "--ping") {
      cfg.ping = true;
    } else {
      return usage(argv[0]);
    }
  }

  if (listen_at.empty() == connect_to.empty()) return usage(argv[0]);

  Endpoint ep;
  if (!parse_endpoint(listen_at.empty() ? connect_to : listen_at, ep)) {
    std::fprintf(stderr, "hlp_serve: bad endpoint '%s'\n",
                 (listen_at.empty() ? connect_to : listen_at).c_str());
    return 2;
  }
  if (!listen_at.empty()) return run_daemon(ep, sopts, models_path);
  return run_client(ep, cfg);
}
