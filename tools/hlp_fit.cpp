// hlp_fit — characterize a design family and fit a power macromodel.
//
//   hlp_fit --family F --params LO:HI[:STEP] --out FILE
//           [--kind symbolic|monte-carlo] [--input-p P1,P2,...]
//           [--ledger PATH] [--resume] [--workers N]
//           [--epsilon E] [--max-pairs N]
//           [--f-enter F] [--max-vars K] [--holdout FRAC]
//           [--mape-bound X] [--append]
//
// Runs the offline characterization campaign (real symbolic / Monte Carlo
// kernels label every grid point; --ledger makes the sweep crash-consistent
// and --resume continues a killed run), fits a macromodel by stepwise
// regression, prints the fit report, and writes the CRC-framed registry
// file hlp_serve loads with --models. --append keeps the models already in
// FILE (last-wins per family|kind) instead of replacing the file.
//
// Exit status: 0 on success, 1 when the fit succeeded but the held-out
// MAPE exceeds --mape-bound (artifact still written — the operator decides
// whether to ship it), 2 on usage/spec/fit errors.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "model/characterize.hpp"
#include "model/registry.hpp"
#include "stats/regression.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --family F --params LO:HI[:STEP] --out FILE\n"
      "          [--kind symbolic|monte-carlo] [--input-p P1,P2,...]\n"
      "          [--ledger PATH] [--resume] [--workers N]\n"
      "          [--epsilon E] [--max-pairs N]\n"
      "          [--f-enter F] [--max-vars K] [--holdout FRAC]\n"
      "          [--mape-bound X] [--append]\n",
      argv0);
  return 2;
}

/// "4:12" or "4:12:2" -> {4, 6, 8, 10, 12}; empty on parse failure.
std::vector<int> parse_param_range(const std::string& s) {
  int lo = 0, hi = 0, step = 1;
  const int n = std::sscanf(s.c_str(), "%d:%d:%d", &lo, &hi, &step);
  std::vector<int> out;
  if (n < 2 || step < 1 || hi < lo) return out;
  for (int p = lo; p <= hi; p += step) out.push_back(p);
  return out;
}

/// "0.3,0.5,0.7" -> {0.3, 0.5, 0.7}; empty on parse failure.
std::vector<double> parse_p_list(const std::string& s) {
  std::vector<double> out;
  std::size_t pos = 0;
  while (pos <= s.size()) {
    std::size_t comma = s.find(',', pos);
    if (comma == std::string::npos) comma = s.size();
    char* end = nullptr;
    const std::string tok = s.substr(pos, comma - pos);
    const double v = std::strtod(tok.c_str(), &end);
    if (tok.empty() || end == tok.c_str() || *end != '\0') return {};
    out.push_back(v);
    pos = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  hlp::model::SweepSpec spec;
  hlp::model::FitOptions fopts;
  hlp::jobs::RunnerOptions ropts;
  std::string out_path;
  std::string ledger_path;
  bool resume = false;
  bool append = false;
  double mape_bound = 0.0;  // 0 = no gate

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "hlp_fit: %s needs a value\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--family") {
      const char* v = next_value("--family");
      if (!v) return 2;
      spec.family = v;
    } else if (arg == "--kind") {
      const char* v = next_value("--kind");
      if (!v) return 2;
      if (!hlp::jobs::parse_job_kind(v, spec.kind)) {
        std::fprintf(stderr, "hlp_fit: unknown --kind %s\n", v);
        return 2;
      }
    } else if (arg == "--params") {
      const char* v = next_value("--params");
      if (!v) return 2;
      spec.params = parse_param_range(v);
      if (spec.params.empty()) {
        std::fprintf(stderr, "hlp_fit: --params wants LO:HI[:STEP]\n");
        return 2;
      }
    } else if (arg == "--input-p") {
      const char* v = next_value("--input-p");
      if (!v) return 2;
      spec.input_p = parse_p_list(v);
      if (spec.input_p.empty()) {
        std::fprintf(stderr, "hlp_fit: --input-p wants P1,P2,...\n");
        return 2;
      }
    } else if (arg == "--out") {
      const char* v = next_value("--out");
      if (!v) return 2;
      out_path = v;
    } else if (arg == "--ledger") {
      const char* v = next_value("--ledger");
      if (!v) return 2;
      ledger_path = v;
    } else if (arg == "--resume") {
      resume = true;
    } else if (arg == "--append") {
      append = true;
    } else if (arg == "--workers") {
      const char* v = next_value("--workers");
      if (!v) return 2;
      ropts.workers = std::atoi(v);
      if (ropts.workers < 1) {
        std::fprintf(stderr, "hlp_fit: --workers must be >= 1\n");
        return 2;
      }
    } else if (arg == "--epsilon") {
      const char* v = next_value("--epsilon");
      if (!v) return 2;
      spec.epsilon = std::atof(v);
      if (spec.epsilon <= 0.0) {
        std::fprintf(stderr, "hlp_fit: --epsilon must be > 0\n");
        return 2;
      }
    } else if (arg == "--max-pairs") {
      const char* v = next_value("--max-pairs");
      if (!v) return 2;
      spec.max_pairs = std::strtoull(v, nullptr, 10);
      if (spec.max_pairs == 0) {
        std::fprintf(stderr, "hlp_fit: --max-pairs must be >= 1\n");
        return 2;
      }
    } else if (arg == "--f-enter") {
      const char* v = next_value("--f-enter");
      if (!v) return 2;
      fopts.f_enter = std::atof(v);
    } else if (arg == "--max-vars") {
      const char* v = next_value("--max-vars");
      if (!v) return 2;
      fopts.max_vars = std::strtoull(v, nullptr, 10);
    } else if (arg == "--holdout") {
      const char* v = next_value("--holdout");
      if (!v) return 2;
      fopts.holdout_frac = std::atof(v);
      if (fopts.holdout_frac < 0.0 || fopts.holdout_frac >= 1.0) {
        std::fprintf(stderr, "hlp_fit: --holdout must be in [0, 1)\n");
        return 2;
      }
    } else if (arg == "--mape-bound") {
      const char* v = next_value("--mape-bound");
      if (!v) return 2;
      mape_bound = std::atof(v);
      if (mape_bound <= 0.0) {
        std::fprintf(stderr, "hlp_fit: --mape-bound must be > 0\n");
        return 2;
      }
    } else {
      return usage(argv[0]);
    }
  }
  if (out_path.empty()) {
    std::fprintf(stderr, "hlp_fit: --out is required\n");
    return usage(argv[0]);
  }
  if (resume && ledger_path.empty()) {
    std::fprintf(stderr, "hlp_fit: --resume requires --ledger\n");
    return 2;
  }
  ropts.ledger_path = ledger_path;

  // Characterization: one job per (param, input-p) grid point.
  hlp::model::Characterization ch;
  try {
    ch = hlp::model::characterize(spec, ropts, resume);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "hlp_fit: %s\n", e.what());
    if (!ledger_path.empty())
      std::fprintf(stderr,
                   "hlp_fit: partial progress journaled to %s; rerun with "
                   "--ledger %s --resume to continue\n",
                   ledger_path.c_str(), ledger_path.c_str());
    return 2;
  }
  std::printf("characterized %zu/%zu grid points (%zu retries)\n",
              ch.rows.size(), ch.campaign.results.size(),
              ch.campaign.retries);
  if (!ch.complete()) {
    std::fprintf(stderr, "hlp_fit: characterization incomplete (%zu failed, "
                         "%zu cancelled)\n",
                 ch.campaign.failed, ch.campaign.cancelled);
    if (!ledger_path.empty())
      std::fprintf(stderr,
                   "hlp_fit: completed jobs are journaled in %s — rerun with "
                   "--ledger %s --resume\n",
                   ledger_path.c_str(), ledger_path.c_str());
    return 2;
  }

  // Fit: stepwise selection + strict inference refit.
  hlp::model::FitReport report;
  try {
    report = hlp::model::fit_macromodel(ch.rows, spec.family,
                                        hlp::jobs::to_string(spec.kind),
                                        fopts);
  } catch (const hlp::stats::RankDeficientError& e) {
    std::fprintf(stderr,
                 "hlp_fit: rank-deficient design matrix: %s\n"
                 "hlp_fit: widen the parameter or input-p grid so the "
                 "features vary independently\n",
                 e.what());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "hlp_fit: %s\n", e.what());
    return 2;
  }

  std::printf("fit %s|%s: %zu train + %zu held-out rows\n",
              report.model.family.c_str(), report.model.kind.c_str(),
              report.train_rows, report.holdout_rows);
  std::printf("  selected:");
  for (const std::string& name : report.selected_names)
    std::printf(" %s", name.c_str());
  if (report.selected_names.empty()) std::printf(" (intercept only)");
  std::printf("\n");
  std::printf("  train R^2 %.6f, sigma %.6g, condition %.3g\n",
              report.train_r2, std::sqrt(report.model.sigma2),
              report.condition);
  std::printf("  held-out MAPE %.4f\n", report.holdout_mape);
  if (report.condition_warning)
    std::fprintf(stderr,
                 "hlp_fit: warning: ill-conditioned normal equations "
                 "(condition %.3g > 1e8); coefficients are numerically "
                 "fragile\n",
                 report.condition);

  // Persist: fresh registry, or append to the existing one (last-wins per
  // family|kind happens at registry build time, so just add the record).
  std::vector<hlp::model::Macromodel> models;
  if (append) {
    hlp::model::ModelLoad prev = hlp::model::load_models_file(out_path);
    if (prev.ok()) {
      models = std::move(prev.models);
    } else if (prev.status != hlp::model::ModelFileStatus::Missing) {
      std::fprintf(stderr, "hlp_fit: cannot append to %s: %s (%s)\n",
                   out_path.c_str(), hlp::model::to_string(prev.status),
                   prev.error.c_str());
      return 2;
    }
  }
  models.push_back(report.model);
  std::string err;
  if (!hlp::model::save_models_file(out_path, models, err)) {
    std::fprintf(stderr, "hlp_fit: write %s: %s\n", out_path.c_str(),
                 err.c_str());
    return 2;
  }
  std::printf("wrote %zu model%s to %s\n", models.size(),
              models.size() == 1 ? "" : "s", out_path.c_str());

  if (mape_bound > 0.0 && report.holdout_mape > mape_bound) {
    std::fprintf(stderr,
                 "hlp_fit: held-out MAPE %.4f exceeds bound %.4f\n",
                 report.holdout_mape, mape_bound);
    return 1;
  }
  return 0;
}
