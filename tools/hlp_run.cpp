// hlp_run — run a benchmark campaign from a job-spec file.
//
//   hlp_run campaign.jobs [--workers N] [--ledger PATH] [--resume]
//                         [--max-attempts K] [--isolate]
//                         [--isolate-rlimit-as BYTES]
//                         [--isolate-rlimit-cpu SECONDS] [--list]
//
// Exit status: 0 when every job completed, 1 when any job failed or was
// cancelled, 2 on usage/spec errors. With --ledger, every state transition
// is journaled crash-consistently; re-running with --resume skips jobs the
// previous (possibly killed) process completed and restores interrupted
// Monte Carlo estimates from their checkpoints.
//
// --isolate forks each spec-driven kernel attempt into a single-request
// sandbox child under hard rlimit caps (DESIGN.md §11): a segfaulting or
// OOM-killed kernel fails only its own attempt — classified through the
// normal ErrorClass taxonomy, so rlimit kills retry with downgrade like
// any budget exhaustion — instead of killing the campaign.

#include <cstdio>
#include <cstring>
#include <string>

#include "jobs/jobs.hpp"
#include "jobs/spec.hpp"
#include "sandbox/sandbox.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <campaign.jobs> [--workers N] [--ledger PATH] "
               "[--resume] [--max-attempts K] [--isolate] "
               "[--isolate-rlimit-as BYTES] [--isolate-rlimit-cpu SECONDS] "
               "[--list]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string spec_path;
  std::string ledger_path;
  int workers_override = 0;
  int max_attempts_override = 0;
  bool resume = false;
  bool list_only = false;
  bool isolate = false;
  hlp::sandbox::Limits isolate_limits;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "hlp_run: %s needs a value\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--workers") {
      const char* v = next_value("--workers");
      if (!v) return 2;
      workers_override = std::atoi(v);
      if (workers_override < 1) {
        std::fprintf(stderr, "hlp_run: --workers must be >= 1\n");
        return 2;
      }
    } else if (arg == "--ledger") {
      const char* v = next_value("--ledger");
      if (!v) return 2;
      ledger_path = v;
    } else if (arg == "--max-attempts") {
      const char* v = next_value("--max-attempts");
      if (!v) return 2;
      max_attempts_override = std::atoi(v);
      if (max_attempts_override < 1) {
        std::fprintf(stderr, "hlp_run: --max-attempts must be >= 1\n");
        return 2;
      }
    } else if (arg == "--resume") {
      resume = true;
    } else if (arg == "--isolate") {
      isolate = true;
    } else if (arg == "--isolate-rlimit-as") {
      const char* v = next_value("--isolate-rlimit-as");
      if (!v) return 2;
      isolate_limits.rlimit_as_bytes = std::strtoull(v, nullptr, 10);
    } else if (arg == "--isolate-rlimit-cpu") {
      const char* v = next_value("--isolate-rlimit-cpu");
      if (!v) return 2;
      isolate_limits.rlimit_cpu_seconds = std::atof(v);
    } else if (arg == "--list") {
      list_only = true;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage(argv[0]);
    } else if (spec_path.empty()) {
      spec_path = arg;
    } else {
      return usage(argv[0]);
    }
  }
  if (spec_path.empty()) return usage(argv[0]);
  if (resume && ledger_path.empty()) {
    std::fprintf(stderr, "hlp_run: --resume requires --ledger\n");
    return 2;
  }

  hlp::jobs::CampaignSpec spec;
  try {
    spec = hlp::jobs::read_campaign_spec(spec_path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "hlp_run: %s\n", e.what());
    return 2;
  }

  if (list_only) {
    for (const hlp::jobs::Job& j : spec.jobs)
      std::printf("%-24s %-12s %s\n", j.id.c_str(),
                  hlp::jobs::to_string(j.kind), j.design.c_str());
    return 0;
  }

  hlp::jobs::RunnerOptions opts;
  opts.workers = workers_override ? workers_override : spec.workers;
  opts.retry = spec.retry;
  if (max_attempts_override) opts.retry.max_attempts = max_attempts_override;
  opts.ledger_path = ledger_path;
  if (isolate) {
    opts.kernel_executor = [isolate_limits](
                               const hlp::jobs::KernelRequest& rq,
                               const hlp::exec::Budget& budget) {
      return hlp::sandbox::run_kernel_isolated(rq, budget, isolate_limits);
    };
  }

  hlp::jobs::Runner runner(opts);
  hlp::jobs::CampaignResult cr;
  try {
    cr = resume ? runner.resume(spec.jobs) : runner.run(spec.jobs);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "hlp_run: %s\n", e.what());
    if (!ledger_path.empty())
      std::fprintf(stderr,
                   "hlp_run: partial progress journaled to %s; rerun with "
                   "--ledger %s --resume to continue\n",
                   ledger_path.c_str(), ledger_path.c_str());
    return 2;
  }

  for (const std::string& w : cr.warnings)
    std::fprintf(stderr, "hlp_run: warning: %s\n", w.c_str());

  std::printf("%-24s %-10s %-18s %8s %4s %s\n", "job", "status", "error",
              "value", "att", "detail");
  for (const hlp::jobs::JobResult& r : cr.results) {
    std::printf("%-24s %-10s %-18s %8.4g %4d %s%s%s\n", r.id.c_str(),
                hlp::jobs::to_string(r.status),
                r.error == hlp::jobs::ErrorClass::None
                    ? "-"
                    : hlp::jobs::to_string(r.error),
                r.value, r.attempts, r.degraded ? "[degraded] " : "",
                r.from_ledger ? "[ledger] " : "", r.detail.c_str());
  }
  std::printf(
      "\n%zu jobs: %zu completed (%zu degraded), %zu failed, %zu cancelled, "
      "%zu retries; mean value %.6g\n",
      cr.results.size(), cr.completed, cr.degraded, cr.failed, cr.cancelled,
      cr.retries, cr.value_stats.mean());

  // Lifecycle transition counts, straight from the runner's live counters
  // (the same surface a monitoring thread would poll mid-campaign).
  const hlp::jobs::RunnerCounters ct = runner.counters();
  std::printf("\nlifecycle counters\n");
  std::printf("  %-22s %6zu\n", "enqueued", ct.enqueued);
  std::printf("  %-22s %6zu\n", "attempts started", ct.attempts_started);
  std::printf("  %-22s %6zu\n", "retried", ct.retried);
  std::printf("  %-22s %6zu\n", "degraded", ct.degraded);
  std::printf("  %-22s %6zu\n", "completed", ct.completed);
  std::printf("  %-22s %6zu\n", "failed", ct.failed);
  std::printf("  %-22s %6zu\n", "cancelled", ct.cancelled);
  std::printf("  %-22s %6zu\n", "served from ledger", ct.served_from_ledger);

  if (!cr.all_completed() && !ledger_path.empty()) {
    // Name the ledger that holds the completed work so resuming never
    // means guessing which file this run wrote.
    std::fprintf(stderr,
                 "hlp_run: campaign incomplete; ledger %s holds the "
                 "completed jobs — rerun with --ledger %s --resume\n",
                 ledger_path.c_str(), ledger_path.c_str());
  }
  return cr.all_completed() ? 0 : 1;
}
