// Bus-encoding explorer: given an address-stream profile (sequentiality,
// interleaving), ranks the Section III-G encoding schemes and recommends
// one. Run with no arguments for a demo sweep, or pass
//   bus_explorer <width> <seq-fraction> <arrays>
// to describe your stream.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "core/bus_encoding.hpp"

int main(int argc, char** argv) {
  using namespace hlp;
  using namespace hlp::core;

  int width = argc > 1 ? std::atoi(argv[1]) : 16;
  double seq = argc > 2 ? std::atof(argv[2]) : 0.8;
  int arrays = argc > 3 ? std::atoi(argv[3]) : 1;

  stats::Rng rng(2026);
  std::vector<std::uint64_t> stream =
      arrays > 1 ? interleaved_array_stream(20000, arrays, width, rng)
                 : address_stream(20000, seq, width, rng);
  std::vector<std::uint64_t> training(stream.begin(),
                                      stream.begin() + 4000);

  std::printf("stream: width=%d seq=%.2f arrays=%d (%zu words)\n\n", width,
              seq, arrays, stream.size());

  struct Entry {
    std::string name;
    double per_word;
    int phys;
  };
  std::vector<Entry> results;
  std::vector<std::unique_ptr<BusEncoder>> encs;
  encs.push_back(binary_encoder(width));
  encs.push_back(gray_encoder(width));
  encs.push_back(bus_invert_encoder(width));
  encs.push_back(t0_encoder(width));
  encs.push_back(t0_bi_encoder(width));
  encs.push_back(working_zone_encoder(width, std::max(2, arrays), 5));
  encs.push_back(beach_encoder(width, training, 8));
  for (auto& e : encs) {
    auto r = run_encoder(*e, stream, width);
    results.push_back({e->name(), r.per_word, r.phys_width});
  }
  std::sort(results.begin(), results.end(),
            [](const Entry& a, const Entry& b) {
              return a.per_word < b.per_word;
            });
  std::printf("%-14s %14s %12s %14s\n", "scheme", "trans/word", "buslines",
              "vs binary");
  double binary = 0.0;
  for (auto& r : results)
    if (r.name == "binary") binary = r.per_word;
  for (auto& r : results)
    std::printf("%-14s %14.3f %12d %13.1f%%\n", r.name.c_str(), r.per_word,
                r.phys, 100.0 * (1.0 - r.per_word / binary));
  std::printf("\nrecommended: %s\n", results.front().name.c_str());
  return 0;
}
