// Design-improvement loop on a FIR filter (the paper's Fig. 1 flow,
// exercised end to end):
//
//   behavioral transform  ->  datapath synthesis  ->  power analysis
//
// We compare the general-multiplier datapath against the constant-
// multiplication (shift/add) version, then retime the winner's pipeline
// register for additional glitch-power savings.

#include <cstdio>
#include <vector>

#include "core/behavioral_transform.hpp"
#include "core/retiming_power.hpp"
#include "sim/streams.hpp"

int main() {
  using namespace hlp;
  using namespace hlp::core;

  std::vector<int> coeffs{93, 57, 201, 39, 141, 78};
  const int width = 8;

  std::printf("== step 1: behavioral choice — multiplier vs shift/add ==\n");
  auto fir_mul = build_fir_datapath(coeffs, width, false);
  auto fir_sa = build_fir_datapath(coeffs, width, true);

  stats::Rng rng(7);
  auto samples = sim::gaussian_walk_stream(width, 2000, 0.9, 0.3, rng);
  auto cap_mul = fir_capacitance_breakdown(fir_mul, samples);
  auto cap_sa = fir_capacitance_breakdown(fir_sa, samples);
  double t_mul = 0, t_sa = 0;
  for (auto& [k, v] : cap_mul) t_mul += v;
  for (auto& [k, v] : cap_sa) t_sa += v;
  std::printf("multiplier datapath: %5zu gates, switched cap %8.1f\n",
              fir_mul.netlist.logic_gate_count(), t_mul);
  std::printf("shift/add datapath:  %5zu gates, switched cap %8.1f "
              "(%.0f%% lower)\n",
              fir_sa.netlist.logic_gate_count(), t_sa,
              100.0 * (1.0 - t_sa / t_mul));

  std::printf("\n== step 2: retime the adder network for glitch power ==\n");
  // Wrap the (combinational part of the) winner as a module for retiming.
  netlist::Module mod;
  mod.name = "fir-core";
  {
    // Rebuild just the combinational core: taps as inputs.
    auto core_fir = build_fir_datapath(coeffs, width, true);
    mod.netlist = std::move(core_fir.netlist);
    mod.input_words = {core_fir.input};
    mod.output_words = {core_fir.output};
  }
  // Sweep register cuts on a standalone multiplier block to illustrate.
  auto mult = netlist::multiplier_module(5);
  auto in = sim::random_stream(10, 800, 0.5, rng);
  int pick = select_cut_monteiro(mult, in);
  auto base = evaluate_retimed(place_registers_at_cut(mult, 0), mult, in);
  auto best = evaluate_retimed(place_registers_at_cut(mult, pick), mult, in);
  std::printf("multiplier pipeline: cut@inputs P=%.4g, heuristic cut@%d "
              "P=%.4g (%.0f%% lower), functionally %s\n",
              base.power_total, pick, best.power_total,
              100.0 * (1.0 - best.power_total / base.power_total),
              best.functionally_correct ? "equivalent" : "BROKEN");

  std::printf("\n== summary ==\n");
  std::printf("The constant-multiplication transformation plus glitch-"
              "aware register placement reproduce the paper's Table I "
              "direction:\nexecution-unit capacitance falls sharply, "
              "register/interconnect capacitance falls with area, control "
              "rises slightly.\n");
  return 0;
}
