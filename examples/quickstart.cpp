// Quickstart: the core estimation loop in ~60 lines.
//
// 1. Build an RT-level component (an 8-bit adder) as a gate-level netlist.
// 2. Characterize it under pseudorandom data (gate-level reference).
// 3. Fit an input-output power macro-model (Section II-C1 of the paper).
// 4. Use the macro-model to estimate power on a different workload and
//    compare with the gate-level truth.

#include <cstdio>

#include "core/macromodel.hpp"
#include "sim/streams.hpp"

int main() {
  using namespace hlp;

  // 1. An 8-bit ripple-carry adder from the module library.
  auto adder = netlist::adder_module(8);
  std::printf("module %s: %zu logic gates, depth %d, C_tot %.1f\n",
              adder.name.c_str(), adder.netlist.logic_gate_count(),
              adder.netlist.depth(), adder.netlist.total_capacitance());

  // 2. Characterize across activity levels (a single white-noise stream
  //    would leave the regression blind to quiet workloads).
  stats::Rng rng(1);
  int n_in = adder.total_input_bits();
  auto training = sim::concat_streams({
      sim::random_stream(n_in, 800, 0.5, rng),
      sim::correlated_stream(n_in, 800, 0.7, rng),
      sim::correlated_stream(n_in, 800, 0.95, rng),
  });
  auto chr = core::characterize(adder, training);
  std::printf("characterized over %zu transitions, mean switched cap "
              "%.2f/cycle\n", chr.transitions(), chr.mean_energy());

  // 3. Fit the input-output macro-model.
  core::InputOutputModel model;
  model.fit(chr);

  // 4. Estimate power for a quieter workload without gate-level sim...
  auto workload = sim::correlated_stream(adder.total_input_bits(), 2000,
                                         0.9, rng);
  auto chr_ref = core::characterize(adder, workload);  // reference only
  double est = 0.0;
  for (std::size_t t = 0; t < chr_ref.transitions(); ++t)
    est += model.predict_cycle(chr_ref.in_activity[t],
                               chr_ref.out_activity[t]);
  est /= static_cast<double>(chr_ref.transitions());

  sim::PowerParams params;  // 5 V, 20 MHz defaults
  double to_watts = 0.5 * params.vdd * params.vdd * params.freq;
  std::printf("\nworkload estimate:  %.4g W (macro-model)\n", est * to_watts);
  std::printf("gate-level truth:   %.4g W\n",
              chr_ref.mean_energy() * to_watts);
  std::printf("relative error:     %.1f%%\n",
              100.0 * std::abs(est - chr_ref.mean_energy()) /
                  chr_ref.mean_energy());
  return 0;
}
