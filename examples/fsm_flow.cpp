// Controller synthesis flow (Section III-H + III-I): STG -> state
// minimization -> low-power encoding -> gate-level synthesis -> clock
// gating, with power measured at each stage.

#include <cstdio>

#include "core/clock_gating.hpp"
#include "core/fsm_encoding_power.hpp"
#include "fsm/minimize.hpp"

int main() {
  using namespace hlp;
  using namespace hlp::core;

  // A reactive protocol controller with a long handshake burst.
  auto stg = fsm::protocol_fsm(6);
  std::printf("controller: %zu states, %d input bits, %d output bits\n",
              stg.num_states(), stg.n_inputs(), stg.n_outputs());

  // Stage 1: state minimization.
  auto min = fsm::minimize(stg);
  std::printf("state minimization: %zu -> %zu states\n", stg.num_states(),
              min.num_states());

  // Stage 2: encoding comparison (rare requests: mostly idle).
  std::vector<double> probs{0.85, 0.05, 0.05, 0.05};
  std::printf("\nencoding comparison (request prob 0.15):\n");
  std::printf("  %-10s %6s %8s %14s %12s\n", "style", "bits", "gates",
              "E[state-sw]", "power");
  auto reports = compare_encodings(min, 8000, 3, probs);
  const EncodingReport* best = nullptr;
  for (auto& r : reports) {
    std::printf("  %-10s %6d %8zu %14.3f %12.4g\n", r.style.c_str(),
                r.state_bits, r.gates, r.expected_switching,
                r.simulated_power);
    if (r.style != "one-hot" && (!best || r.simulated_power < best->simulated_power))
      best = &r;
  }
  std::printf("selected encoding: %s\n", best->style.c_str());

  // Stage 3: synthesize with the chosen encoding and add clock gating.
  auto ma = fsm::analyze_markov(min, probs);
  auto style = best->style == "gray" ? fsm::EncodingStyle::Gray
               : best->style == "low-power" ? fsm::EncodingStyle::LowPower
                                            : fsm::EncodingStyle::Binary;
  auto codes = fsm::encode_states(min, style, &ma, 3);
  auto sf = fsm::synthesize_fsm(
      min, codes, fsm::encoding_bits(style, min.num_states()));
  stats::Rng rng(5);
  auto cg = evaluate_clock_gating(min, sf, 8000, rng, probs);
  std::printf("\nclock gating: idle fraction %.2f, power %.4g -> %.4g "
              "(%.1f%% saving)\n", cg.idle_fraction, cg.base_power,
              cg.gated_power, 100.0 * cg.saving());
  return 0;
}
