// System-level power-management playground (Section III-B): generates an
// event-driven workload and races every shutdown policy on it.
//   shutdown_sim [events] [mean-gap]

#include <cstdio>
#include <cstdlib>

#include "core/shutdown.hpp"

int main(int argc, char** argv) {
  using namespace hlp;
  using namespace hlp::core;

  std::size_t events = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 10000;
  double gap = argc > 2 ? std::atof(argv[2]) : 2000.0;

  stats::Rng rng(1);
  auto w = session_workload(events, rng, 10.0, 5.0, gap);
  DeviceParams dev;
  double busy = 0.0;
  for (auto& e : w) busy += e.active;

  std::printf("%zu events, idle gaps ~%.0f, break-even %.2f, theoretical "
              "max improvement %.1fx\n\n", events, gap, breakeven_idle(dev),
              max_power_improvement(w));

  std::vector<std::unique_ptr<ShutdownPolicy>> policies;
  policies.push_back(always_on_policy());
  policies.push_back(static_timeout_policy(2.0 * breakeven_idle(dev)));
  policies.push_back(threshold_policy(dev));
  policies.push_back(regression_policy(dev));
  policies.push_back(hwang_wu_policy(dev));
  policies.push_back(oracle_policy(w, dev));

  std::printf("%-26s %10s %9s %10s\n", "policy", "avg-power", "improve",
              "perf-loss");
  double p0 = 0.0;
  for (auto& p : policies) {
    auto r = simulate_policy(w, dev, *p);
    if (p0 == 0.0) p0 = r.avg_power();
    std::printf("%-26s %10.4f %8.1fx %9.2f%%\n", p->name().c_str(),
                r.avg_power(), p0 / r.avg_power(),
                100.0 * r.perf_loss(busy));
  }
  return 0;
}
