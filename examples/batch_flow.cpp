// Batch flow: run a whole estimation campaign under supervision.
//
// The paper's experimental sections are batch-shaped — "run these
// estimators over these designs and tabulate". This example drives the
// hlp::jobs runner through that shape programmatically:
//
// 1. Build a campaign mixing symbolic, Monte Carlo, Markov, and
//    scheduling jobs, one of them budgeted tightly enough to fail.
// 2. Run it on a worker pool with a durable ledger; the over-budget
//    symbolic job is retried and downgraded to the sampled estimator.
// 3. Resume from the ledger to show that finished work is never redone.
//
// The same campaign can be run from a spec file with tools/hlp_run.

#include <cstdio>
#include <cstdlib>

#include "jobs/jobs.hpp"

int main() {
  using namespace hlp;
  using jobs::Job;
  using jobs::JobKind;

  // 1. The campaign. Jobs are plain data: kernel kind + design spec +
  //    per-attempt budget. Seeds derive from the job id, so every run of
  //    this campaign — serial, parallel, or resumed — is bit-identical.
  std::vector<Job> campaign;
  auto add = [&campaign](const char* id, JobKind kind, const char* design) {
    Job j;
    j.id = id;
    j.kind = kind;
    j.design = design;
    j.epsilon = 0.03;
    campaign.push_back(j);
  };
  add("add16-exact", JobKind::Symbolic, "adder:16");
  add("alu12-mc", JobKind::MonteCarlo, "alu:12");
  add("dma-markov", JobKind::Markov, "dma");
  add("fir16-sched", JobKind::Schedule, "fir:16");
  add("mult8-exact", JobKind::Symbolic, "mult:8");
  // Cap the multiplier's BDD at a size it cannot fit in: the first attempt
  // trips the node cap, the retry downgrades to Monte Carlo sampling.
  campaign.back().budget = exec::Budget::with_node_cap(3000);

  // 2. Run under supervision with a durable ledger.
  const char* tmp = std::getenv("TMPDIR");
  std::string ledger = std::string(tmp ? tmp : "/tmp") + "/batch_flow.ledger";
  jobs::RunnerOptions opts;
  opts.workers = 4;
  opts.ledger_path = ledger;
  jobs::CampaignResult cr = jobs::Runner(opts).run(campaign);

  std::printf("%-14s %-10s %5s  %s\n", "job", "status", "value", "detail");
  for (const jobs::JobResult& r : cr.results)
    std::printf("%-14s %-10s %5.1f  %s%s\n", r.id.c_str(),
                jobs::to_string(r.status), r.value,
                r.degraded ? "[degraded] " : "", r.detail.c_str());
  std::printf("-> %zu completed, %zu retries, %zu degraded; ledger %s\n\n",
              cr.completed, cr.retries, cr.degraded, ledger.c_str());

  // 3. Resume the same campaign: every job already has a completed record
  //    in the ledger, so nothing recomputes and the values read back
  //    bit-identical (round-trip-exact serialization).
  jobs::RunnerOptions ropts;
  ropts.workers = 4;
  ropts.ledger_path = ledger;
  jobs::CampaignResult rr = jobs::Runner(ropts).resume(campaign);
  std::size_t reused = 0;
  bool identical = true;
  for (std::size_t i = 0; i < rr.results.size(); ++i) {
    reused += rr.results[i].from_ledger ? 1u : 0u;
    identical = identical && rr.results[i].value == cr.results[i].value;
  }
  std::printf("resume: %zu/%zu jobs served from the ledger, values %s\n",
              reused, rr.results.size(),
              identical ? "bit-identical" : "DIFFER (bug!)");
  std::remove(ledger.c_str());
  return cr.all_completed() && identical ? 0 : 1;
}
