// Controller power workbench: reads a KISS2 FSM (file argument, or a
// built-in handshake controller) and runs the full Section III-H / III-I
// controller flow on it: minimize, compare encodings, clock-gate, and try
// a two-way decomposition. The kind of one-stop report the paper's Fig. 1
// "design improvement loop" feeds on.
//
//   kiss_power [file.kiss]

#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/clock_gating.hpp"
#include "core/fsm_encoding_power.hpp"
#include "fsm/decompose.hpp"
#include "fsm/kiss.hpp"
#include "fsm/minimize.hpp"

namespace {

constexpr const char* kDefaultKiss = R"(
# bus arbiter: two requesters, round-robin grant, idle parking
.i 2
.o 2
.s 5
.r idle
00 idle idle 00
1- idle g1   10
01 idle g2   01
1- g1   g1   10
0- g1   rel1 00
-1 g2   g2   01
-0 g2   rel2 00
-- rel1 idle 00
-- rel2 idle 00
.e
)";

}  // namespace

int main(int argc, char** argv) {
  using namespace hlp;
  using namespace hlp::core;

  std::string text;
  if (argc > 1) {
    std::ifstream f(argv[1]);
    if (!f) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::ostringstream ss;
    ss << f.rdbuf();
    text = ss.str();
    std::printf("machine: %s\n", argv[1]);
  } else {
    text = kDefaultKiss;
    std::printf("machine: built-in bus arbiter (pass a .kiss file to "
                "analyze your own)\n");
  }

  auto stg = fsm::parse_kiss2(text);
  std::printf("%zu states, %d inputs, %d outputs\n", stg.num_states(),
              stg.n_inputs(), stg.n_outputs());

  auto min = fsm::minimize(stg);
  std::printf("state minimization: %zu -> %zu states\n\n", stg.num_states(),
              min.num_states());

  std::printf("encodings:\n  %-10s %6s %8s %14s %12s\n", "style", "bits",
              "gates", "E[state-sw]", "power");
  auto reports = compare_encodings(min, 6000, 3);
  for (auto& r : reports)
    std::printf("  %-10s %6d %8zu %14.3f %12.4g\n", r.style.c_str(),
                r.state_bits, r.gates, r.expected_switching,
                r.simulated_power);

  auto ma = fsm::analyze_markov(min);
  auto codes = fsm::encode_states(min, fsm::EncodingStyle::LowPower, &ma, 3);
  auto sf = fsm::synthesize_fsm(
      min, codes,
      fsm::encoding_bits(fsm::EncodingStyle::LowPower, min.num_states()));
  stats::Rng rng(5);
  auto cg = evaluate_clock_gating(min, sf, 6000, rng);
  std::printf("\nclock gating: idle fraction %.2f, %.4g -> %.4g "
              "(%.1f%% saving)\n", cg.idle_fraction, cg.base_power,
              cg.gated_power, 100.0 * cg.saving());

  if (min.num_states() >= 4) {
    auto part = fsm::partition_min_crossing(min, ma);
    auto ev = fsm::evaluate_decomposition(min, part, 6000, 7);
    std::printf("decomposition: crossing %.3f/cycle, %.4g -> %.4g "
                "(%.1f%% %s)%s\n", ev.crossing_rate, ev.mono_power,
                ev.decomposed_power, 100.0 * std::abs(ev.saving()),
                ev.saving() >= 0 ? "saving" : "loss — keep monolithic",
                ev.functionally_correct ? "" : " [verification FAILED]");
  }
  return 0;
}
