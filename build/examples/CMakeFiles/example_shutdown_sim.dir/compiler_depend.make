# Empty compiler generated dependencies file for example_shutdown_sim.
# This may be replaced when dependencies are built.
