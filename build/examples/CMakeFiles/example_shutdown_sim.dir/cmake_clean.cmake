file(REMOVE_RECURSE
  "CMakeFiles/example_shutdown_sim.dir/shutdown_sim.cpp.o"
  "CMakeFiles/example_shutdown_sim.dir/shutdown_sim.cpp.o.d"
  "example_shutdown_sim"
  "example_shutdown_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_shutdown_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
