# Empty compiler generated dependencies file for example_fsm_flow.
# This may be replaced when dependencies are built.
