file(REMOVE_RECURSE
  "CMakeFiles/example_fsm_flow.dir/fsm_flow.cpp.o"
  "CMakeFiles/example_fsm_flow.dir/fsm_flow.cpp.o.d"
  "example_fsm_flow"
  "example_fsm_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_fsm_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
