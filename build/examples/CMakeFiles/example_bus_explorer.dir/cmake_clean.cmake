file(REMOVE_RECURSE
  "CMakeFiles/example_bus_explorer.dir/bus_explorer.cpp.o"
  "CMakeFiles/example_bus_explorer.dir/bus_explorer.cpp.o.d"
  "example_bus_explorer"
  "example_bus_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_bus_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
