# Empty dependencies file for example_bus_explorer.
# This may be replaced when dependencies are built.
