file(REMOVE_RECURSE
  "CMakeFiles/example_kiss_power.dir/kiss_power.cpp.o"
  "CMakeFiles/example_kiss_power.dir/kiss_power.cpp.o.d"
  "example_kiss_power"
  "example_kiss_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_kiss_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
