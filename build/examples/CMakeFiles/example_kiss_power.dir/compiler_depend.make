# Empty compiler generated dependencies file for example_kiss_power.
# This may be replaced when dependencies are built.
