file(REMOVE_RECURSE
  "CMakeFiles/example_fir_lowpower_flow.dir/fir_lowpower_flow.cpp.o"
  "CMakeFiles/example_fir_lowpower_flow.dir/fir_lowpower_flow.cpp.o.d"
  "example_fir_lowpower_flow"
  "example_fir_lowpower_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_fir_lowpower_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
