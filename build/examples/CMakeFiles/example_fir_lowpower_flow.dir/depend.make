# Empty dependencies file for example_fir_lowpower_flow.
# This may be replaced when dependencies are built.
