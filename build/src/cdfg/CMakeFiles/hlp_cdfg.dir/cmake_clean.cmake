file(REMOVE_RECURSE
  "CMakeFiles/hlp_cdfg.dir/cdfg.cpp.o"
  "CMakeFiles/hlp_cdfg.dir/cdfg.cpp.o.d"
  "CMakeFiles/hlp_cdfg.dir/datasim.cpp.o"
  "CMakeFiles/hlp_cdfg.dir/datasim.cpp.o.d"
  "CMakeFiles/hlp_cdfg.dir/generators.cpp.o"
  "CMakeFiles/hlp_cdfg.dir/generators.cpp.o.d"
  "libhlp_cdfg.a"
  "libhlp_cdfg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hlp_cdfg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
