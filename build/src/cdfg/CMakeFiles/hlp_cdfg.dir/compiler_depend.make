# Empty compiler generated dependencies file for hlp_cdfg.
# This may be replaced when dependencies are built.
