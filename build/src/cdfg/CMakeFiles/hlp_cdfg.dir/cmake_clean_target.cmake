file(REMOVE_RECURSE
  "libhlp_cdfg.a"
)
