
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cdfg/cdfg.cpp" "src/cdfg/CMakeFiles/hlp_cdfg.dir/cdfg.cpp.o" "gcc" "src/cdfg/CMakeFiles/hlp_cdfg.dir/cdfg.cpp.o.d"
  "/root/repo/src/cdfg/datasim.cpp" "src/cdfg/CMakeFiles/hlp_cdfg.dir/datasim.cpp.o" "gcc" "src/cdfg/CMakeFiles/hlp_cdfg.dir/datasim.cpp.o.d"
  "/root/repo/src/cdfg/generators.cpp" "src/cdfg/CMakeFiles/hlp_cdfg.dir/generators.cpp.o" "gcc" "src/cdfg/CMakeFiles/hlp_cdfg.dir/generators.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stats/CMakeFiles/hlp_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
