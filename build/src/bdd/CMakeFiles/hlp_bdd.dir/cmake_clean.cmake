file(REMOVE_RECURSE
  "CMakeFiles/hlp_bdd.dir/bdd.cpp.o"
  "CMakeFiles/hlp_bdd.dir/bdd.cpp.o.d"
  "CMakeFiles/hlp_bdd.dir/bdd_to_netlist.cpp.o"
  "CMakeFiles/hlp_bdd.dir/bdd_to_netlist.cpp.o.d"
  "CMakeFiles/hlp_bdd.dir/netlist_bdd.cpp.o"
  "CMakeFiles/hlp_bdd.dir/netlist_bdd.cpp.o.d"
  "libhlp_bdd.a"
  "libhlp_bdd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hlp_bdd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
