# Empty compiler generated dependencies file for hlp_bdd.
# This may be replaced when dependencies are built.
