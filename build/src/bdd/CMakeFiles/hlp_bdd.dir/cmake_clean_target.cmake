file(REMOVE_RECURSE
  "libhlp_bdd.a"
)
