
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fsm/benchmarks.cpp" "src/fsm/CMakeFiles/hlp_fsm.dir/benchmarks.cpp.o" "gcc" "src/fsm/CMakeFiles/hlp_fsm.dir/benchmarks.cpp.o.d"
  "/root/repo/src/fsm/decompose.cpp" "src/fsm/CMakeFiles/hlp_fsm.dir/decompose.cpp.o" "gcc" "src/fsm/CMakeFiles/hlp_fsm.dir/decompose.cpp.o.d"
  "/root/repo/src/fsm/encoding.cpp" "src/fsm/CMakeFiles/hlp_fsm.dir/encoding.cpp.o" "gcc" "src/fsm/CMakeFiles/hlp_fsm.dir/encoding.cpp.o.d"
  "/root/repo/src/fsm/kiss.cpp" "src/fsm/CMakeFiles/hlp_fsm.dir/kiss.cpp.o" "gcc" "src/fsm/CMakeFiles/hlp_fsm.dir/kiss.cpp.o.d"
  "/root/repo/src/fsm/markov.cpp" "src/fsm/CMakeFiles/hlp_fsm.dir/markov.cpp.o" "gcc" "src/fsm/CMakeFiles/hlp_fsm.dir/markov.cpp.o.d"
  "/root/repo/src/fsm/minimize.cpp" "src/fsm/CMakeFiles/hlp_fsm.dir/minimize.cpp.o" "gcc" "src/fsm/CMakeFiles/hlp_fsm.dir/minimize.cpp.o.d"
  "/root/repo/src/fsm/stg.cpp" "src/fsm/CMakeFiles/hlp_fsm.dir/stg.cpp.o" "gcc" "src/fsm/CMakeFiles/hlp_fsm.dir/stg.cpp.o.d"
  "/root/repo/src/fsm/symbolic.cpp" "src/fsm/CMakeFiles/hlp_fsm.dir/symbolic.cpp.o" "gcc" "src/fsm/CMakeFiles/hlp_fsm.dir/symbolic.cpp.o.d"
  "/root/repo/src/fsm/synth.cpp" "src/fsm/CMakeFiles/hlp_fsm.dir/synth.cpp.o" "gcc" "src/fsm/CMakeFiles/hlp_fsm.dir/synth.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netlist/CMakeFiles/hlp_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hlp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/hlp_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
