file(REMOVE_RECURSE
  "libhlp_fsm.a"
)
