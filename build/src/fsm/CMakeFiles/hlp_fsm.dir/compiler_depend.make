# Empty compiler generated dependencies file for hlp_fsm.
# This may be replaced when dependencies are built.
