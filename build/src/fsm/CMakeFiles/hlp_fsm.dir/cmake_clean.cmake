file(REMOVE_RECURSE
  "CMakeFiles/hlp_fsm.dir/benchmarks.cpp.o"
  "CMakeFiles/hlp_fsm.dir/benchmarks.cpp.o.d"
  "CMakeFiles/hlp_fsm.dir/decompose.cpp.o"
  "CMakeFiles/hlp_fsm.dir/decompose.cpp.o.d"
  "CMakeFiles/hlp_fsm.dir/encoding.cpp.o"
  "CMakeFiles/hlp_fsm.dir/encoding.cpp.o.d"
  "CMakeFiles/hlp_fsm.dir/kiss.cpp.o"
  "CMakeFiles/hlp_fsm.dir/kiss.cpp.o.d"
  "CMakeFiles/hlp_fsm.dir/markov.cpp.o"
  "CMakeFiles/hlp_fsm.dir/markov.cpp.o.d"
  "CMakeFiles/hlp_fsm.dir/minimize.cpp.o"
  "CMakeFiles/hlp_fsm.dir/minimize.cpp.o.d"
  "CMakeFiles/hlp_fsm.dir/stg.cpp.o"
  "CMakeFiles/hlp_fsm.dir/stg.cpp.o.d"
  "CMakeFiles/hlp_fsm.dir/symbolic.cpp.o"
  "CMakeFiles/hlp_fsm.dir/symbolic.cpp.o.d"
  "CMakeFiles/hlp_fsm.dir/synth.cpp.o"
  "CMakeFiles/hlp_fsm.dir/synth.cpp.o.d"
  "libhlp_fsm.a"
  "libhlp_fsm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hlp_fsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
