
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/allocation.cpp" "src/core/CMakeFiles/hlp_core.dir/allocation.cpp.o" "gcc" "src/core/CMakeFiles/hlp_core.dir/allocation.cpp.o.d"
  "/root/repo/src/core/behavioral_transform.cpp" "src/core/CMakeFiles/hlp_core.dir/behavioral_transform.cpp.o" "gcc" "src/core/CMakeFiles/hlp_core.dir/behavioral_transform.cpp.o.d"
  "/root/repo/src/core/bus_codec.cpp" "src/core/CMakeFiles/hlp_core.dir/bus_codec.cpp.o" "gcc" "src/core/CMakeFiles/hlp_core.dir/bus_codec.cpp.o.d"
  "/root/repo/src/core/bus_encoding.cpp" "src/core/CMakeFiles/hlp_core.dir/bus_encoding.cpp.o" "gcc" "src/core/CMakeFiles/hlp_core.dir/bus_encoding.cpp.o.d"
  "/root/repo/src/core/clock_gating.cpp" "src/core/CMakeFiles/hlp_core.dir/clock_gating.cpp.o" "gcc" "src/core/CMakeFiles/hlp_core.dir/clock_gating.cpp.o.d"
  "/root/repo/src/core/compaction.cpp" "src/core/CMakeFiles/hlp_core.dir/compaction.cpp.o" "gcc" "src/core/CMakeFiles/hlp_core.dir/compaction.cpp.o.d"
  "/root/repo/src/core/complexity_model.cpp" "src/core/CMakeFiles/hlp_core.dir/complexity_model.cpp.o" "gcc" "src/core/CMakeFiles/hlp_core.dir/complexity_model.cpp.o.d"
  "/root/repo/src/core/control_respec.cpp" "src/core/CMakeFiles/hlp_core.dir/control_respec.cpp.o" "gcc" "src/core/CMakeFiles/hlp_core.dir/control_respec.cpp.o.d"
  "/root/repo/src/core/entropy_model.cpp" "src/core/CMakeFiles/hlp_core.dir/entropy_model.cpp.o" "gcc" "src/core/CMakeFiles/hlp_core.dir/entropy_model.cpp.o.d"
  "/root/repo/src/core/fsm_encoding_power.cpp" "src/core/CMakeFiles/hlp_core.dir/fsm_encoding_power.cpp.o" "gcc" "src/core/CMakeFiles/hlp_core.dir/fsm_encoding_power.cpp.o.d"
  "/root/repo/src/core/guarded_eval.cpp" "src/core/CMakeFiles/hlp_core.dir/guarded_eval.cpp.o" "gcc" "src/core/CMakeFiles/hlp_core.dir/guarded_eval.cpp.o.d"
  "/root/repo/src/core/macromodel.cpp" "src/core/CMakeFiles/hlp_core.dir/macromodel.cpp.o" "gcc" "src/core/CMakeFiles/hlp_core.dir/macromodel.cpp.o.d"
  "/root/repo/src/core/memory_hierarchy.cpp" "src/core/CMakeFiles/hlp_core.dir/memory_hierarchy.cpp.o" "gcc" "src/core/CMakeFiles/hlp_core.dir/memory_hierarchy.cpp.o.d"
  "/root/repo/src/core/memory_model.cpp" "src/core/CMakeFiles/hlp_core.dir/memory_model.cpp.o" "gcc" "src/core/CMakeFiles/hlp_core.dir/memory_model.cpp.o.d"
  "/root/repo/src/core/multivoltage.cpp" "src/core/CMakeFiles/hlp_core.dir/multivoltage.cpp.o" "gcc" "src/core/CMakeFiles/hlp_core.dir/multivoltage.cpp.o.d"
  "/root/repo/src/core/precomputation.cpp" "src/core/CMakeFiles/hlp_core.dir/precomputation.cpp.o" "gcc" "src/core/CMakeFiles/hlp_core.dir/precomputation.cpp.o.d"
  "/root/repo/src/core/retiming_power.cpp" "src/core/CMakeFiles/hlp_core.dir/retiming_power.cpp.o" "gcc" "src/core/CMakeFiles/hlp_core.dir/retiming_power.cpp.o.d"
  "/root/repo/src/core/sampling_power.cpp" "src/core/CMakeFiles/hlp_core.dir/sampling_power.cpp.o" "gcc" "src/core/CMakeFiles/hlp_core.dir/sampling_power.cpp.o.d"
  "/root/repo/src/core/scheduling_power.cpp" "src/core/CMakeFiles/hlp_core.dir/scheduling_power.cpp.o" "gcc" "src/core/CMakeFiles/hlp_core.dir/scheduling_power.cpp.o.d"
  "/root/repo/src/core/shutdown.cpp" "src/core/CMakeFiles/hlp_core.dir/shutdown.cpp.o" "gcc" "src/core/CMakeFiles/hlp_core.dir/shutdown.cpp.o.d"
  "/root/repo/src/core/software_power.cpp" "src/core/CMakeFiles/hlp_core.dir/software_power.cpp.o" "gcc" "src/core/CMakeFiles/hlp_core.dir/software_power.cpp.o.d"
  "/root/repo/src/core/two_level.cpp" "src/core/CMakeFiles/hlp_core.dir/two_level.cpp.o" "gcc" "src/core/CMakeFiles/hlp_core.dir/two_level.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netlist/CMakeFiles/hlp_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hlp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/bdd/CMakeFiles/hlp_bdd.dir/DependInfo.cmake"
  "/root/repo/build/src/fsm/CMakeFiles/hlp_fsm.dir/DependInfo.cmake"
  "/root/repo/build/src/cdfg/CMakeFiles/hlp_cdfg.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/hlp_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/hlp_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
