# Empty dependencies file for hlp_core.
# This may be replaced when dependencies are built.
