file(REMOVE_RECURSE
  "libhlp_core.a"
)
