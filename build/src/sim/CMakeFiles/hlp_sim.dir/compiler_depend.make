# Empty compiler generated dependencies file for hlp_sim.
# This may be replaced when dependencies are built.
