file(REMOVE_RECURSE
  "CMakeFiles/hlp_sim.dir/glitch_sim.cpp.o"
  "CMakeFiles/hlp_sim.dir/glitch_sim.cpp.o.d"
  "CMakeFiles/hlp_sim.dir/power.cpp.o"
  "CMakeFiles/hlp_sim.dir/power.cpp.o.d"
  "CMakeFiles/hlp_sim.dir/simulator.cpp.o"
  "CMakeFiles/hlp_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/hlp_sim.dir/streams.cpp.o"
  "CMakeFiles/hlp_sim.dir/streams.cpp.o.d"
  "libhlp_sim.a"
  "libhlp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hlp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
