
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/glitch_sim.cpp" "src/sim/CMakeFiles/hlp_sim.dir/glitch_sim.cpp.o" "gcc" "src/sim/CMakeFiles/hlp_sim.dir/glitch_sim.cpp.o.d"
  "/root/repo/src/sim/power.cpp" "src/sim/CMakeFiles/hlp_sim.dir/power.cpp.o" "gcc" "src/sim/CMakeFiles/hlp_sim.dir/power.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/sim/CMakeFiles/hlp_sim.dir/simulator.cpp.o" "gcc" "src/sim/CMakeFiles/hlp_sim.dir/simulator.cpp.o.d"
  "/root/repo/src/sim/streams.cpp" "src/sim/CMakeFiles/hlp_sim.dir/streams.cpp.o" "gcc" "src/sim/CMakeFiles/hlp_sim.dir/streams.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netlist/CMakeFiles/hlp_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/hlp_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
