file(REMOVE_RECURSE
  "libhlp_sim.a"
)
