file(REMOVE_RECURSE
  "CMakeFiles/hlp_netlist.dir/copy.cpp.o"
  "CMakeFiles/hlp_netlist.dir/copy.cpp.o.d"
  "CMakeFiles/hlp_netlist.dir/generators.cpp.o"
  "CMakeFiles/hlp_netlist.dir/generators.cpp.o.d"
  "CMakeFiles/hlp_netlist.dir/netlist.cpp.o"
  "CMakeFiles/hlp_netlist.dir/netlist.cpp.o.d"
  "CMakeFiles/hlp_netlist.dir/verilog.cpp.o"
  "CMakeFiles/hlp_netlist.dir/verilog.cpp.o.d"
  "CMakeFiles/hlp_netlist.dir/words.cpp.o"
  "CMakeFiles/hlp_netlist.dir/words.cpp.o.d"
  "libhlp_netlist.a"
  "libhlp_netlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hlp_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
