
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netlist/copy.cpp" "src/netlist/CMakeFiles/hlp_netlist.dir/copy.cpp.o" "gcc" "src/netlist/CMakeFiles/hlp_netlist.dir/copy.cpp.o.d"
  "/root/repo/src/netlist/generators.cpp" "src/netlist/CMakeFiles/hlp_netlist.dir/generators.cpp.o" "gcc" "src/netlist/CMakeFiles/hlp_netlist.dir/generators.cpp.o.d"
  "/root/repo/src/netlist/netlist.cpp" "src/netlist/CMakeFiles/hlp_netlist.dir/netlist.cpp.o" "gcc" "src/netlist/CMakeFiles/hlp_netlist.dir/netlist.cpp.o.d"
  "/root/repo/src/netlist/verilog.cpp" "src/netlist/CMakeFiles/hlp_netlist.dir/verilog.cpp.o" "gcc" "src/netlist/CMakeFiles/hlp_netlist.dir/verilog.cpp.o.d"
  "/root/repo/src/netlist/words.cpp" "src/netlist/CMakeFiles/hlp_netlist.dir/words.cpp.o" "gcc" "src/netlist/CMakeFiles/hlp_netlist.dir/words.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stats/CMakeFiles/hlp_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
