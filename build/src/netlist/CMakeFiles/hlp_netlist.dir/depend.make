# Empty dependencies file for hlp_netlist.
# This may be replaced when dependencies are built.
