file(REMOVE_RECURSE
  "libhlp_netlist.a"
)
