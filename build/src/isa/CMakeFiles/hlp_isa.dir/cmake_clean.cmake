file(REMOVE_RECURSE
  "CMakeFiles/hlp_isa.dir/isa.cpp.o"
  "CMakeFiles/hlp_isa.dir/isa.cpp.o.d"
  "CMakeFiles/hlp_isa.dir/programs.cpp.o"
  "CMakeFiles/hlp_isa.dir/programs.cpp.o.d"
  "libhlp_isa.a"
  "libhlp_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hlp_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
