file(REMOVE_RECURSE
  "libhlp_isa.a"
)
