# Empty dependencies file for hlp_isa.
# This may be replaced when dependencies are built.
