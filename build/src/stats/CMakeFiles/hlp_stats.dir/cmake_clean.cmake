file(REMOVE_RECURSE
  "CMakeFiles/hlp_stats.dir/descriptive.cpp.o"
  "CMakeFiles/hlp_stats.dir/descriptive.cpp.o.d"
  "CMakeFiles/hlp_stats.dir/entropy.cpp.o"
  "CMakeFiles/hlp_stats.dir/entropy.cpp.o.d"
  "CMakeFiles/hlp_stats.dir/regression.cpp.o"
  "CMakeFiles/hlp_stats.dir/regression.cpp.o.d"
  "CMakeFiles/hlp_stats.dir/sampling.cpp.o"
  "CMakeFiles/hlp_stats.dir/sampling.cpp.o.d"
  "libhlp_stats.a"
  "libhlp_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hlp_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
