file(REMOVE_RECURSE
  "libhlp_stats.a"
)
