
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/descriptive.cpp" "src/stats/CMakeFiles/hlp_stats.dir/descriptive.cpp.o" "gcc" "src/stats/CMakeFiles/hlp_stats.dir/descriptive.cpp.o.d"
  "/root/repo/src/stats/entropy.cpp" "src/stats/CMakeFiles/hlp_stats.dir/entropy.cpp.o" "gcc" "src/stats/CMakeFiles/hlp_stats.dir/entropy.cpp.o.d"
  "/root/repo/src/stats/regression.cpp" "src/stats/CMakeFiles/hlp_stats.dir/regression.cpp.o" "gcc" "src/stats/CMakeFiles/hlp_stats.dir/regression.cpp.o.d"
  "/root/repo/src/stats/sampling.cpp" "src/stats/CMakeFiles/hlp_stats.dir/sampling.cpp.o" "gcc" "src/stats/CMakeFiles/hlp_stats.dir/sampling.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
