# Empty compiler generated dependencies file for hlp_stats.
# This may be replaced when dependencies are built.
