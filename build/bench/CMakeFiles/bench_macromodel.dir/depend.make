# Empty dependencies file for bench_macromodel.
# This may be replaced when dependencies are built.
