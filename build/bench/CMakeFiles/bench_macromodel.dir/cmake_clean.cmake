file(REMOVE_RECURSE
  "CMakeFiles/bench_macromodel.dir/bench_macromodel.cpp.o"
  "CMakeFiles/bench_macromodel.dir/bench_macromodel.cpp.o.d"
  "bench_macromodel"
  "bench_macromodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_macromodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
