# Empty dependencies file for bench_entropy.
# This may be replaced when dependencies are built.
