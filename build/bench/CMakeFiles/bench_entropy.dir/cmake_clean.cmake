file(REMOVE_RECURSE
  "CMakeFiles/bench_entropy.dir/bench_entropy.cpp.o"
  "CMakeFiles/bench_entropy.dir/bench_entropy.cpp.o.d"
  "bench_entropy"
  "bench_entropy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_entropy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
