file(REMOVE_RECURSE
  "CMakeFiles/bench_guarded_eval.dir/bench_guarded_eval.cpp.o"
  "CMakeFiles/bench_guarded_eval.dir/bench_guarded_eval.cpp.o.d"
  "bench_guarded_eval"
  "bench_guarded_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_guarded_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
