# Empty dependencies file for bench_guarded_eval.
# This may be replaced when dependencies are built.
