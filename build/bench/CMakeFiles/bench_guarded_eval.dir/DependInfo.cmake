
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_guarded_eval.cpp" "bench/CMakeFiles/bench_guarded_eval.dir/bench_guarded_eval.cpp.o" "gcc" "bench/CMakeFiles/bench_guarded_eval.dir/bench_guarded_eval.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/hlp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/bdd/CMakeFiles/hlp_bdd.dir/DependInfo.cmake"
  "/root/repo/build/src/fsm/CMakeFiles/hlp_fsm.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hlp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/hlp_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/cdfg/CMakeFiles/hlp_cdfg.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/hlp_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/hlp_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
