file(REMOVE_RECURSE
  "CMakeFiles/bench_scheduling.dir/bench_scheduling.cpp.o"
  "CMakeFiles/bench_scheduling.dir/bench_scheduling.cpp.o.d"
  "bench_scheduling"
  "bench_scheduling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scheduling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
