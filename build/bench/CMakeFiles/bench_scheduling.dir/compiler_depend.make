# Empty compiler generated dependencies file for bench_scheduling.
# This may be replaced when dependencies are built.
