# Empty dependencies file for bench_sampling.
# This may be replaced when dependencies are built.
