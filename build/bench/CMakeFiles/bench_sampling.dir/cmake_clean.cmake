file(REMOVE_RECURSE
  "CMakeFiles/bench_sampling.dir/bench_sampling.cpp.o"
  "CMakeFiles/bench_sampling.dir/bench_sampling.cpp.o.d"
  "bench_sampling"
  "bench_sampling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
