file(REMOVE_RECURSE
  "CMakeFiles/bench_memory.dir/bench_memory.cpp.o"
  "CMakeFiles/bench_memory.dir/bench_memory.cpp.o.d"
  "bench_memory"
  "bench_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
