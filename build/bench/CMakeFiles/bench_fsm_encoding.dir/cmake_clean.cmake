file(REMOVE_RECURSE
  "CMakeFiles/bench_fsm_encoding.dir/bench_fsm_encoding.cpp.o"
  "CMakeFiles/bench_fsm_encoding.dir/bench_fsm_encoding.cpp.o.d"
  "bench_fsm_encoding"
  "bench_fsm_encoding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fsm_encoding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
