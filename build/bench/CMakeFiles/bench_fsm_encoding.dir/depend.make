# Empty dependencies file for bench_fsm_encoding.
# This may be replaced when dependencies are built.
