file(REMOVE_RECURSE
  "CMakeFiles/bench_precomputation.dir/bench_precomputation.cpp.o"
  "CMakeFiles/bench_precomputation.dir/bench_precomputation.cpp.o.d"
  "bench_precomputation"
  "bench_precomputation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_precomputation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
