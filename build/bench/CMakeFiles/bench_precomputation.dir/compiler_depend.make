# Empty compiler generated dependencies file for bench_precomputation.
# This may be replaced when dependencies are built.
