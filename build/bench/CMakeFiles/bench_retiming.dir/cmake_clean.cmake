file(REMOVE_RECURSE
  "CMakeFiles/bench_retiming.dir/bench_retiming.cpp.o"
  "CMakeFiles/bench_retiming.dir/bench_retiming.cpp.o.d"
  "bench_retiming"
  "bench_retiming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_retiming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
