# Empty dependencies file for bench_retiming.
# This may be replaced when dependencies are built.
