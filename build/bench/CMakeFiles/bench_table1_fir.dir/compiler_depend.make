# Empty compiler generated dependencies file for bench_table1_fir.
# This may be replaced when dependencies are built.
