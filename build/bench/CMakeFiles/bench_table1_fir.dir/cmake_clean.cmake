file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_fir.dir/bench_table1_fir.cpp.o"
  "CMakeFiles/bench_table1_fir.dir/bench_table1_fir.cpp.o.d"
  "bench_table1_fir"
  "bench_table1_fir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_fir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
