# Empty dependencies file for bench_multivoltage.
# This may be replaced when dependencies are built.
