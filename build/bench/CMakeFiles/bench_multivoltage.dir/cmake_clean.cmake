file(REMOVE_RECURSE
  "CMakeFiles/bench_multivoltage.dir/bench_multivoltage.cpp.o"
  "CMakeFiles/bench_multivoltage.dir/bench_multivoltage.cpp.o.d"
  "bench_multivoltage"
  "bench_multivoltage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_multivoltage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
