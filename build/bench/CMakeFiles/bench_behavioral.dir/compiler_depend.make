# Empty compiler generated dependencies file for bench_behavioral.
# This may be replaced when dependencies are built.
