file(REMOVE_RECURSE
  "CMakeFiles/bench_behavioral.dir/bench_behavioral.cpp.o"
  "CMakeFiles/bench_behavioral.dir/bench_behavioral.cpp.o.d"
  "bench_behavioral"
  "bench_behavioral.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_behavioral.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
