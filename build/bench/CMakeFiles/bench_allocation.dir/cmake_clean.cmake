file(REMOVE_RECURSE
  "CMakeFiles/bench_allocation.dir/bench_allocation.cpp.o"
  "CMakeFiles/bench_allocation.dir/bench_allocation.cpp.o.d"
  "bench_allocation"
  "bench_allocation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_allocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
