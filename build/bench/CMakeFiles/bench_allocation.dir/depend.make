# Empty dependencies file for bench_allocation.
# This may be replaced when dependencies are built.
