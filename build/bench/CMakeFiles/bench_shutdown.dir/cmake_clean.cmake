file(REMOVE_RECURSE
  "CMakeFiles/bench_shutdown.dir/bench_shutdown.cpp.o"
  "CMakeFiles/bench_shutdown.dir/bench_shutdown.cpp.o.d"
  "bench_shutdown"
  "bench_shutdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_shutdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
