# Empty compiler generated dependencies file for bench_shutdown.
# This may be replaced when dependencies are built.
