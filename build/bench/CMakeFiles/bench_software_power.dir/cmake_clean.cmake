file(REMOVE_RECURSE
  "CMakeFiles/bench_software_power.dir/bench_software_power.cpp.o"
  "CMakeFiles/bench_software_power.dir/bench_software_power.cpp.o.d"
  "bench_software_power"
  "bench_software_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_software_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
