# Empty dependencies file for bench_software_power.
# This may be replaced when dependencies are built.
