file(REMOVE_RECURSE
  "CMakeFiles/bench_bus_encoding.dir/bench_bus_encoding.cpp.o"
  "CMakeFiles/bench_bus_encoding.dir/bench_bus_encoding.cpp.o.d"
  "bench_bus_encoding"
  "bench_bus_encoding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bus_encoding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
