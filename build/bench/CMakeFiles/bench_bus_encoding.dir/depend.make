# Empty dependencies file for bench_bus_encoding.
# This may be replaced when dependencies are built.
