file(REMOVE_RECURSE
  "CMakeFiles/bench_clock_gating.dir/bench_clock_gating.cpp.o"
  "CMakeFiles/bench_clock_gating.dir/bench_clock_gating.cpp.o.d"
  "bench_clock_gating"
  "bench_clock_gating.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_clock_gating.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
