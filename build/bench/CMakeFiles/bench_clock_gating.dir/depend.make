# Empty dependencies file for bench_clock_gating.
# This may be replaced when dependencies are built.
