
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_allocation.cpp" "tests/CMakeFiles/hlp_tests.dir/test_allocation.cpp.o" "gcc" "tests/CMakeFiles/hlp_tests.dir/test_allocation.cpp.o.d"
  "/root/repo/tests/test_bdd.cpp" "tests/CMakeFiles/hlp_tests.dir/test_bdd.cpp.o" "gcc" "tests/CMakeFiles/hlp_tests.dir/test_bdd.cpp.o.d"
  "/root/repo/tests/test_behavioral.cpp" "tests/CMakeFiles/hlp_tests.dir/test_behavioral.cpp.o" "gcc" "tests/CMakeFiles/hlp_tests.dir/test_behavioral.cpp.o.d"
  "/root/repo/tests/test_bus_codec.cpp" "tests/CMakeFiles/hlp_tests.dir/test_bus_codec.cpp.o" "gcc" "tests/CMakeFiles/hlp_tests.dir/test_bus_codec.cpp.o.d"
  "/root/repo/tests/test_bus_encoding.cpp" "tests/CMakeFiles/hlp_tests.dir/test_bus_encoding.cpp.o" "gcc" "tests/CMakeFiles/hlp_tests.dir/test_bus_encoding.cpp.o.d"
  "/root/repo/tests/test_cdfg.cpp" "tests/CMakeFiles/hlp_tests.dir/test_cdfg.cpp.o" "gcc" "tests/CMakeFiles/hlp_tests.dir/test_cdfg.cpp.o.d"
  "/root/repo/tests/test_clock_gating.cpp" "tests/CMakeFiles/hlp_tests.dir/test_clock_gating.cpp.o" "gcc" "tests/CMakeFiles/hlp_tests.dir/test_clock_gating.cpp.o.d"
  "/root/repo/tests/test_complexity_model.cpp" "tests/CMakeFiles/hlp_tests.dir/test_complexity_model.cpp.o" "gcc" "tests/CMakeFiles/hlp_tests.dir/test_complexity_model.cpp.o.d"
  "/root/repo/tests/test_decompose.cpp" "tests/CMakeFiles/hlp_tests.dir/test_decompose.cpp.o" "gcc" "tests/CMakeFiles/hlp_tests.dir/test_decompose.cpp.o.d"
  "/root/repo/tests/test_entropy_model.cpp" "tests/CMakeFiles/hlp_tests.dir/test_entropy_model.cpp.o" "gcc" "tests/CMakeFiles/hlp_tests.dir/test_entropy_model.cpp.o.d"
  "/root/repo/tests/test_fsm.cpp" "tests/CMakeFiles/hlp_tests.dir/test_fsm.cpp.o" "gcc" "tests/CMakeFiles/hlp_tests.dir/test_fsm.cpp.o.d"
  "/root/repo/tests/test_fsm_encoding.cpp" "tests/CMakeFiles/hlp_tests.dir/test_fsm_encoding.cpp.o" "gcc" "tests/CMakeFiles/hlp_tests.dir/test_fsm_encoding.cpp.o.d"
  "/root/repo/tests/test_guarded_eval.cpp" "tests/CMakeFiles/hlp_tests.dir/test_guarded_eval.cpp.o" "gcc" "tests/CMakeFiles/hlp_tests.dir/test_guarded_eval.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/hlp_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/hlp_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_io.cpp" "tests/CMakeFiles/hlp_tests.dir/test_io.cpp.o" "gcc" "tests/CMakeFiles/hlp_tests.dir/test_io.cpp.o.d"
  "/root/repo/tests/test_isa.cpp" "tests/CMakeFiles/hlp_tests.dir/test_isa.cpp.o" "gcc" "tests/CMakeFiles/hlp_tests.dir/test_isa.cpp.o.d"
  "/root/repo/tests/test_macromodel.cpp" "tests/CMakeFiles/hlp_tests.dir/test_macromodel.cpp.o" "gcc" "tests/CMakeFiles/hlp_tests.dir/test_macromodel.cpp.o.d"
  "/root/repo/tests/test_memory.cpp" "tests/CMakeFiles/hlp_tests.dir/test_memory.cpp.o" "gcc" "tests/CMakeFiles/hlp_tests.dir/test_memory.cpp.o.d"
  "/root/repo/tests/test_misc_coverage.cpp" "tests/CMakeFiles/hlp_tests.dir/test_misc_coverage.cpp.o" "gcc" "tests/CMakeFiles/hlp_tests.dir/test_misc_coverage.cpp.o.d"
  "/root/repo/tests/test_multivoltage.cpp" "tests/CMakeFiles/hlp_tests.dir/test_multivoltage.cpp.o" "gcc" "tests/CMakeFiles/hlp_tests.dir/test_multivoltage.cpp.o.d"
  "/root/repo/tests/test_netlist.cpp" "tests/CMakeFiles/hlp_tests.dir/test_netlist.cpp.o" "gcc" "tests/CMakeFiles/hlp_tests.dir/test_netlist.cpp.o.d"
  "/root/repo/tests/test_precomputation.cpp" "tests/CMakeFiles/hlp_tests.dir/test_precomputation.cpp.o" "gcc" "tests/CMakeFiles/hlp_tests.dir/test_precomputation.cpp.o.d"
  "/root/repo/tests/test_properties.cpp" "tests/CMakeFiles/hlp_tests.dir/test_properties.cpp.o" "gcc" "tests/CMakeFiles/hlp_tests.dir/test_properties.cpp.o.d"
  "/root/repo/tests/test_respec_cluster.cpp" "tests/CMakeFiles/hlp_tests.dir/test_respec_cluster.cpp.o" "gcc" "tests/CMakeFiles/hlp_tests.dir/test_respec_cluster.cpp.o.d"
  "/root/repo/tests/test_retiming.cpp" "tests/CMakeFiles/hlp_tests.dir/test_retiming.cpp.o" "gcc" "tests/CMakeFiles/hlp_tests.dir/test_retiming.cpp.o.d"
  "/root/repo/tests/test_sampling_ext.cpp" "tests/CMakeFiles/hlp_tests.dir/test_sampling_ext.cpp.o" "gcc" "tests/CMakeFiles/hlp_tests.dir/test_sampling_ext.cpp.o.d"
  "/root/repo/tests/test_sampling_power.cpp" "tests/CMakeFiles/hlp_tests.dir/test_sampling_power.cpp.o" "gcc" "tests/CMakeFiles/hlp_tests.dir/test_sampling_power.cpp.o.d"
  "/root/repo/tests/test_scheduling.cpp" "tests/CMakeFiles/hlp_tests.dir/test_scheduling.cpp.o" "gcc" "tests/CMakeFiles/hlp_tests.dir/test_scheduling.cpp.o.d"
  "/root/repo/tests/test_shutdown.cpp" "tests/CMakeFiles/hlp_tests.dir/test_shutdown.cpp.o" "gcc" "tests/CMakeFiles/hlp_tests.dir/test_shutdown.cpp.o.d"
  "/root/repo/tests/test_sim.cpp" "tests/CMakeFiles/hlp_tests.dir/test_sim.cpp.o" "gcc" "tests/CMakeFiles/hlp_tests.dir/test_sim.cpp.o.d"
  "/root/repo/tests/test_software_power.cpp" "tests/CMakeFiles/hlp_tests.dir/test_software_power.cpp.o" "gcc" "tests/CMakeFiles/hlp_tests.dir/test_software_power.cpp.o.d"
  "/root/repo/tests/test_stats.cpp" "tests/CMakeFiles/hlp_tests.dir/test_stats.cpp.o" "gcc" "tests/CMakeFiles/hlp_tests.dir/test_stats.cpp.o.d"
  "/root/repo/tests/test_symbolic.cpp" "tests/CMakeFiles/hlp_tests.dir/test_symbolic.cpp.o" "gcc" "tests/CMakeFiles/hlp_tests.dir/test_symbolic.cpp.o.d"
  "/root/repo/tests/test_two_level.cpp" "tests/CMakeFiles/hlp_tests.dir/test_two_level.cpp.o" "gcc" "tests/CMakeFiles/hlp_tests.dir/test_two_level.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/hlp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/bdd/CMakeFiles/hlp_bdd.dir/DependInfo.cmake"
  "/root/repo/build/src/fsm/CMakeFiles/hlp_fsm.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hlp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/hlp_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/cdfg/CMakeFiles/hlp_cdfg.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/hlp_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/hlp_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
