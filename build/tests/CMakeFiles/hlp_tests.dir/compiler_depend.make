# Empty compiler generated dependencies file for hlp_tests.
# This may be replaced when dependencies are built.
